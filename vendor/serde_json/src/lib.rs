//! Workspace-local stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON text against the workspace `serde` stand-in's
//! [`Value`] tree: [`to_string`] / [`to_string_pretty`] for output,
//! [`from_str`] for input. Supports the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null); numbers parse to `u64` /
//! `i64` when exact and `f64` otherwise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Never fails for tree-backed values; the `Result` mirrors the real crate's
/// signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON text.
///
/// # Errors
///
/// Never fails for tree-backed values (signature parity with the real crate).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on a shape mismatch with `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

// --- writer --------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                let mut token = format!("{f}");
                // "1" would re-parse as an integer; keep floats float-shaped.
                if !token.contains(['.', 'e', 'E']) {
                    token.push_str(".0");
                }
                out.push_str(&token);
            } else {
                out.push_str("null"); // JSON has no NaN/Inf, match serde_json
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), indent, depth, '[', ']', |out, v, d| {
            write_value(out, v, indent, d);
        }),
        Value::Obj(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            depth,
            '{',
            '}',
            |out, (k, v), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if indent.is_some() && !empty {
        out.push('\n');
        out.push_str(&" ".repeat(indent.unwrap_or(0) * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser --------------------------------------------------------------

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), Error> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == token {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{}` at byte {pos}",
            token as char,
            pos = *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, b"null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `]` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => {
                        return Err(Error::new(format!(
                            "expected `,` or `}}` at byte {pos}",
                            pos = *pos
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &[u8], value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!(
            "invalid literal at byte {pos}",
            pos = *pos
        )))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!(
            "expected string at byte {pos}",
            pos = *pos
        )));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries align).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid utf-8"))?;
                let c = s
                    .chars()
                    .next()
                    .ok_or_else(|| Error::new("unterminated string"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number token");
    if token.is_empty() {
        return Err(Error::new(format!("expected value at byte {start}")));
    }
    if !token.contains(['.', 'e', 'E']) {
        if let Ok(u) = token.parse::<u64>() {
            return Ok(Value::U64(u));
        }
        if let Ok(i) = token.parse::<i64>() {
            return Ok(Value::I64(i));
        }
    }
    token
        .parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::new(format!("invalid number `{token}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-7", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(to_string(&Wrapper(v.clone())).unwrap(), text, "{text}");
        }
    }

    struct Wrapper(Value);
    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\"y","d":-3,"e":[[]]}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&Wrapper(v)).unwrap(), text);
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<usize> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let pairs: Vec<(u32, bool)> = from_str("[[1,true],[2,false]]").unwrap();
        assert_eq!(pairs, vec![(1, true), (2, false)]);
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v: Vec<Vec<usize>> = vec![vec![1], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "), "{pretty}");
        let back: Vec<Vec<usize>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(from_str::<Vec<usize>>("{\"a\":1}").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = parse(r#""aA\n""#).unwrap();
        assert_eq!(v, Value::Str("aA\n".into()));
    }
}
