//! Workspace-local stand-in for the `rand` crate (0.9 API names).
//!
//! Provides seeded, deterministic pseudo-randomness for the simulators and
//! baseline generators: [`rngs::StdRng`] (SplitMix64-based), the [`Rng`] /
//! [`SeedableRng`] traits with `random_range` / `random_bool`, and the
//! [`seq`] helpers (`SliceRandom::shuffle`, `IteratorRandom::choose_multiple`).
//!
//! The streams differ from upstream rand's, but every consumer in this
//! workspace seeds explicitly and asserts distributional or structural
//! properties, not exact draws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a numeric seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u8, u16, u32, u64);

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Returns a uniformly random value of a primitive type.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Primitive types with a "whole domain" uniform distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64. Fast, full 64-bit period,
    /// passes the statistical needs of the simulators; not cryptographic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up scramble so nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }

    /// Alias kept for API parity with upstream rand.
    pub type SmallRng = StdRng;
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    /// Random operations on iterators.
    pub trait IteratorRandom: Iterator + Sized {
        /// Reservoir-samples up to `amount` elements uniformly without
        /// replacement. Order of the result is unspecified.
        fn choose_multiple<R: Rng + ?Sized>(self, rng: &mut R, amount: usize) -> Vec<Self::Item> {
            let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
            for (seen, item) in self.enumerate() {
                if reservoir.len() < amount {
                    reservoir.push(item);
                } else {
                    let j = rng.random_range(0..=seen);
                    if j < amount {
                        reservoir[j] = item;
                    }
                }
            }
            reservoir
        }

        /// Uniformly chooses one element, or `None` if the iterator is empty.
        fn choose<R: Rng + ?Sized>(self, rng: &mut R) -> Option<Self::Item> {
            let mut chosen = None;
            for (seen, item) in self.enumerate() {
                if seen == 0 || rng.random_range(0..=seen) == 0 {
                    chosen = Some(item);
                }
            }
            chosen
        }
    }

    impl<I: Iterator> IteratorRandom for I {}
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IteratorRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(5u64..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to stay sorted");
    }

    #[test]
    fn choose_multiple_respects_amount_and_uniqueness() {
        let mut rng = StdRng::seed_from_u64(9);
        let picked = (0..100usize).choose_multiple(&mut rng, 10);
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
        let few = (0..3usize).choose_multiple(&mut rng, 10);
        assert_eq!(few.len(), 3);
    }

    #[test]
    fn iterator_choose_covers_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let c = (0..5usize).choose(&mut rng).unwrap();
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
