//! Workspace-local stand-in for the `criterion` crate.
//!
//! Supports the bench files' API — `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, `Throughput`, `BenchmarkId`,
//! `sample_size` — with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery. Each benchmark warms up once, runs a
//! fixed number of timed iterations, and prints mean ns/iter (plus
//! throughput when configured).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id carrying only a parameter value.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How batches are sized in [`Bencher::iter_batched`] (advisory only here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` over the sample budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let _warmup = black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let _warmup = black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = self.samples;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work units used for throughput output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Advisory in this stand-in (kept for API parity).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (output is already flushed per benchmark).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_samples: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// API-parity hook; command-line options are ignored in this stand-in.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_samples;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, self.default_samples, None, f);
        self
    }

    fn run_one(
        &mut self,
        label: &str,
        samples: u64,
        throughput: Option<Throughput>,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher::new(samples);
        f(&mut bencher);
        if bencher.iters == 0 {
            println!("{label}: no iterations recorded");
            return;
        }
        let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        match throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 * 1e9 / ns_per_iter;
                println!("{label}: {ns_per_iter:.0} ns/iter, {per_sec:.0} elem/s");
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 * 1e9 / ns_per_iter;
                println!("{label}: {ns_per_iter:.0} ns/iter, {per_sec:.0} B/s");
            }
            None => println!("{label}: {ns_per_iter:.0} ns/iter"),
        }
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_measure() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.throughput(Throughput::Elements(4));
            group.sample_size(3);
            group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
                b.iter(|| xs.iter().sum::<u64>());
                ran += 1;
            });
            group.bench_function("batched", |b| {
                b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
                ran += 1;
            });
            group.finish();
        }
        c.bench_function("plain", |b| {
            b.iter(|| black_box(2 + 2));
            ran += 1;
        });
        assert_eq!(ran, 3);
    }

    #[test]
    fn macros_compose() {
        fn bench_a(c: &mut Criterion) {
            c.bench_function("a", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(benches, bench_a);
        benches();
    }
}
