//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s panic-free API:
//! `lock()`/`read()`/`write()` return guards directly instead of `Result`s.
//! Poisoning is deliberately ignored — a poisoned std lock simply yields its
//! inner guard, matching `parking_lot`'s behavior of not poisoning at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose accessors cannot fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_locks_and_unlocks() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = Arc::new(RwLock::new(5));
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 10);
    }

    #[test]
    fn mutex_is_shareable_across_threads() {
        let m = Arc::new(Mutex::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }
}
