//! Workspace-local stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — the subset the workspace uses: unbounded
//! MPSC channels with `send`, `recv`, `try_recv` and `recv_timeout`, backed
//! by `std::sync::mpsc`. Unlike real crossbeam, receivers are not clonable
//! (std's limitation); nothing in this workspace requires MPMC receive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer single-consumer channels.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned by [`Sender::send`] when the receiver is gone; carries
    /// the unsent value.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Returns a pending value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Iterates over received values, blocking between them, until all
        /// senders are dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }

        /// Drains currently pending values without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.inner.try_iter()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    /// Creates an unbounded MPSC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn timeout_elapses_on_empty_channel() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1).unwrap())
                .join()
                .unwrap();
            tx.send(2).unwrap();
            drop(tx);
            let mut got: Vec<i32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
