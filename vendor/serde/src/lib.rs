//! Workspace-local stand-in for the `serde` crate.
//!
//! The real serde's zero-copy, format-agnostic architecture is far more than
//! this workspace needs, and the build environment cannot fetch it. This
//! stand-in keeps the two-trait shape — [`Serialize`] / [`Deserialize`] —
//! but routes everything through an owned JSON-like [`Value`] tree. The
//! companion `serde_json` stand-in renders and parses that tree as JSON
//! text.
//!
//! Instead of a proc-macro derive, implementations are written with the
//! declarative helpers [`impl_serde_struct!`] and [`impl_serde_transparent!`]
//! (enums are implemented by hand — the workspace has three).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// An owned JSON-like value tree: the single data model every `Serialize` /
/// `Deserialize` implementation maps through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always `< 0`; non-negatives normalize to [`Value::U64`]).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object value from key/value pairs.
    #[must_use]
    pub fn object(fields: Vec<(String, Value)>) -> Value {
        Value::Obj(fields)
    }

    /// Looks up a field in an object value.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the u64 payload if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(u) => Some(u),
            Value::I64(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Returns the string payload if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the array payload if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Convenience: "expected X, found Y" for a mismatched value.
    #[must_use]
    pub fn expected(what: &str, found: &Value) -> Self {
        Error::new(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the data-model tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses an instance out of the data-model tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape does not match the type.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// --- primitive impls -----------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", value))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match *value {
                    Value::I64(i) => i,
                    Value::U64(u) => i64::try_from(u)
                        .map_err(|_| Error::new(format!("{u} out of i64 range")))?,
                    _ => return Err(Error::expected("integer", value)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", value)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::F64(f) => Ok(f),
            Value::U64(u) => Ok(u as f64),
            Value::I64(i) => Ok(i as f64),
            _ => Err(Error::expected("number", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

// --- container impls -----------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::expected("object", value)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(fields)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::expected("2-element array", value)),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

// --- impl helpers --------------------------------------------------------

/// Implements `Serialize`/`Deserialize` for a struct with named fields,
/// mapping it to a JSON object keyed by field name (the same shape real
/// serde derives). Must be invoked where the fields are visible.
///
/// ```ignore
/// impl_serde_struct!(Graph { adjacency: Vec<BTreeSet<NodeId>>, edge_count: usize });
/// ```
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ident { $($field:ident : $fty:ty),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Obj(vec![
                    $( (stringify!($field).to_owned(), $crate::Serialize::to_value(&self.$field)) ),+
                ])
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(value: &$crate::Value) -> Result<Self, $crate::Error> {
                Ok($ty {
                    $( $field: <$fty as $crate::Deserialize>::from_value(
                        value.field(stringify!($field)).ok_or_else(|| $crate::Error::new(
                            concat!("missing field `", stringify!($field), "`")))?
                    )? ),+
                })
            }
        }
    };
}

/// Implements `Serialize`/`Deserialize` for a newtype struct serialized as
/// its inner value (serde's `#[serde(transparent)]`).
///
/// ```ignore
/// impl_serde_transparent!(NodeId, usize);
/// ```
#[macro_export]
macro_rules! impl_serde_transparent {
    ($ty:ident, $inner:ty) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Serialize::to_value(&self.0)
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(value: &$crate::Value) -> Result<Self, $crate::Error> {
                <$inner as $crate::Deserialize>::from_value(value).map($ty)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(usize::from_value(&42usize.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-3i64).to_value()), Ok(-3));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::U64(5)), Ok(Some(5)));
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()), Ok(v));
        let s: BTreeSet<u32> = [3, 1, 2].into_iter().collect();
        assert_eq!(BTreeSet::<u32>::from_value(&s.to_value()), Ok(s));
        let pair = (7usize, true);
        assert_eq!(<(usize, bool)>::from_value(&pair.to_value()), Ok(pair));
    }

    #[test]
    fn shape_mismatches_are_reported() {
        assert!(usize::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<usize>::from_value(&Value::Bool(false)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }

    #[test]
    fn struct_macro_round_trips() {
        #[derive(Debug, PartialEq)]
        struct P {
            x: usize,
            tag: Option<String>,
        }
        impl_serde_struct!(P { x: usize, tag: Option<String> });

        let p = P {
            x: 9,
            tag: Some("hi".into()),
        };
        let v = p.to_value();
        assert_eq!(v.field("x"), Some(&Value::U64(9)));
        assert_eq!(P::from_value(&v), Ok(p));
        assert!(P::from_value(&Value::Obj(vec![])).is_err(), "missing field");
    }
}
