//! Workspace-local stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the `bytes` API it actually uses: [`Bytes`] (cheaply
//! clonable, reference-counted, sliceable), [`BytesMut`] (growable builder),
//! and the [`Buf`]/[`BufMut`] cursor traits with the big-endian integer
//! accessors the wire codec needs. Semantics match the real crate for this
//! subset; zero-copy `from_static` is approximated by one upfront copy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable, reference-counted byte buffer.
///
/// Clones share the same backing allocation; [`Bytes::slice`] produces views
/// without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static slice (copied once at creation).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the (remaining) buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a view of a sub-range of this buffer, sharing the backing
    /// storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&i) => i,
            std::ops::Bound::Excluded(&i) => i + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&i) => i + 1,
            std::ops::Bound::Excluded(&i) => i,
            std::ops::Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of range 0..{len}"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the remaining bytes into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer used to assemble wire frames.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty builder with at least `cap` bytes of capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Freezes the builder into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte buffer; integer accessors are big-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads `n` bytes, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn take_bytes(&mut self, n: usize) -> Vec<u8>;

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize) {
        let _ = self.take_bytes(cnt);
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let b = self.take_bytes(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let b = self.take_bytes(8);
        u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.len(), "advance past end of buffer");
        let out = self.data[self.start..self.start + n].to_vec();
        self.start += n;
        out
    }
}

/// Write cursor over a growable buffer; integer writers are big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64(0xDEAD_BEEF_0123_4567);
        b.put_u32(42);
        b.put_u8(7);
        b.put_slice(b"xy");
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 15);
        assert_eq!(frozen.get_u64(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(frozen.get_u32(), 42);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen, b"xy"[..]);
    }

    #[test]
    fn slices_share_storage_and_compare() {
        let b = Bytes::from_static(b"hello world");
        let hello = b.slice(0..5);
        let world = b.slice(6..);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(&world[..], b"world");
        assert_eq!(b.slice(..), b);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn overread_panics() {
        let mut b = Bytes::from_static(b"ab");
        let _ = b.get_u32();
    }
}
