//! Workspace-local stand-in for the `proptest` crate.
//!
//! Reproduces the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`arbitrary::any`],
//! [`collection::vec`], `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test PRNG (seeded from the test name, so failures reproduce across
//! runs) and there is **no shrinking** — a failing case panics with the
//! assertion message directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-harness configuration and RNG.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic PRNG driving input generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test's name so every test draws an
        /// independent, reproducible stream.
        #[must_use]
        pub fn deterministic(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to build a dependent strategy,
        /// then samples from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D));
}

/// `any::<T>()` — whole-domain strategies for primitives.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length range for collection strategies, as upstream's `SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi_inclusive: exact,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with random length and elements.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The common imports property tests expect.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..config.cases {
                let ( $($pat,)+ ) =
                    ( $( $crate::strategy::Strategy::sample(&($strat), &mut rng), )+ );
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test (no shrinking: panics
/// directly with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_respect_bounds(x in 10usize..20, y in 0u8..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn tuples_and_vecs_compose(
            (a, b) in (0usize..5, 0usize..5),
            v in crate::collection::vec(any::<u8>(), 0..16),
        ) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(v.len() < 16);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..100) {
            prop_assert!(x < 100, "x = {}", x);
        }
    }

    #[test]
    fn flat_map_builds_dependent_values() {
        let strat =
            (3usize..=6).prop_flat_map(|k| ((2 * k)..=(2 * k + 10)).prop_map(move |n| (n, k)));
        let mut rng = TestRng::deterministic("flat_map");
        for _ in 0..200 {
            let (n, k) = strat.sample(&mut rng);
            assert!((3..=6).contains(&k));
            assert!((2 * k..=2 * k + 10).contains(&n));
        }
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        let mut c = TestRng::deterministic("different");
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }
}
