//! Menger witnesses: the k disjoint paths behind the k-connectivity claim,
//! extracted explicitly (the constructive content of the correctness proof).
//!
//! Run with: `cargo run --example menger_witness`

use lhg::core::kdiamond::build_kdiamond;
use lhg::core::witness::{menger_witness, verify_menger};
use lhg::graph::NodeId;

fn main() -> Result<(), lhg::core::LhgError> {
    let (n, k) = (20, 3);
    let lhg = build_kdiamond(n, k)?;
    println!("== Menger witnesses on a K-DIAMOND ({n},{k}) overlay ==\n");

    // Show the actual disjoint paths for one pair.
    let (s, t) = (NodeId(0), NodeId(n - 1));
    let w = menger_witness(&lhg, s, t);
    println!(
        "between {s} and {t}: {} internally vertex-disjoint paths",
        w.width()
    );
    for (i, path) in w.paths.iter().enumerate() {
        let rendered: Vec<String> = path.iter().map(ToString::to_string).collect();
        println!("  path {}: {}", i + 1, rendered.join(" -> "));
    }

    // Verify the lemma over every pair.
    let summary = verify_menger(&lhg, 1);
    println!(
        "\nall {} pairs verified: minimum witness width {} (= k), longest path {} hops",
        summary.pairs, summary.min_width, summary.max_hops
    );
    assert!(summary.min_width >= k);
    Ok(())
}
