//! Regenerates the papers' example figures as Graphviz DOT.
//!
//! Fig. 2 (K-TREE): (6,3), (9,3), (10,3). Fig. 3 (K-DIAMOND): (7,3), (8,3),
//! (13,3), (14,3). Pipe any block into `dot -Tpng` to render.
//!
//! Run with: `cargo run --example export_dot`

use lhg::core::kdiamond::build_kdiamond;
use lhg::core::ktree::build_ktree;
use lhg::core::LhgGraph;
use lhg::graph::io::to_dot;

fn show(label: &str, lhg: &LhgGraph) {
    println!("// {label}: {lhg}");
    print!("{}", to_dot(lhg.graph(), label));
    println!();
}

fn main() -> Result<(), lhg::core::LhgError> {
    println!("// Figure 2 — graphs satisfying K-TREE");
    show("fig2a (6,3)", &build_ktree(6, 3)?);
    show("fig2b (9,3)", &build_ktree(9, 3)?);
    show("fig2c (10,3)", &build_ktree(10, 3)?);

    println!("// Figure 3 — graphs satisfying K-DIAMOND");
    show("fig3a (7,3)", &build_kdiamond(7, 3)?);
    show("fig3b (8,3)", &build_kdiamond(8, 3)?);
    show("fig3c (13,3)", &build_kdiamond(13, 3)?);
    show("fig3d (14,3)", &build_kdiamond(14, 3)?);
    Ok(())
}
