//! Reliable broadcast over an asynchronous network: the discrete-event
//! substrate end to end, plus the same protocol on real OS threads.
//!
//! Run with: `cargo run --example overlay_broadcast`

use std::time::Duration;

use bytes::Bytes;
use lhg::core::kdiamond::build_kdiamond;
use lhg::graph::paths::diameter;
use lhg::graph::NodeId;
use lhg::net::broadcast::run_overlay_broadcast;
use lhg::net::sim::LinkModel;
use lhg::net::threaded::run_threaded_broadcast;

fn main() -> Result<(), lhg::core::LhgError> {
    let (n, k) = (44, 3);
    let overlay = build_kdiamond(n, k)?;
    let link = LinkModel {
        base_latency_us: 1_000,
        jitter_us: 300,
    };

    println!("== Reliable broadcast over a K-DIAMOND ({n},{k}) overlay ==\n");

    // Fail-stop two processes mid-run (at 1.5 link delays in).
    let crashes = [(NodeId(5), 1_500u64), (NodeId(17), 1_500u64)];
    let report = run_overlay_broadcast(
        overlay.graph(),
        NodeId(0),
        Bytes::from_static(b"checkpoint #42"),
        link,
        &crashes,
        9,
    );

    println!("simulated (discrete-event) run, 2 mid-run crashes:");
    println!("  correct processes : {}", report.correct_nodes);
    println!("  delivered         : {}", report.correct_delivered);
    println!("  all delivered     : {}", report.all_correct_delivered());
    println!("  broadcast latency : {} µs", report.latency());
    println!("  messages on wire  : {}", report.sim.messages_sent);
    println!(
        "  latency sanity    : diameter {} × ~{} µs/link",
        diameter(overlay.graph()).unwrap(),
        link.base_latency_us
    );

    // Same protocol, real threads, two fail-stop processes.
    let threaded = run_threaded_broadcast(
        overlay.graph(),
        NodeId(0),
        Bytes::from_static(b"checkpoint #42"),
        &[NodeId(5), NodeId(17)],
        Duration::from_millis(150),
    );
    println!("\nthreaded run (one OS thread per process, crossbeam links):");
    println!(
        "  delivered         : {}/{}",
        threaded.delivered_count(),
        n - 2
    );
    println!("  messages sent     : {}", threaded.messages_sent);
    Ok(())
}
