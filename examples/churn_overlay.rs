//! Dynamic membership: an LHG overlay absorbing joins and leaves while a
//! broadcast keeps working after every change.
//!
//! Run with: `cargo run --example churn_overlay`

use lhg::core::overlay::DynamicOverlay;
use lhg::core::Constraint;
use lhg::flood::engine::Protocol;
use lhg::flood::experiment::{run_trials, FailureMode};
use lhg::graph::connectivity::vertex_connectivity;
use lhg::graph::paths::diameter;

fn main() -> Result<(), lhg::core::LhgError> {
    let k = 3;
    let mut overlay = DynamicOverlay::bootstrap(Constraint::KDiamond, 20, k)?;
    println!("== K-DIAMOND overlay under churn (k={k}) ==\n");
    println!(
        "{:<26} {:>5} {:>7} {:>9} {:>7} {:>12}",
        "event", "n", "edges", "diameter", "κ", "links moved"
    );

    let report = |label: &str, o: &DynamicOverlay, churn: usize| {
        println!(
            "{label:<26} {:>5} {:>7} {:>9} {:>7} {:>12}",
            o.len(),
            o.graph().edge_count(),
            diameter(o.graph()).expect("connected"),
            vertex_connectivity(o.graph()),
            churn,
        );
    };
    report("bootstrap", &overlay, 0);

    for _ in 0..4 {
        let (id, churn) = overlay.join()?;
        report(&format!("join (member {id})"), &overlay, churn.total());
    }
    for victim in [3, 11, 17] {
        let churn = overlay.leave(victim)?;
        report(&format!("leave (member {victim})"), &overlay, churn.total());
    }

    // The overlay still floods reliably with k-1 crashes after all that.
    let stats = run_trials(
        overlay.graph(),
        Protocol::Flood,
        FailureMode::RandomNodes { count: k - 1 },
        30,
        5,
    );
    println!(
        "\nafter churn: flooding reliability with {} random crashes = {:.3} \
         (mean {:.1} rounds)",
        k - 1,
        stats.reliability,
        stats.mean_rounds
    );
    assert_eq!(stats.reliability, 1.0);
    Ok(())
}
