//! Topology census: the existence (EX) and regularity (REG) landscape.
//!
//! Prints, for k = 3, which n admit each construction and which admit a
//! k-regular one — the core claims of the existence/regularity study — and
//! the (n, k) pairs where the JD operational rule has gaps that K-TREE
//! fills.
//!
//! Run with: `cargo run --example topology_census`

use lhg::core::existence::{ex_jd, ex_ktree};
use lhg::core::regularity::{reg_kdiamond, reg_ktree, theorem7_witnesses};
use lhg::core::theory::run_all;

fn cell(b: bool) -> &'static str {
    if b {
        "x"
    } else {
        "."
    }
}

fn main() {
    let k = 3;
    let ns: Vec<usize> = (4..=30).collect();

    println!("== Existence & regularity census (k={k}) ==\n");
    println!(
        "{:<22} {}",
        "n =",
        ns.iter().map(|n| format!("{n:>3}")).collect::<String>()
    );
    let row = |label: &str, f: &dyn Fn(usize) -> bool| {
        println!(
            "{label:<22} {}",
            ns.iter()
                .map(|&n| format!("{:>3}", cell(f(n))))
                .collect::<String>()
        );
    };
    row("EX JD", &|n| ex_jd(n, k));
    row("EX K-TREE/K-DIAMOND", &|n| ex_ktree(n, k));
    row("REG K-TREE", &|n| reg_ktree(n, k));
    row("REG K-DIAMOND", &|n| reg_kdiamond(n, k));

    println!("\nJD gaps filled by K-TREE (first ten):");
    let gaps: Vec<usize> = (4..200)
        .filter(|&n| ex_ktree(n, k) && !ex_jd(n, k))
        .take(10)
        .collect();
    println!("  n = {gaps:?}");

    println!("\nTheorem 7 witnesses (k-regular under K-DIAMOND only):");
    for k in 3..=5 {
        let w: Vec<usize> = theorem7_witnesses(k, 5)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        println!("  k={k}: n = {w:?}");
    }

    println!("\nExecutable theorem suite (k in {{3,4}}, spans of 12):");
    for check in run_all(&[3, 4], 12) {
        println!(
            "  {:<45} {} ({} cases)",
            check.name,
            if check.holds() { "HOLDS" } else { "FAILS" },
            check.cases
        );
    }
}
