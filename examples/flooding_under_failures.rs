//! Flooding under failures: the application-level payoff of LHGs.
//!
//! Floods a K-TREE LHG, a classic Harary graph, a balanced tree and a random
//! regular graph with increasing numbers of random crash failures, and
//! prints reliability / latency / message cost for each.
//!
//! Run with: `cargo run --release --example flooding_under_failures`

use lhg::baselines::harary::harary_graph;
use lhg::baselines::random::random_regular;
use lhg::baselines::structured::balanced_tree;
use lhg::core::ktree::build_ktree;
use lhg::flood::engine::Protocol;
use lhg::flood::experiment::{run_trials, FailureMode};
use lhg::graph::Graph;

fn main() -> Result<(), lhg::core::LhgError> {
    let (n, k) = (94, 4);
    let trials = 200;

    let topologies: Vec<(&str, Graph)> = vec![
        ("K-TREE LHG", build_ktree(n, k)?.into_graph()),
        ("Harary H(k,n)", harary_graph(n, k)),
        ("balanced tree", balanced_tree(n, k - 1)),
        (
            "random 4-regular",
            random_regular(n, k, 7, 200).expect("pairing found"),
        ),
    ];

    println!("== Flooding with random crash failures (n={n}, k={k}, {trials} trials) ==\n");
    println!(
        "{:<18} {:>6} {:>12} {:>12} {:>14}",
        "topology", "fails", "reliability", "mean rounds", "mean messages"
    );
    for (name, g) in &topologies {
        for fails in [0usize, k - 1, k, 2 * k] {
            let mode = if fails == 0 {
                FailureMode::None
            } else {
                FailureMode::RandomNodes { count: fails }
            };
            let stats = run_trials(g, Protocol::Flood, mode, trials, 42);
            println!(
                "{:<18} {:>6} {:>12.3} {:>12.2} {:>14.1}",
                name, fails, stats.reliability, stats.mean_rounds, stats.mean_messages
            );
        }
        println!();
    }
    println!(
        "Reading: the LHG keeps reliability 1.000 at k-1 = {} failures;",
        k - 1
    );
    println!("the tree loses messages at a single failure, and Harary pays");
    println!("linearly many rounds. Gossip comparisons: experiments e9-e11.");
    Ok(())
}
