//! Quickstart: build an LHG, validate every defining property, and compare
//! it against the classic Harary graph on the same (n, k).
//!
//! Run with: `cargo run --example quickstart`

use lhg::baselines::harary::harary_graph;
use lhg::core::kdiamond::build_kdiamond;
use lhg::core::ktree::build_ktree;
use lhg::core::properties::validate;
use lhg::graph::paths::diameter;

fn main() -> Result<(), lhg::core::LhgError> {
    let (n, k) = (62, 4);

    println!("== Logarithmic Harary Graphs: quickstart (n={n}, k={k}) ==\n");

    for (name, lhg) in [
        ("K-TREE", build_ktree(n, k)?),
        ("K-DIAMOND", build_kdiamond(n, k)?),
    ] {
        let report = validate(lhg.graph(), k);
        println!("{name} construction: {lhg}");
        println!("  P1 k-node connectivity : {}", report.node_connectivity_ok);
        println!("  P2 k-link connectivity : {}", report.link_connectivity_ok);
        println!("  P3 link minimality     : {}", report.link_minimal);
        println!(
            "  P4 log diameter        : {} (diameter {:?} <= bound {:.1})",
            report.logarithmic_diameter, report.diameter, report.diameter_bound
        );
        println!(
            "  P5 k-regularity        : {} ({} edges, lower bound {})",
            report.regular, report.edge_count, report.edge_lower_bound
        );
        println!("  => is an LHG: {}\n", report.is_lhg());
    }

    // The motivating contrast: same n, k as a classic Harary graph.
    let h = harary_graph(n, k);
    println!(
        "Classic Harary H({k},{n}): {} edges, diameter {:?} (linear in n)",
        h.edge_count(),
        diameter(&h)
    );
    let lhg = build_kdiamond(n, k)?;
    println!(
        "K-DIAMOND LHG ({n},{k}) : {} edges, diameter {:?} (logarithmic in n)",
        lhg.graph().edge_count(),
        diameter(lhg.graph())
    );
    Ok(())
}
