//! End-to-end integration tests across the whole workspace: construction →
//! validation → flooding → asynchronous broadcast, plus cross-module
//! consistency (the round simulator and the discrete-event simulator must
//! agree on what flooding achieves).

use std::time::Duration;

use bytes::Bytes;
use lhg::baselines::harary::harary_graph;
use lhg::core::checker::satisfies_constraint;
use lhg::core::kdiamond::build_kdiamond;
use lhg::core::ktree::build_ktree;
use lhg::core::properties::validate;
use lhg::flood::engine::Protocol;
use lhg::flood::experiment::run_with_plan;
use lhg::flood::failure::FailurePlan;
use lhg::graph::paths::diameter;
use lhg::graph::NodeId;
use lhg::net::broadcast::run_overlay_broadcast;
use lhg::net::sim::LinkModel;
use lhg::net::threaded::run_threaded_broadcast;

#[test]
fn construct_validate_flood_broadcast_pipeline() {
    let (n, k) = (30, 3);
    let overlay = build_kdiamond(n, k).unwrap();

    // The artifact satisfies its constraint and the LHG definition.
    assert!(satisfies_constraint(&overlay));
    let report = validate(overlay.graph(), k);
    assert!(report.is_regular_lhg());

    // Round-synchronous flooding with k−1 crashes succeeds.
    let mut plan = FailurePlan::none();
    plan.crash_node(NodeId(3), 0);
    plan.crash_node(NodeId(11), 0);
    let out = run_with_plan(overlay.graph(), Protocol::Flood, &plan, 0);
    assert!(out.full_coverage());

    // Asynchronous broadcast with the same crashes succeeds too.
    let r = run_overlay_broadcast(
        overlay.graph(),
        NodeId(0),
        Bytes::from_static(b"payload"),
        LinkModel {
            base_latency_us: 500,
            jitter_us: 0,
        },
        &[(NodeId(3), 0), (NodeId(11), 0)],
        1,
    );
    assert!(r.all_correct_delivered());
}

#[test]
fn round_and_event_simulators_agree_on_latency_shape() {
    // Without jitter, event-simulator latency = flooding rounds × link delay.
    for (n, k) in [(14, 3), (26, 3), (24, 4)] {
        let overlay = build_ktree(n, k).unwrap();
        let rounds = run_with_plan(overlay.graph(), Protocol::Flood, &FailurePlan::none(), 0)
            .last_informed_round() as u64;
        let r = run_overlay_broadcast(
            overlay.graph(),
            NodeId(0),
            Bytes::new(),
            LinkModel {
                base_latency_us: 1_000,
                jitter_us: 0,
            },
            &[],
            0,
        );
        assert_eq!(r.latency(), rounds * 1_000, "(n={n},k={k})");
    }
}

#[test]
fn round_and_event_simulators_agree_on_message_count() {
    let overlay = build_kdiamond(21, 4).unwrap();
    let round_msgs =
        run_with_plan(overlay.graph(), Protocol::Flood, &FailurePlan::none(), 0).messages_sent;
    let event_msgs = run_overlay_broadcast(
        overlay.graph(),
        NodeId(0),
        Bytes::new(),
        LinkModel {
            base_latency_us: 100,
            jitter_us: 0,
        },
        &[],
        0,
    )
    .sim
    .messages_sent;
    assert_eq!(round_msgs, event_msgs);
}

#[test]
fn threaded_runner_agrees_with_simulator_on_coverage() {
    let overlay = build_ktree(18, 3).unwrap();
    let crashes = [NodeId(4), NodeId(9)];
    let sim = run_overlay_broadcast(
        overlay.graph(),
        NodeId(0),
        Bytes::new(),
        LinkModel::default(),
        &[(NodeId(4), 0), (NodeId(9), 0)],
        3,
    );
    let threaded = run_threaded_broadcast(
        overlay.graph(),
        NodeId(0),
        Bytes::new(),
        &crashes,
        Duration::from_millis(200),
    );
    assert!(sim.all_correct_delivered());
    assert_eq!(threaded.delivered_count(), 16);
}

#[test]
fn lhg_beats_harary_on_diameter_at_equal_cost() {
    // The headline claim at a paper-scale size (a Theorem 3 regular point,
    // so both graphs sit exactly at ⌈kn/2⌉ edges).
    let (n, k) = (128, 4);
    let lhg = build_ktree(n, k).unwrap();
    let h = harary_graph(n, k);
    assert_eq!(lhg.graph().edge_count(), h.edge_count(), "same edge budget");
    let d_lhg = diameter(lhg.graph()).unwrap();
    let d_h = diameter(&h).unwrap();
    assert!(
        d_lhg * 3 <= d_h,
        "LHG diameter {d_lhg} should be several times under Harary's {d_h}"
    );
}

#[test]
fn facade_reexports_are_usable() {
    // Each workspace crate is reachable through the facade.
    let g = lhg::baselines::structured::hypercube(3);
    assert_eq!(lhg::graph::connectivity::vertex_connectivity(&g), 3);
    assert!(lhg::core::existence::ex_ktree(8, 3));
    let msg = lhg::net::message::Message::new(1, 0, Bytes::new());
    assert_eq!(lhg::net::message::Message::decode(msg.encode()), Some(msg));
}
