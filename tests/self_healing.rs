//! Capstone integration: a self-healing LHG overlay.
//!
//! Detection → repair → verified recovery, across four crates: the
//! heartbeat detector (`lhg-net`) notices a crashed process on a K-DIAMOND
//! overlay, its identification feeds the membership maintenance
//! (`lhg-core::overlay`), and the rebuilt topology is re-validated
//! (`lhg-core::properties`) and re-flooded (`lhg-flood`) at full
//! reliability.

use lhg::core::overlay::DynamicOverlay;
use lhg::core::properties::validate;
use lhg::core::Constraint;
use lhg::flood::engine::Protocol;
use lhg::flood::experiment::{run_trials, FailureMode};
use lhg::graph::NodeId;
use lhg::net::detector::{DetectorEvent, HeartbeatConfig, HeartbeatProcess};
use lhg::net::sim::{LinkModel, Process, Simulation};

#[test]
fn detect_repair_reflood() {
    let k = 3;
    let mut overlay = DynamicOverlay::bootstrap(Constraint::KDiamond, 24, k).unwrap();

    // --- Detect: run heartbeat detectors; crash the process at node 7. ---
    let victim_node = NodeId(7);
    let victim_member = overlay.members()[victim_node.index()];
    let config = HeartbeatConfig {
        period: 1_000,
        timeout: 3_500,
    };
    let mut sim = Simulation::new(
        overlay.graph(),
        LinkModel {
            base_latency_us: 500,
            jitter_us: 100,
        },
        11,
    );
    sim.crash_at(victim_node, 8_000);
    let processes: Vec<Box<dyn Process>> = (0..overlay.len())
        .map(|_| -> Box<dyn Process> { Box::new(HeartbeatProcess::new(config)) })
        .collect();
    let report = sim.run(processes, 30_000);

    // Every overlay neighbor of the victim must have suspected it, and
    // nobody else was suspected.
    let mut suspected_by = std::collections::BTreeSet::new();
    for d in &report.deliveries {
        if let Some(DetectorEvent::Suspect {
            monitor, suspect, ..
        }) = DetectorEvent::from_delivery(d)
        {
            assert_eq!(
                suspect, victim_node,
                "accuracy violated: {suspect} suspected"
            );
            suspected_by.insert(monitor);
        }
    }
    let neighbors: std::collections::BTreeSet<NodeId> =
        overlay.graph().neighbors(victim_node).collect();
    assert_eq!(
        suspected_by, neighbors,
        "completeness: all neighbors detect"
    );

    // --- Repair: evict the suspected member and rebuild. ---
    let churn = overlay.leave(victim_member).unwrap();
    assert!(churn.total() > 0);
    assert_eq!(overlay.len(), 23);
    assert!(!overlay.members().contains(&victim_member));

    // --- Verify: the rebuilt overlay is a full LHG again... ---
    let report = validate(overlay.graph(), k);
    assert!(report.is_lhg(), "{report:?}");

    // ...and floods at reliability 1.0 under fresh k−1 crashes.
    let stats = run_trials(
        overlay.graph(),
        Protocol::Flood,
        FailureMode::RandomNodes { count: k - 1 },
        40,
        99,
    );
    assert_eq!(stats.reliability, 1.0);
    assert_eq!(stats.mean_coverage, 1.0);
}

#[test]
fn flooding_rounds_equal_origin_eccentricity() {
    // Cross-module consistency: failure-free flooding from node 0 finishes
    // in exactly ecc(0) rounds on every constraint.
    use lhg::core::kdiamond::build_kdiamond;
    use lhg::core::ktree::build_ktree;
    use lhg::flood::engine::run_broadcast;
    use lhg::flood::failure::FailurePlan;
    use lhg::graph::paths::eccentricity;
    use lhg::graph::CsrGraph;

    for (n, k) in [(18usize, 3usize), (26, 3), (24, 4)] {
        for overlay in [build_ktree(n, k).unwrap(), build_kdiamond(n, k).unwrap()] {
            let ecc = eccentricity(overlay.graph(), NodeId(0)).unwrap();
            let out = run_broadcast(
                &CsrGraph::from_graph(overlay.graph()),
                NodeId(0),
                &FailurePlan::none(),
                Protocol::Flood,
                0,
            );
            assert_eq!(out.last_informed_round(), ecc, "(n={n},k={k})");
        }
    }
}
