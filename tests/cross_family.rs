//! Cross-family consistency: for every topology family in the workspace,
//! flooding reliability under f random crashes is exactly predicted by the
//! family's vertex connectivity — the theory and the simulator agree
//! everywhere, not just on LHGs.

use lhg::baselines::catalog::ALL_FAMILIES;
use lhg::baselines::expander::hamiltonian_expander;
use lhg::baselines::structured::{balanced_tree, butterfly, torus};
use lhg::core::kdiamond::build_kdiamond;
use lhg::core::ktree::build_ktree;
use lhg::flood::engine::Protocol;
use lhg::flood::experiment::{run_trials, FailureMode};
use lhg::graph::connectivity::vertex_connectivity;
use lhg::graph::Graph;

/// Flooding with fewer crashes than κ must always cover; with enough trials
/// at κ crashes on these small graphs, some split shows up.
fn assert_reliability_tracks_connectivity(name: &str, g: &Graph) {
    let kappa = vertex_connectivity(g);
    assert!(kappa >= 1, "{name}: disconnected");
    if kappa >= 2 {
        let below = run_trials(
            g,
            Protocol::Flood,
            FailureMode::RandomNodes { count: kappa - 1 },
            30,
            7,
        );
        assert_eq!(
            below.reliability, 1.0,
            "{name}: κ−1 crashes must be tolerated"
        );
    }
    // Adversarial full-cut failures must break coverage — provided the
    // whole cut is applicable (the plan never crashes the flood origin, so
    // a cut containing node 0 cannot be applied in full).
    let full_cut_applicable =
        lhg::flood::failure::adversarial_node_failures(g, kappa, lhg::graph::NodeId(0))
            .is_some_and(|plan| plan.crashed_count() == kappa);
    if full_cut_applicable {
        let at = run_trials(
            g,
            Protocol::Flood,
            FailureMode::AdversarialNodes { count: kappa },
            3,
            7,
        );
        assert!(
            at.reliability < 1.0,
            "{name}: removing a full minimum cut must split (κ={kappa})"
        );
    }
}

#[test]
fn all_catalog_families_track_their_connectivity() {
    for family in ALL_FAMILIES {
        for (n, k) in [(16usize, 3usize), (16, 4), (27, 3)] {
            if let Some(g) = (family.build)(n, k) {
                assert_reliability_tracks_connectivity(family.name, &g);
            }
        }
    }
}

#[test]
fn structured_topologies_track_their_connectivity() {
    let cases: Vec<(&str, Graph)> = vec![
        ("torus 4x5", torus(4, 5)),
        ("butterfly d=3", butterfly(3)),
        ("expander n=30 d=2", hamiltonian_expander(30, 2, 3)),
        ("K-TREE (18,3)", build_ktree(18, 3).unwrap().into_graph()),
        (
            "K-DIAMOND (17,3)",
            build_kdiamond(17, 3).unwrap().into_graph(),
        ),
        (
            "K-DIAMOND (20,4)",
            build_kdiamond(20, 4).unwrap().into_graph(),
        ),
    ];
    for (name, g) in &cases {
        assert_reliability_tracks_connectivity(name, g);
    }
}

#[test]
fn trees_fail_at_a_single_crash() {
    let g = balanced_tree(20, 2);
    let stats = run_trials(
        &g,
        Protocol::Flood,
        FailureMode::RandomNodes { count: 1 },
        60,
        3,
    );
    assert!(stats.reliability < 1.0, "some crash hits an interior node");
    assert!(stats.reliability > 0.0, "some crash hits a leaf");
}
