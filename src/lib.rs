//! # lhg — Logarithmic Harary Graphs
//!
//! A from-scratch Rust reproduction of *Logarithmic Harary Graphs* (Jenkins
//! & Demers, ICDCS 2001) and the follow-up existence/regularity study
//! (Baldoni, Bonomi, Querzoni, Tucci Piergiovanni): k-connected,
//! link-minimal overlay topologies with logarithmic diameter, built for
//! robust deterministic flooding.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`graph`] — graph substrate (storage, traversal, exact connectivity
//!   via max-flow, cuts, diameter);
//! * [`core`] — the LHG constructions (JD, K-TREE, K-DIAMOND), property
//!   validators P1–P5, EX/REG theory and the executable theorem suite;
//! * [`baselines`] — comparison topologies (classic Harary graphs,
//!   hypercubes, de Bruijn graphs, random graphs, expanders);
//! * [`flood`] — round-synchronous flooding/gossip simulator with failure
//!   injection;
//! * [`net`] — discrete-event message-passing substrate and reliable
//!   broadcast over LHG overlays;
//! * [`byzantine`] — Bracha echo/ready Byzantine reliable broadcast over
//!   the k disjoint paths, tolerating f ≤ ⌊(k−1)/2⌋ nodes that lie
//!   (equivocate, forge, replay, go silent);
//! * [`trace`] — observability: per-node flight recorders (structured
//!   lifecycle events, JSONL timelines) and causal broadcast tracing
//!   (realized dissemination trees checked against the O(log n) bound);
//! * [`chaos`] — deterministic chaos engine: seeded fault plans (loss,
//!   duplication, reordering, partitions, crash/rejoin schedules) executed
//!   on the simulator and the TCP runtime under an invariant oracle;
//! * [`telemetry`] — cluster-wide time-series layer over the metrics
//!   registries: cadenced delta sampling into bounded rings, merged
//!   timelines with per-second rates, and per-class wire-cost series.
//!
//! # Quickstart
//!
//! ```
//! use lhg::core::kdiamond::build_kdiamond;
//! use lhg::core::properties::validate;
//! use lhg::flood::engine::Protocol;
//! use lhg::flood::experiment::{run_trials, FailureMode};
//!
//! // Build a 3-connected, 3-regular LHG on 20 nodes...
//! let overlay = build_kdiamond(20, 3)?;
//! assert!(validate(overlay.graph(), 3).is_regular_lhg());
//!
//! // ...and flood it under 2 random crash failures: always delivered.
//! let stats = run_trials(
//!     overlay.graph(),
//!     Protocol::Flood,
//!     FailureMode::RandomNodes { count: 2 },
//!     20,
//!     7,
//! );
//! assert_eq!(stats.reliability, 1.0);
//! # Ok::<(), lhg::core::LhgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lhg_baselines as baselines;
pub use lhg_byzantine as byzantine;
pub use lhg_chaos as chaos;
pub use lhg_core as core;
pub use lhg_flood as flood;
pub use lhg_graph as graph;
pub use lhg_net as net;
pub use lhg_telemetry as telemetry;
pub use lhg_trace as trace;
