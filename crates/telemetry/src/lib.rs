//! Cluster-wide telemetry timeline over the per-node metrics registries.
//!
//! The [`lhg_net::metrics::MetricsRegistry`] answers "what are the totals
//! right now?"; this crate answers "what happened *when*". A
//! [`TelemetrySampler`] snapshots one registry on a fixed cadence into a
//! bounded ring of timestamped **deltas** — counter increments since the
//! previous sample, gauge levels, per-interval histogram bucket diffs
//! (via [`lhg_net::metrics::Histogram::delta_since`]), and per-class
//! wire-cost increments from the registry's
//! [`WireAccountant`](lhg_net::wirecost::WireAccountant), surfaced as
//! synthetic `wire.<class>.frames` / `wire.<class>.bytes` counter series.
//!
//! [`merge`] collates sample streams from many nodes into one [`Timeline`]
//! ordered by `(at_us, node, seq)`, which renders as JSONL
//! ([`Timeline::to_jsonl`]) and aggregates into per-second rates
//! ([`Timeline::rates`]). Time is whatever clock the engine runs on:
//! wall-clock µs for the TCP runtime and threaded runner (see
//! [`TelemetrySampler::spawn_periodic`]), virtual µs for the simulator
//! (see [`attach_to_sim`]) — the timeline machinery never looks at a real
//! clock itself.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lhg_net::metrics::{HistogramCursor, HistogramDelta, MetricsRegistry};
use lhg_net::sim::Simulation;
use lhg_net::wirecost::{MessageClass, CLASS_COUNT};
use parking_lot::Mutex;

/// Default ring capacity: one hour of samples at a 1 s cadence.
pub const DEFAULT_CAPACITY: usize = 3600;

/// One node's registry deltas over one sampling interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Node (or stream) label this sample belongs to.
    pub node: String,
    /// Sample timestamp, µs on the engine's clock (wall or virtual).
    pub at_us: u64,
    /// Per-sampler sequence number (ties on `at_us` stay ordered).
    pub seq: u64,
    /// Counter increments since the previous sample (zero deltas are
    /// omitted). Includes the synthetic `wire.<class>.frames` /
    /// `wire.<class>.bytes` series from the wire-cost accountant.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels at sample time (levels, not deltas — gauges move
    /// both ways).
    pub gauges: Vec<(String, i64)>,
    /// Histogram deltas over the interval (empty deltas are omitted).
    pub histograms: Vec<(String, HistogramDelta)>,
}

impl Sample {
    /// Sum of a named counter's delta in this sample (0 if absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Renders the sample as a JSON-ready value tree (histograms are
    /// summarized to `count`/`sum`/`p50`/`p99`; the full bucket arrays
    /// stay in memory only).
    #[must_use]
    pub fn to_value(&self) -> serde::Value {
        let counters: Vec<(String, serde::Value)> = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), serde::Value::U64(*v)))
            .collect();
        let gauges: Vec<(String, serde::Value)> = self
            .gauges
            .iter()
            .map(|(n, v)| {
                let val = if *v >= 0 {
                    serde::Value::U64(*v as u64)
                } else {
                    serde::Value::I64(*v)
                };
                (n.clone(), val)
            })
            .collect();
        let histograms: Vec<(String, serde::Value)> = self
            .histograms
            .iter()
            .map(|(n, d)| {
                (
                    n.clone(),
                    serde::Value::Obj(vec![
                        ("count".to_owned(), serde::Value::U64(d.count)),
                        ("sum".to_owned(), serde::Value::U64(d.sum)),
                        ("p50".to_owned(), serde::Value::U64(d.percentile(0.50))),
                        ("p99".to_owned(), serde::Value::U64(d.percentile(0.99))),
                    ]),
                )
            })
            .collect();
        serde::Value::Obj(vec![
            ("node".to_owned(), serde::Value::Str(self.node.clone())),
            ("at_us".to_owned(), serde::Value::U64(self.at_us)),
            ("seq".to_owned(), serde::Value::U64(self.seq)),
            ("counters".to_owned(), serde::Value::Obj(counters)),
            ("gauges".to_owned(), serde::Value::Obj(gauges)),
            ("histograms".to_owned(), serde::Value::Obj(histograms)),
        ])
    }
}

/// Cadence sampler over one [`MetricsRegistry`]: every [`sample`] call
/// snapshots deltas since the previous call into a capacity-bounded ring
/// (oldest samples evicted first). Non-destructive: the registry's
/// cumulative totals are never reset, so concurrent readers (Prometheus
/// exposition, `snapshot_json`) are unaffected.
///
/// [`sample`]: TelemetrySampler::sample
#[derive(Debug)]
pub struct TelemetrySampler {
    node: String,
    registry: Arc<MetricsRegistry>,
    counter_cursors: BTreeMap<String, u64>,
    hist_cursors: BTreeMap<String, HistogramCursor>,
    wire_cursor: [(u64, u64); CLASS_COUNT],
    ring: VecDeque<Sample>,
    capacity: usize,
    seq: u64,
}

impl TelemetrySampler {
    /// Creates a sampler labeled `node` over `registry` with the
    /// [`DEFAULT_CAPACITY`] ring.
    #[must_use]
    pub fn new(node: impl Into<String>, registry: Arc<MetricsRegistry>) -> Self {
        Self::with_capacity(node, registry, DEFAULT_CAPACITY)
    }

    /// Creates a sampler with an explicit ring capacity (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(
        node: impl Into<String>,
        registry: Arc<MetricsRegistry>,
        capacity: usize,
    ) -> Self {
        assert!(capacity > 0, "sampler ring capacity must be positive");
        TelemetrySampler {
            node: node.into(),
            registry,
            counter_cursors: BTreeMap::new(),
            hist_cursors: BTreeMap::new(),
            wire_cursor: [(0, 0); CLASS_COUNT],
            ring: VecDeque::new(),
            capacity,
            seq: 0,
        }
    }

    /// The node label this sampler stamps on its samples.
    #[must_use]
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Takes one sample at `at_us`: counter and histogram deltas since
    /// the previous sample, current gauge levels, and wire-cost class
    /// increments. The sample is appended to the ring (evicting the
    /// oldest at capacity) and also returned.
    pub fn sample(&mut self, at_us: u64) -> Sample {
        let mut counters: Vec<(String, u64)> = Vec::new();
        for (name, c) in self.registry.counters() {
            let now = c.get();
            let prev = self.counter_cursors.insert(name.clone(), now).unwrap_or(0);
            let delta = now.wrapping_sub(prev);
            if delta > 0 {
                counters.push((name, delta));
            }
        }
        for (i, class) in MessageClass::ALL.into_iter().enumerate() {
            let totals = self.registry.wire().class_totals()[i];
            let (pf, pb) = self.wire_cursor[i];
            self.wire_cursor[i] = (totals.frames, totals.bytes);
            let (df, db) = (
                totals.frames.wrapping_sub(pf),
                totals.bytes.wrapping_sub(pb),
            );
            if df > 0 {
                counters.push((format!("wire.{}.frames", class.name()), df));
                counters.push((format!("wire.{}.bytes", class.name()), db));
            }
        }
        let gauges: Vec<(String, i64)> = self
            .registry
            .gauges()
            .into_iter()
            .map(|(name, g)| (name, g.get()))
            .collect();
        let mut histograms: Vec<(String, HistogramDelta)> = Vec::new();
        for (name, h) in self.registry.histograms() {
            let cursor = self.hist_cursors.entry(name.clone()).or_default();
            let delta = h.delta_since(cursor);
            if delta.count > 0 {
                histograms.push((name, delta));
            }
        }
        let sample = Sample {
            node: self.node.clone(),
            at_us,
            seq: self.seq,
            counters,
            gauges,
            histograms,
        };
        self.seq += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(sample.clone());
        sample
    }

    /// Samples currently held in the ring, oldest first.
    #[must_use]
    pub fn samples(&self) -> Vec<Sample> {
        self.ring.iter().cloned().collect()
    }

    /// Drains the ring, returning its samples oldest first.
    pub fn take_samples(&mut self) -> Vec<Sample> {
        self.ring.drain(..).collect()
    }

    /// Number of samples in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when the ring holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Moves the sampler onto a background thread that samples every
    /// `interval` of wall-clock time (timestamps are µs since the spawn).
    /// [`PeriodicSampler::stop`] takes a final sample, joins the thread,
    /// and hands the sampler back with its ring intact — this is how the
    /// TCP cluster and the threaded runner get live sampling without the
    /// engines knowing about telemetry at all.
    #[must_use]
    pub fn spawn_periodic(mut self, interval: Duration) -> PeriodicSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let epoch = Instant::now();
            loop {
                std::thread::sleep(interval.min(Duration::from_millis(20)));
                let now_us = u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
                let due = self
                    .ring
                    .back()
                    .is_none_or(|s| now_us.saturating_sub(s.at_us) >= interval.as_micros() as u64);
                if stop_flag.load(Ordering::Relaxed) {
                    // Final flush so the tail interval is never lost.
                    self.sample(now_us);
                    return self;
                }
                if due {
                    self.sample(now_us);
                }
            }
        });
        PeriodicSampler { stop, handle }
    }
}

/// Handle to a sampler running on its own thread
/// (see [`TelemetrySampler::spawn_periodic`]).
#[derive(Debug)]
pub struct PeriodicSampler {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<TelemetrySampler>,
}

impl PeriodicSampler {
    /// Stops the sampling thread (after one final flush sample) and
    /// returns the sampler with its ring intact.
    ///
    /// # Panics
    ///
    /// Panics if the sampling thread panicked.
    #[must_use]
    pub fn stop(self) -> TelemetrySampler {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("sampler thread panicked")
    }
}

/// Arms `sim` to drive `sampler` on a virtual-time cadence of `every_us`:
/// the simulator calls back at each cadence boundary it crosses (plus a
/// final flush at end time), and the callback snapshots the registry with
/// the virtual timestamp. The shared handle keeps the sampler reachable
/// after the run for [`merge`].
pub fn attach_to_sim(sim: &mut Simulation, sampler: &Arc<Mutex<TelemetrySampler>>, every_us: u64) {
    let sampler = Arc::clone(sampler);
    sim.with_sampler(
        every_us,
        Box::new(move |at_us| {
            sampler.lock().sample(at_us);
        }),
    );
}

/// Collates sample streams from many nodes into one cluster-wide
/// [`Timeline`], ordered by `(at_us, node, seq)` — a deterministic total
/// order even when nodes sample at identical timestamps.
#[must_use]
pub fn merge(streams: Vec<Vec<Sample>>) -> Timeline {
    let mut samples: Vec<Sample> = streams.into_iter().flatten().collect();
    samples.sort_by(|a, b| (a.at_us, &a.node, a.seq).cmp(&(b.at_us, &b.node, b.seq)));
    Timeline { samples }
}

/// Aggregate rate of one series across a [`Timeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct RateRow {
    /// Series name (a counter name, e.g. `wire.data.bytes`).
    pub name: String,
    /// Total delta summed over every sample.
    pub total: u64,
    /// `total` per second of timeline span (0 when the span is empty).
    pub per_sec: f64,
}

/// A merged, time-ordered cluster telemetry timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    samples: Vec<Sample>,
}

impl Timeline {
    /// The samples, in `(at_us, node, seq)` order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Time covered by the timeline, µs (0 for fewer than two samples).
    #[must_use]
    pub fn span_us(&self) -> u64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.at_us.saturating_sub(a.at_us),
            _ => 0,
        }
    }

    /// Sums every counter series across all samples.
    #[must_use]
    pub fn totals(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for s in &self.samples {
            for (name, v) in &s.counters {
                *out.entry(name.clone()).or_insert(0u64) += v;
            }
        }
        out
    }

    /// Aggregate per-second rates for every counter series, in name
    /// order. Rates divide by the timeline span; a single-instant
    /// timeline reports totals with `per_sec = 0`.
    #[must_use]
    pub fn rates(&self) -> Vec<RateRow> {
        let span_secs = self.span_us() as f64 / 1e6;
        self.totals()
            .into_iter()
            .map(|(name, total)| RateRow {
                name,
                total,
                per_sec: if span_secs > 0.0 {
                    total as f64 / span_secs
                } else {
                    0.0
                },
            })
            .collect()
    }

    /// Merges every sampled delta of the named histogram across all
    /// samples (bucket-wise), so cluster-wide interval percentiles can
    /// be recomputed.
    #[must_use]
    pub fn histogram(&self, name: &str) -> HistogramDelta {
        let mut out = HistogramDelta::empty();
        for s in &self.samples {
            for (n, d) in &s.histograms {
                if n == name {
                    out.merge(d);
                }
            }
        }
        out
    }

    /// One JSON object per sample, newline-delimited — the artifact
    /// format CI uploads and offline tooling greps.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&serde_json::to_string(&s.to_value()).expect("value trees render"));
            out.push('\n');
        }
        out
    }

    /// Compact JSON summary for embedding in per-run records (chaos
    /// `--json` lines): sample count, span, and total/rate per counter
    /// series.
    #[must_use]
    pub fn summary_value(&self) -> serde::Value {
        let rates: Vec<(String, serde::Value)> = self
            .rates()
            .into_iter()
            .map(|r| {
                (
                    r.name,
                    serde::Value::Obj(vec![
                        ("total".to_owned(), serde::Value::U64(r.total)),
                        ("per_sec".to_owned(), serde::Value::F64(r.per_sec)),
                    ]),
                )
            })
            .collect();
        serde::Value::Obj(vec![
            (
                "samples".to_owned(),
                serde::Value::U64(self.samples.len() as u64),
            ),
            ("span_us".to_owned(), serde::Value::U64(self.span_us())),
            ("series".to_owned(), serde::Value::Obj(rates)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(counts: &[(&str, u64)]) -> Arc<MetricsRegistry> {
        let reg = Arc::new(MetricsRegistry::new());
        for &(name, v) in counts {
            reg.counter(name).add(v);
        }
        reg
    }

    #[test]
    fn samples_report_deltas_not_totals() {
        let reg = reg_with(&[("msgs", 5)]);
        let mut s = TelemetrySampler::new("n0", Arc::clone(&reg));
        assert_eq!(s.sample(1000).counter("msgs"), 5);
        reg.counter("msgs").add(3);
        assert_eq!(s.sample(2000).counter("msgs"), 3);
        // Quiet interval: the series is omitted entirely.
        let quiet = s.sample(3000);
        assert!(quiet.counters.is_empty(), "{quiet:?}");
        // Cumulative total untouched by sampling.
        assert_eq!(reg.counter("msgs").get(), 8);
    }

    #[test]
    fn wire_series_surface_as_counters() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.wire().record(0, 1, 7, 100);
        reg.wire().record(0, 1, lhg_net::reliable::ACK_TAG | 1, 30);
        let mut s = TelemetrySampler::new("n0", Arc::clone(&reg));
        let first = s.sample(10);
        assert_eq!(first.counter("wire.data.frames"), 1);
        assert_eq!(first.counter("wire.data.bytes"), 100);
        assert_eq!(first.counter("wire.ack.bytes"), 30);
        reg.wire().record(1, 0, 8, 50);
        let second = s.sample(20);
        assert_eq!(second.counter("wire.data.bytes"), 50);
        assert_eq!(second.counter("wire.ack.frames"), 0, "quiet class omitted");
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let reg = reg_with(&[]);
        let mut s = TelemetrySampler::with_capacity("n0", reg, 3);
        for t in 0..5 {
            s.sample(t * 100);
        }
        let kept: Vec<u64> = s.samples().iter().map(|x| x.at_us).collect();
        assert_eq!(kept, vec![200, 300, 400]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn merge_orders_across_nodes_by_time_then_node_then_seq() {
        let reg = reg_with(&[]);
        let mut a = TelemetrySampler::new("a", Arc::clone(&reg));
        let mut b = TelemetrySampler::new("b", reg);
        // Interleaved and tied timestamps across two nodes.
        a.sample(100);
        b.sample(50);
        a.sample(200);
        b.sample(100); // ties with a@100: node breaks the tie
        b.sample(200);
        let tl = merge(vec![a.take_samples(), b.take_samples()]);
        let order: Vec<(u64, String)> = tl
            .samples()
            .iter()
            .map(|s| (s.at_us, s.node.clone()))
            .collect();
        assert_eq!(
            order,
            vec![
                (50, "b".to_owned()),
                (100, "a".to_owned()),
                (100, "b".to_owned()),
                (200, "a".to_owned()),
                (200, "b".to_owned()),
            ]
        );
        assert_eq!(tl.span_us(), 150);
    }

    #[test]
    fn merge_is_deterministic_under_stream_permutation() {
        let reg = reg_with(&[]);
        let mut a = TelemetrySampler::new("a", Arc::clone(&reg));
        let mut b = TelemetrySampler::new("b", reg);
        for t in [10u64, 20, 30] {
            a.sample(t);
            b.sample(t);
        }
        let (sa, sb) = (a.take_samples(), b.take_samples());
        let one = merge(vec![sa.clone(), sb.clone()]);
        let two = merge(vec![sb, sa]);
        assert_eq!(one.samples(), two.samples());
    }

    #[test]
    fn rates_divide_totals_by_span() {
        let reg = reg_with(&[]);
        let mut s = TelemetrySampler::new("n0", Arc::clone(&reg));
        s.sample(0);
        reg.counter("msgs").add(10);
        s.sample(500_000); // 0.5 s in
        reg.counter("msgs").add(10);
        s.sample(1_000_000); // 1 s span
        let tl = merge(vec![s.take_samples()]);
        let rates = tl.rates();
        let row = rates.iter().find(|r| r.name == "msgs").unwrap();
        assert_eq!(row.total, 20);
        assert!((row.per_sec - 20.0).abs() < 1e-9, "{}", row.per_sec);
    }

    #[test]
    fn timeline_histograms_remerge_for_cluster_percentiles() {
        let reg_a = Arc::new(MetricsRegistry::new());
        let reg_b = Arc::new(MetricsRegistry::new());
        reg_a.histogram("lat").record(10);
        reg_b.histogram("lat").record(5000);
        let mut a = TelemetrySampler::new("a", reg_a);
        let mut b = TelemetrySampler::new("b", reg_b);
        a.sample(100);
        b.sample(100);
        let tl = merge(vec![a.take_samples(), b.take_samples()]);
        let d = tl.histogram("lat");
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 5010);
        assert!(d.percentile(0.99) >= 5000);
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let reg = reg_with(&[("x", 1)]);
        let mut s = TelemetrySampler::new("n0", Arc::clone(&reg));
        reg.gauge("open").set(-2);
        reg.histogram("lat").record(42);
        s.sample(7);
        let tl = merge(vec![s.take_samples()]);
        let jsonl = tl.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        for line in jsonl.lines() {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v.field("node").and_then(serde::Value::as_str), Some("n0"));
            assert_eq!(v.field("at_us").and_then(serde::Value::as_u64), Some(7));
        }
        let summary = serde_json::to_string(&tl.summary_value()).unwrap();
        assert!(summary.contains("\"samples\""), "{summary}");
    }

    #[test]
    fn periodic_sampler_collects_and_flushes_on_stop() {
        let reg = reg_with(&[]);
        let sampler = TelemetrySampler::new("n0", Arc::clone(&reg));
        let handle = sampler.spawn_periodic(Duration::from_millis(10));
        reg.counter("msgs").add(4);
        std::thread::sleep(Duration::from_millis(40));
        let sampler = handle.stop();
        assert!(!sampler.is_empty(), "periodic samples were taken");
        let tl = merge(vec![sampler.samples()]);
        assert_eq!(tl.totals().get("msgs"), Some(&4), "final flush caught it");
    }

    #[test]
    fn sim_virtual_time_sampling_fires_on_cadence() {
        use bytes::Bytes;
        use lhg_core::ktree::build_ktree;
        use lhg_net::broadcast::FloodProcess;
        use lhg_net::sim::{LinkModel, Process};

        let overlay = build_ktree(8, 2).expect("builds");
        let reg = Arc::new(MetricsRegistry::new());
        let mut sim = Simulation::new(
            overlay.graph(),
            LinkModel {
                base_latency_us: 1000,
                jitter_us: 0,
            },
            1,
        );
        sim.with_metrics(Arc::clone(&reg));
        let sampler = Arc::new(Mutex::new(TelemetrySampler::new("sim", Arc::clone(&reg))));
        attach_to_sim(&mut sim, &sampler, 1000);
        let processes: Vec<Box<dyn Process>> = (0..8)
            .map(|v| -> Box<dyn Process> {
                if v == 0 {
                    Box::new(FloodProcess::origin(1, Bytes::from_static(b"hi")))
                } else {
                    Box::new(FloodProcess::relay())
                }
            })
            .collect();
        let report = sim.run(processes, 1_000_000);
        let sampler = Arc::try_unwrap(sampler)
            .expect("sim dropped its hook")
            .into_inner();
        let tl = merge(vec![sampler.samples()]);
        assert!(tl.samples().len() >= 2, "cadence fired during the run");
        // Virtual timestamps, strictly on the cadence grid (plus the
        // final flush at end time).
        for s in &tl.samples()[..tl.samples().len() - 1] {
            assert_eq!(s.at_us % 1000, 0, "off-cadence sample at {}", s.at_us);
        }
        // The sampled message total matches the engine's own report.
        assert_eq!(
            tl.totals().get("sim.messages_sent").copied().unwrap_or(0),
            report.messages_sent
        );
        // Wire-class series reconcile with the same totals.
        assert_eq!(
            tl.totals().get("wire.data.frames").copied().unwrap_or(0),
            report.messages_sent
        );
    }
}
