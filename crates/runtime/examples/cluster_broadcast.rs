//! A 10-node loopback cluster: broadcast, one injected crash, self-heal,
//! broadcast again, then print the metrics snapshot as JSON. On teardown
//! (and on failure) the cluster's flight-recorder timeline is persisted as
//! JSONL next to the system temp dir for postmortem reading.
//!
//! Run with: `cargo run -p lhg-runtime --example cluster_broadcast`

use std::time::Duration;

use bytes::Bytes;
use lhg_core::Constraint;
use lhg_runtime::{Cluster, RuntimeConfig};

/// Persists the flight-recorder timeline; called on success and, via the
/// checkpoint helper, before any failing assertion aborts the run.
fn dump_timeline(cluster: &Cluster) {
    let path = std::env::temp_dir().join("cluster_broadcast_events.jsonl");
    match cluster.dump_events(&path) {
        Ok(()) => eprintln!("flight-recorder timeline -> {}", path.display()),
        Err(e) => eprintln!("timeline dump failed: {e}"),
    }
}

/// Asserts `ok`, dumping the event timeline first when it does not hold so
/// the failure leaves its evidence behind.
fn checkpoint(cluster: &Cluster, ok: bool, what: &str) {
    if !ok {
        dump_timeline(cluster);
        panic!("{what}");
    }
}

fn main() {
    let n = 10;
    let k = 3;
    // K-DIAMOND rather than JD: it exists at every n ≥ 2k, so healing can
    // never land on a non-constructible size.
    eprintln!("booting a {n}-node K-DIAMOND cluster at k={k} on 127.0.0.1 ...");
    let mut cluster = Cluster::launch(Constraint::KDiamond, n, k, RuntimeConfig::default())
        .expect("cluster boots");

    let id = cluster
        .broadcast(0, Bytes::from_static(b"hello, overlay"))
        .expect("origin alive");
    checkpoint(
        &cluster,
        cluster.await_delivery(id, Duration::from_secs(10)),
        "every node delivers",
    );
    eprintln!("broadcast {id:#x} delivered by all {n} nodes");

    let victim = 4;
    cluster.kill(victim).expect("victim alive");
    eprintln!("injected fail-stop crash of node {victim}");
    checkpoint(
        &cluster,
        cluster.await_heal(Duration::from_secs(20)),
        "survivors heal around the crash",
    );
    eprintln!(
        "healed: {} survivors agree on a k-connected overlay",
        cluster.survivors().len()
    );

    let id2 = cluster
        .broadcast(1, Bytes::from_static(b"still here"))
        .expect("survivor originates");
    checkpoint(
        &cluster,
        cluster.await_delivery(id2, Duration::from_secs(10)),
        "every survivor delivers",
    );
    eprintln!("post-heal broadcast {id2:#x} delivered by all survivors");

    // Both broadcasts were traced: print their realized dissemination trees.
    for trace in cluster.traces() {
        eprintln!(
            "trace {:#x}: origin {:?}, {} deliveries, max {} hops, {} µs end-to-end",
            trace.trace_id,
            trace.origin(),
            trace.delivered_nodes().len(),
            trace.max_hops(),
            trace.eccentricity_us()
        );
    }
    dump_timeline(&cluster);

    // The metrics snapshot goes to stdout as JSON (pipe it to a file or jq).
    println!("{}", cluster.metrics_json());
    cluster.shutdown();
}
