//! A 10-node loopback cluster: broadcast, one injected crash, self-heal,
//! broadcast again, then print the metrics snapshot as JSON.
//!
//! Run with: `cargo run -p lhg-runtime --example cluster_broadcast`

use std::time::Duration;

use bytes::Bytes;
use lhg_core::Constraint;
use lhg_runtime::{Cluster, RuntimeConfig};

fn main() {
    let n = 10;
    let k = 3;
    // K-DIAMOND rather than JD: it exists at every n ≥ 2k, so healing can
    // never land on a non-constructible size.
    eprintln!("booting a {n}-node K-DIAMOND cluster at k={k} on 127.0.0.1 ...");
    let mut cluster = Cluster::launch(Constraint::KDiamond, n, k, RuntimeConfig::default())
        .expect("cluster boots");

    let id = cluster
        .broadcast(0, Bytes::from_static(b"hello, overlay"))
        .expect("origin alive");
    assert!(
        cluster.await_delivery(id, Duration::from_secs(10)),
        "every node delivers"
    );
    eprintln!("broadcast {id:#x} delivered by all {n} nodes");

    let victim = 4;
    cluster.kill(victim).expect("victim alive");
    eprintln!("injected fail-stop crash of node {victim}");
    assert!(
        cluster.await_heal(Duration::from_secs(20)),
        "survivors heal around the crash"
    );
    eprintln!(
        "healed: {} survivors agree on a k-connected overlay",
        cluster.survivors().len()
    );

    let id2 = cluster
        .broadcast(1, Bytes::from_static(b"still here"))
        .expect("survivor originates");
    assert!(
        cluster.await_delivery(id2, Duration::from_secs(10)),
        "every survivor delivers"
    );
    eprintln!("post-heal broadcast {id2:#x} delivered by all survivors\n");

    // The metrics snapshot goes to stdout as JSON (pipe it to a file or jq).
    println!("{}", cluster.metrics_json());
    cluster.shutdown();
}
