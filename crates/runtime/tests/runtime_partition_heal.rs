//! Partition + heal over real sockets: a 12-node k=3 cluster is cut 2/10
//! by the fault injector, the cut is healed, and every replica must
//! reconverge onto the full membership — with every broadcast delivered
//! exactly once per node throughout.

use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use lhg_core::overlay::MemberId;
use lhg_core::Constraint;
use lhg_net::fault::{FaultInjector, Partition};
use lhg_runtime::{Cluster, RuntimeConfig};

const N: usize = 12;
const K: usize = 3;

/// Chaos-grade timers: fast heartbeats so detection and reconvergence fit
/// in test time, aggressive redial so healed links come back quickly.
fn fast_config(faults: Arc<FaultInjector>) -> RuntimeConfig {
    RuntimeConfig {
        heartbeat_period: Duration::from_millis(10),
        heartbeat_timeout: Duration::from_millis(250),
        dial_backoff: Duration::from_millis(5),
        dial_backoff_cap: Duration::from_millis(80),
        dial_max_attempts: 8,
        dial_timeout: Duration::from_millis(100),
        tick: Duration::from_millis(2),
        launch_timeout: Duration::from_secs(10),
        faults: Some(faults),
        ..RuntimeConfig::default()
    }
}

fn poll_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn partition_heals_and_replicas_reconverge_without_duplicates() {
    // The injector is shared with every node so partitions flipped at
    // runtime take effect on live links immediately.
    let inj = Arc::new(FaultInjector::new(0xC0FFEE));
    let mut c = Cluster::launch(Constraint::KDiamond, N, K, fast_config(Arc::clone(&inj)))
        .expect("cluster boots and fully connects");
    let members = c.members();

    // Baseline: a broadcast spans the intact overlay.
    let id1 = c
        .broadcast(0, Bytes::from_static(b"before the cut"))
        .expect("origin is alive");
    assert!(
        c.await_delivery(id1, Duration::from_secs(10)),
        "all 12 nodes deliver the pre-partition broadcast"
    );

    // Cut members 10 and 11 (a k-1 sized minority) off from the other ten,
    // both directions, until explicitly healed.
    let minority: BTreeSet<u32> = [10u32, 11].into_iter().collect();
    inj.add_partition_shared(Partition {
        a: minority.clone(),
        b: BTreeSet::new(),
        from_us: 0,
        until_us: u64::MAX,
        directed: false,
    });

    // A majority-side broadcast during the cut reaches every majority node
    // even while the minority is unreachable.
    std::thread::sleep(Duration::from_millis(400));
    let majority: Vec<MemberId> = members.iter().copied().filter(|&m| m < 10).collect();
    let id2 = c
        .broadcast(0, Bytes::from_static(b"during the cut"))
        .expect("origin is alive");
    assert!(
        c.await_delivery_by(id2, &majority, Duration::from_secs(10)),
        "the majority side keeps delivering under the partition"
    );

    // Heal the cut: every replica must reconverge onto the full 12-member
    // overlay, nobody stuck degraded, all link sets agreeing.
    inj.clear_partitions();
    let everyone: BTreeSet<MemberId> = members.iter().copied().collect();
    let reconverged = poll_until(Duration::from_secs(15), || {
        c.degraded_members().is_empty()
            && members.iter().all(|&m| {
                c.node(m).is_some_and(|s| {
                    s.overlay_snapshot()
                        .members()
                        .iter()
                        .copied()
                        .collect::<BTreeSet<_>>()
                        == everyone
                })
            })
            && c.overlays_agree()
    });
    assert!(reconverged, "replicas reconverge after the partition heals");
    assert!(
        c.await_links(Duration::from_secs(5)),
        "every overlay link is live again after the heal"
    );

    // Post-heal broadcast reaches everyone, including the former minority.
    let id3 = c
        .broadcast(11, Bytes::from_static(b"after the heal"))
        .expect("former minority member originates");
    assert!(
        c.await_delivery(id3, Duration::from_secs(10)),
        "all 12 nodes deliver the post-heal broadcast"
    );

    // Exactly-once delivery: no node ever delivered any broadcast twice,
    // through suspicion churn, redials, and re-floods.
    for &m in &members {
        let ids = c.delivered_ids(m);
        let unique: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(
            unique.len(),
            ids.len(),
            "node {m} delivered some broadcast more than once: {ids:#x?}"
        );
        assert!(
            ids.contains(&id1) && ids.contains(&id3),
            "node {m} has both"
        );
    }

    c.shutdown();
}
