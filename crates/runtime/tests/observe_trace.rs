//! Observability acceptance: a 12-node k=3 cluster with 2 fail-stop crashes
//! must leave behind (a) a JSONL flight-recorder timeline covering the whole
//! lifecycle — connect, broadcast, suspicion, crash report, healing — and
//! (b) a causal trace per broadcast whose reconstructed dissemination tree
//! spans every survivor within the paper's O(log n) hop bound.

use std::collections::BTreeSet;
use std::time::Duration;

use bytes::Bytes;
use lhg_core::overlay::MemberId;
use lhg_core::properties::p4_diameter_bound;
use lhg_core::Constraint;
use lhg_runtime::{Cluster, RuntimeConfig};
use lhg_trace::EventKind;

const N: usize = 12;
const K: usize = 3;

/// Dumps the merged timeline to a temp file so a failing run leaves its
/// evidence behind, then panics with the message.
fn fail_with_dump(c: &Cluster, msg: &str) -> ! {
    let path = std::env::temp_dir().join("lhg_observe_trace_failure.jsonl");
    let hint = match c.dump_events(&path) {
        Ok(()) => format!("timeline dumped to {}", path.display()),
        Err(e) => format!("timeline dump failed: {e}"),
    };
    panic!("{msg} ({hint})");
}

#[test]
fn traced_lifecycle_spans_survivors_within_hop_bound() {
    let mut c = Cluster::launch(Constraint::Jd, N, K, RuntimeConfig::default())
        .expect("cluster boots and fully connects");
    let all: BTreeSet<u32> = c.members().iter().map(|&m| m as u32).collect();

    // Pre-crash broadcast: traced across the full 12-node overlay.
    let id1 = c
        .broadcast(0, Bytes::from_static(b"traced, before crashes"))
        .expect("origin alive");
    if !c.await_delivery(id1, Duration::from_secs(15)) {
        fail_with_dump(&c, "first broadcast not delivered everywhere");
    }

    // Two fail-stop crashes (k-1), then healing.
    let victims: [MemberId; 2] = [5, 10];
    for v in victims {
        c.kill(v).expect("victim alive");
    }
    if !c.await_heal(Duration::from_secs(30)) {
        fail_with_dump(&c, "survivors did not heal in time");
    }

    // Post-heal broadcast: traced across exactly the survivors.
    let survivors: BTreeSet<u32> = c.survivors().iter().map(|&m| m as u32).collect();
    let id2 = c
        .broadcast(0, Bytes::from_static(b"traced, after the heal"))
        .expect("origin alive");
    if !c.await_delivery(id2, Duration::from_secs(15)) {
        fail_with_dump(&c, "post-heal broadcast not delivered to survivors");
    }

    // --- Causal traces: realized trees span the right sets within bound ---
    let t1 = c.tracer().trace(id1).expect("first broadcast was traced");
    let r1 = t1.report(&all, p4_diameter_bound(N, K));
    assert_eq!(t1.origin(), Some(0));
    assert!(r1.spanning, "pre-crash tree spans all 12 nodes: {r1:?}");
    assert!(r1.within_bound(), "pre-crash hops within bound: {r1:?}");
    for &m in &all {
        let path = t1.path_from_origin(m).expect("path reconstructs");
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.len() as u32 - 1, t1.delivery(m).unwrap().hops);
    }

    let t2 = c.tracer().trace(id2).expect("second broadcast was traced");
    let r2 = t2.report(&survivors, p4_diameter_bound(N - victims.len(), K));
    assert!(r2.spanning, "post-heal tree spans all survivors: {r2:?}");
    assert!(r2.within_bound(), "post-heal hops within bound: {r2:?}");
    for v in victims {
        assert!(
            t2.delivery(v as u32).is_none(),
            "the dead are not on the post-heal tree"
        );
    }

    // --- Flight recorder: the JSONL timeline covers the full lifecycle ---
    let events = c.events();
    let has = |pred: &dyn Fn(&EventKind) -> bool| events.iter().any(|e| pred(&e.kind));
    assert!(has(&|k| matches!(k, EventKind::Connect { .. })));
    assert!(has(
        &|k| matches!(k, EventKind::BroadcastAccept { trace_id } if *trace_id == id1)
    ));
    assert!(has(
        &|k| matches!(k, EventKind::BroadcastDeliver { trace_id, .. } if *trace_id == id2)
    ));
    assert!(has(&|k| matches!(k, EventKind::Suspicion { .. })));
    for v in victims {
        assert!(
            has(&|k| matches!(k, EventKind::CrashReport { victim, .. } if *victim == v as u32)),
            "crash of {v} reported somewhere"
        );
    }
    assert!(has(&|k| matches!(k, EventKind::HealBegin { .. })));
    assert!(has(&|k| matches!(k, EventKind::HealEnd { .. })));
    // Merged timeline is time-ordered (shared epoch across recorders).
    assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us));

    // The JSONL rendering names every lifecycle stage.
    let jsonl = c.events_jsonl();
    for stage in [
        "\"event\":\"connect\"",
        "\"event\":\"broadcast_accept\"",
        "\"event\":\"broadcast_deliver\"",
        "\"event\":\"suspicion\"",
        "\"event\":\"crash_report\"",
        "\"event\":\"heal_begin\"",
        "\"event\":\"heal_end\"",
    ] {
        assert!(jsonl.contains(stage), "timeline covers {stage}");
    }

    // dump_events persists exactly that timeline.
    let path = std::env::temp_dir().join("lhg_observe_trace_dump.jsonl");
    c.dump_events(&path).expect("dump succeeds");
    let on_disk = std::fs::read_to_string(&path).expect("read back");
    assert!(!on_disk.is_empty());
    for line in on_disk.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSONL: {line}"
        );
    }
    std::fs::remove_file(&path).ok();

    c.shutdown();
}
