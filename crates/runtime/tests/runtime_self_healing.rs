//! End-to-end self-healing over real sockets: a k=3 LHG of 12 nodes on
//! loopback TCP, one broadcast, two fail-stop crashes, then the survivors
//! must detect, heal back to a 3-connected overlay, and keep delivering.

use std::collections::BTreeSet;
use std::time::Duration;

use bytes::Bytes;
use lhg_core::overlay::MemberId;
use lhg_core::Constraint;
use lhg_graph::connectivity::is_k_vertex_connected;
use lhg_runtime::{Cluster, RuntimeConfig};

const N: usize = 12;
const K: usize = 3;

#[test]
fn twelve_node_cluster_survives_two_crashes() {
    let mut c = Cluster::launch(Constraint::Jd, N, K, RuntimeConfig::default())
        .expect("cluster boots and fully connects");

    // Phase 1: a broadcast reaches every node over TCP.
    let id1 = c
        .broadcast(0, Bytes::from_static(b"before the crashes"))
        .expect("origin is alive");
    assert!(
        c.await_delivery(id1, Duration::from_secs(15)),
        "all 12 nodes deliver the first broadcast"
    );

    // Phase 2: fail-stop k-1 = 2 nodes, no goodbye messages.
    let victims: [MemberId; 2] = [7, 11];
    for v in victims {
        c.kill(v).expect("victim was alive");
    }

    // Phase 3: heartbeat silence flags both crashes everywhere, and every
    // survivor converges onto the same rebuilt overlay with live links.
    assert!(
        c.await_heal(Duration::from_secs(30)),
        "survivors detect both crashes and re-establish the healed mesh"
    );
    let survivors = c.survivors();
    assert_eq!(survivors.len(), N - victims.len());
    for &s in &survivors {
        let flagged = c.node(s).expect("known member").crashes_applied();
        for v in victims {
            assert!(flagged.contains(&v), "survivor {s} flagged crash of {v}");
        }
    }

    // Phase 4: the healed topology is again a k-connected LHG, and all
    // replicas agree on it.
    assert!(c.overlays_agree(), "survivor replicas converged");
    let g = c.survivor_graph().expect("survivors exist");
    assert_eq!(g.node_count(), N - victims.len());
    assert!(
        is_k_vertex_connected(&g, K),
        "healed overlay is {K}-node-connected"
    );
    let healed_members: BTreeSet<MemberId> = c
        .node(survivors[0])
        .expect("known member")
        .overlay_snapshot()
        .members()
        .iter()
        .copied()
        .collect();
    assert_eq!(
        healed_members,
        survivors.iter().copied().collect::<BTreeSet<_>>(),
        "healed membership is exactly the survivor set"
    );

    // Phase 5: post-heal broadcasts still reach every correct node.
    let id2 = c
        .broadcast(survivors[1], Bytes::from_static(b"after the heal"))
        .expect("survivor originates");
    assert!(
        c.await_delivery(id2, Duration::from_secs(15)),
        "all correct nodes deliver the post-heal broadcast"
    );
    for &s in &survivors {
        let ids = c.delivered_ids(s);
        assert!(
            ids.contains(&id1) && ids.contains(&id2),
            "node {s} has both"
        );
    }
    // The dead never deliver the second broadcast (they stopped first).
    for v in victims {
        assert!(!c.delivered_ids(v).contains(&id2));
    }

    // Metrics captured the story: suspicions, heals, latencies, reconnects.
    let m = c.metrics();
    assert!(
        m.counter("runtime.suspects").get() >= 1,
        "someone suspected"
    );
    assert!(
        m.counter("runtime.crashes_applied").get() >= (survivors.len() as u64),
        "every survivor applied at least one crash"
    );
    assert!(m.histogram("runtime.delivery_latency_us").count() >= 20);
    assert!(m.histogram("runtime.reconnect_time_us").count() >= 1);

    c.shutdown();
}
