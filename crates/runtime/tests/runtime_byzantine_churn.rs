//! Churn-tolerant Byzantine broadcast acceptance: the failure detector
//! must survive nodes that *lie about other nodes dying*, and the Bracha
//! quorums must re-size when nodes *actually* die.
//!
//! The first test is the regression guarantee for byz-aware suspicion: a
//! lone traitor flooding forged CRASH waves — fresh nonces every heartbeat,
//! so dedup never absorbs them — cannot excommunicate a live, heartbeating
//! node, because crash reports only apply once f+1 *distinct* reporters
//! corroborate them and a directly-live peer vetoes the wave. The second
//! proves byzantine broadcast keeps certifying across real churn: after a
//! genuine kill, survivors bump their membership views and post-crash
//! instances certify under the re-sized quorums.

use std::time::Duration;

use bytes::Bytes;
use lhg_byzantine::TraitorBehavior;
use lhg_core::overlay::MemberId;
use lhg_core::Constraint;
use lhg_runtime::{ByzantineSetup, Cluster, RuntimeConfig};

const N: usize = 8;
const K: usize = 3; // f = ⌊(k−1)/2⌋ = 1 → corroboration quorum f+1 = 2

fn byz_config(traitors: Vec<(u64, TraitorBehavior)>) -> RuntimeConfig {
    RuntimeConfig {
        byzantine: Some(ByzantineSetup { f: 1, traitors }),
        ..RuntimeConfig::default()
    }
}

#[test]
fn forged_crash_wave_cannot_excommunicate_live_node() {
    let traitor: MemberId = (N - 1) as MemberId;
    let mut c = Cluster::launch(
        Constraint::KDiamond,
        N,
        K,
        byz_config(vec![(traitor as u64, TraitorBehavior::FrameCrash)]),
    )
    .expect("cluster boots and fully connects");

    // The frame-crash traitor targets its lowest-id fellow member.
    let framed: MemberId = 0;

    // Let many heartbeat periods pass: the traitor floods a forged CRASH
    // wave (fresh nonce each time) on every one of them. Without
    // corroborated suspicion, the very first wave would excommunicate the
    // framed node within a detection delay.
    std::thread::sleep(Duration::from_millis(1_500));
    assert!(
        c.metrics().counter("runtime.forged_crash_waves").get() >= 10,
        "the attack must actually mount for this test to prove anything"
    );

    for m in c.members().into_iter().filter(|&m| m != traitor) {
        let s = c.node(m).expect("node launched");
        assert!(
            !s.crashes_applied().contains(&framed),
            "node {m} excommunicated live member {framed} on one liar's word"
        );
        assert!(
            s.overlay_snapshot().contains(framed),
            "node {m} dropped live member {framed} from its overlay"
        );
        assert!(!s.is_degraded(), "node {m} degraded under a forged wave");
    }
    // A single voice never reaches the f+1 reporter quorum.
    assert!(
        c.metrics().counter("runtime.crash_reports_pending").get() >= 1,
        "forged reports must be held pending, not applied"
    );

    // The framed node is a full protocol participant still: a byzantine
    // broadcast certifies at every correct node, the framed one included.
    c.byzantine_broadcast(1, 0x77, Bytes::from_static(b"still standing"))
        .expect("correct origin");
    let correct: Vec<MemberId> = c.members().into_iter().filter(|&m| m != traitor).collect();
    assert!(
        c.await_byz_delivery(0x77, &correct, Duration::from_secs(10)),
        "byz broadcast must certify despite the frame-crash flood"
    );
    c.shutdown();
}

#[test]
fn churned_cluster_still_delivers_byz_broadcasts() {
    let mut c = Cluster::launch(Constraint::KDiamond, N, K, byz_config(Vec::new()))
        .expect("cluster boots and fully connects");
    let victim: MemberId = (N - 1) as MemberId;

    // Boot-view instance: certifies at all n nodes.
    c.byzantine_broadcast(0, 0x1, Bytes::from_static(b"before the crash"))
        .expect("send");
    let all = c.members();
    assert!(
        c.await_byz_delivery(0x1, &all, Duration::from_secs(10)),
        "boot-view instance certifies everywhere"
    );

    // A genuine fail-stop crash: survivors detect it (real heartbeat
    // silence corroborates across f+1 reporters), excommunicate, heal,
    // and bump their Bracha membership views.
    c.kill(victim).expect("victim alive");
    assert!(
        c.await_heal(Duration::from_secs(15)),
        "survivors heal after the kill"
    );

    // Post-churn instance: quorums are sized from the live view (n−1) and
    // certification must still be total among survivors.
    c.byzantine_broadcast(0, 0x2, Bytes::from_static(b"after the crash"))
        .expect("send");
    let survivors = c.survivors();
    assert!(
        c.await_byz_delivery(0x2, &survivors, Duration::from_secs(10)),
        "post-churn instance certifies at every survivor"
    );
    let digest = lhg_byzantine::digest(b"after the crash");
    for &m in &survivors {
        let got = c.byz_delivered(m);
        assert_eq!(got.len(), 2, "exactly the two honest instances at {m}");
        assert_eq!(got[1].trace, Some(digest), "certified digest at {m}");
    }
    c.shutdown();
}

/// The full-lifecycle regression: a node is killed, an instance certifies
/// *while it is dead*, and after a blank-reboot rejoin the revenant must
/// still deliver that instance — learned purely through the SYNC catch-up
/// extension — agreeing with the stable majority digest for digest. A
/// `Forge` traitor serves poisoned catch-up summaries the whole time (a
/// fabricated "the majority delivered this" instance plus digest-flipped
/// copies of the real ones); since a summary only advances state as one
/// synthetic voice in the existing quorums, one liar stays f short of
/// every threshold and the revenant certifies nothing the majority
/// didn't.
#[test]
fn rejoined_node_catches_up_despite_forged_summaries() {
    let traitor: MemberId = (N - 1) as MemberId;
    let mut c = Cluster::launch(
        Constraint::KDiamond,
        N,
        K,
        byz_config(vec![(traitor as u64, TraitorBehavior::Forge)]),
    )
    .expect("cluster boots and fully connects");
    let victim: MemberId = 3;
    let correct: Vec<MemberId> = c
        .members()
        .into_iter()
        .filter(|&m| m != traitor && m != victim)
        .collect();

    // Pre-crash instance: certifies everywhere while the victim is up.
    c.byzantine_broadcast(0, 0x10, Bytes::from_static(b"before the kill"))
        .expect("send");
    let all_but_traitor: Vec<MemberId> =
        c.members().into_iter().filter(|&m| m != traitor).collect();
    assert!(
        c.await_byz_delivery(0x10, &all_but_traitor, Duration::from_secs(10)),
        "pre-crash instance certifies at every correct node"
    );

    c.kill(victim).expect("victim alive");
    assert!(c.await_heal(Duration::from_secs(15)), "survivors heal");

    // Originated while the victim is dead — an instance it can only ever
    // learn through catch-up.
    c.byzantine_broadcast(0, 0x11, Bytes::from_static(b"sent while dead"))
        .expect("send");
    assert!(
        c.await_byz_delivery(0x11, &correct, Duration::from_secs(10)),
        "dead-window instance certifies at the stable majority"
    );

    // Blank-reboot rejoin: a fresh engine with an empty log.
    c.rejoin(victim).expect("victim restarts");
    assert!(
        c.await_heal(Duration::from_secs(15)),
        "views re-expand to n"
    );
    assert!(
        c.await_byz_delivery(0x10, &[victim], Duration::from_secs(10)),
        "rejoiner catches up on the pre-crash instance"
    );
    assert!(
        c.await_byz_delivery(0x11, &[victim], Duration::from_secs(10)),
        "rejoiner delivers the instance originated while it was dead"
    );

    // Agreement with the stable majority, digest for digest — and nothing
    // the majority never certified, despite the forged summaries.
    let got = c.byz_delivered(victim);
    let nonces: std::collections::BTreeSet<u64> = got.iter().map(|d| d.broadcast_id).collect();
    assert_eq!(
        nonces,
        [0x10u64, 0x11].into_iter().collect(),
        "the revenant certified exactly the majority's instances — a \
         forged summary must never become a delivery"
    );
    let expect_dead = lhg_byzantine::digest(b"sent while dead");
    for d in &got {
        if d.broadcast_id == 0x11 {
            assert_eq!(d.trace, Some(expect_dead), "digest matches the majority");
        }
    }
    assert!(
        c.metrics().counter("runtime.catchup_ingests").get() >= 1,
        "catch-up summaries were actually ingested, not just requested"
    );
    c.shutdown();
}
