//! Fail-stop, heal, rejoin: a killed node restarts, re-dials, is
//! re-admitted by the survivors, and delivers subsequent broadcasts —
//! the end-to-end crash-recovery story over real sockets.

use std::collections::HashSet;
use std::time::Duration;

use bytes::Bytes;
use lhg_core::overlay::MemberId;
use lhg_core::Constraint;
use lhg_runtime::{Cluster, ClusterError, RuntimeConfig};

const N: usize = 10;
const K: usize = 3;
const VICTIM: MemberId = 9;

fn fast_config() -> RuntimeConfig {
    RuntimeConfig {
        heartbeat_period: Duration::from_millis(10),
        heartbeat_timeout: Duration::from_millis(250),
        dial_backoff: Duration::from_millis(5),
        dial_backoff_cap: Duration::from_millis(80),
        dial_timeout: Duration::from_millis(100),
        tick: Duration::from_millis(2),
        launch_timeout: Duration::from_secs(10),
        ..RuntimeConfig::default()
    }
}

#[test]
fn killed_node_rejoins_and_delivers_broadcasts() {
    let mut c = Cluster::launch(Constraint::KDiamond, N, K, fast_config())
        .expect("cluster boots and fully connects");

    // Phase 1: baseline broadcast over the intact overlay.
    let id1 = c
        .broadcast(0, Bytes::from_static(b"all ten alive"))
        .expect("origin is alive");
    assert!(
        c.await_delivery(id1, Duration::from_secs(10)),
        "all 10 nodes deliver"
    );

    // Phase 2: fail-stop one node; killing it again is a distinct error.
    c.kill(VICTIM).expect("victim was alive");
    assert!(matches!(
        c.kill(VICTIM),
        Err(ClusterError::AlreadyKilled(VICTIM))
    ));
    assert!(
        c.await_heal(Duration::from_secs(15)),
        "survivors excommunicate the victim and heal to n=9"
    );
    let id2 = c
        .broadcast(0, Bytes::from_static(b"nine survivors"))
        .expect("origin is alive");
    assert!(
        c.await_delivery(id2, Duration::from_secs(10)),
        "all 9 survivors deliver"
    );

    // Phase 3: the victim rejoins — fresh port, JOIN announcement, and the
    // survivors re-admit it at the original membership slot.
    c.rejoin(VICTIM).expect("victim restarts");
    assert!(
        c.await_heal(Duration::from_secs(15)),
        "every replica, including the revenant's, converges back to n=10"
    );
    assert!(c.overlays_agree(), "replicas agree after the rejoin");

    // Phase 4: broadcasts now span the revenant — both as a receiver and
    // as an origin.
    let id3 = c
        .broadcast(0, Bytes::from_static(b"welcome back"))
        .expect("origin is alive");
    assert!(
        c.await_delivery(id3, Duration::from_secs(10)),
        "all 10 nodes, revenant included, deliver"
    );
    assert!(
        c.delivered_ids(VICTIM).contains(&id3),
        "the revenant delivered the post-rejoin broadcast"
    );
    let id4 = c
        .broadcast(VICTIM, Bytes::from_static(b"revenant speaks"))
        .expect("revenant originates");
    assert!(
        c.await_delivery(id4, Duration::from_secs(10)),
        "a revenant-originated broadcast reaches everyone"
    );

    // Anti-entropy may legitimately backfill id2 (sent while the victim
    // was dead) after the rejoin — summaries advertise recently-seen ids
    // and the revenant pulls its gaps — so "never delivered" would be
    // racy. The binding invariant is exactly-once: nothing is delivered
    // twice across the kill/rejoin cycle.
    for m in c.members() {
        let ids = c.delivered_ids(m);
        let unique: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "node {m} double-delivered");
    }

    c.shutdown();
}
