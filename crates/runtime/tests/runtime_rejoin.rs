//! Fail-stop, heal, rejoin: a killed node restarts, re-dials, is
//! re-admitted by the survivors, and delivers subsequent broadcasts —
//! the end-to-end crash-recovery story over real sockets.

use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use lhg_core::overlay::MemberId;
use lhg_core::Constraint;
use lhg_net::fault::{FaultInjector, LinkFaults, Partition};
use lhg_runtime::{Cluster, ClusterError, RuntimeConfig};

const N: usize = 10;
const K: usize = 3;
const VICTIM: MemberId = 9;

fn fast_config() -> RuntimeConfig {
    RuntimeConfig {
        heartbeat_period: Duration::from_millis(10),
        heartbeat_timeout: Duration::from_millis(250),
        dial_backoff: Duration::from_millis(5),
        dial_backoff_cap: Duration::from_millis(80),
        dial_timeout: Duration::from_millis(100),
        tick: Duration::from_millis(2),
        launch_timeout: Duration::from_secs(10),
        ..RuntimeConfig::default()
    }
}

#[test]
fn killed_node_rejoins_and_delivers_broadcasts() {
    let mut c = Cluster::launch(Constraint::KDiamond, N, K, fast_config())
        .expect("cluster boots and fully connects");

    // Phase 1: baseline broadcast over the intact overlay.
    let id1 = c
        .broadcast(0, Bytes::from_static(b"all ten alive"))
        .expect("origin is alive");
    assert!(
        c.await_delivery(id1, Duration::from_secs(10)),
        "all 10 nodes deliver"
    );

    // Phase 2: fail-stop one node; killing it again is a distinct error.
    c.kill(VICTIM).expect("victim was alive");
    assert!(matches!(
        c.kill(VICTIM),
        Err(ClusterError::AlreadyKilled(VICTIM))
    ));
    assert!(
        c.await_heal(Duration::from_secs(15)),
        "survivors excommunicate the victim and heal to n=9"
    );
    let id2 = c
        .broadcast(0, Bytes::from_static(b"nine survivors"))
        .expect("origin is alive");
    assert!(
        c.await_delivery(id2, Duration::from_secs(10)),
        "all 9 survivors deliver"
    );

    // Phase 3: the victim rejoins — fresh port, JOIN announcement, and the
    // survivors re-admit it at the original membership slot.
    c.rejoin(VICTIM).expect("victim restarts");
    assert!(
        c.await_heal(Duration::from_secs(15)),
        "every replica, including the revenant's, converges back to n=10"
    );
    assert!(c.overlays_agree(), "replicas agree after the rejoin");

    // Phase 4: broadcasts now span the revenant — both as a receiver and
    // as an origin.
    let id3 = c
        .broadcast(0, Bytes::from_static(b"welcome back"))
        .expect("origin is alive");
    assert!(
        c.await_delivery(id3, Duration::from_secs(10)),
        "all 10 nodes, revenant included, deliver"
    );
    assert!(
        c.delivered_ids(VICTIM).contains(&id3),
        "the revenant delivered the post-rejoin broadcast"
    );
    let id4 = c
        .broadcast(VICTIM, Bytes::from_static(b"revenant speaks"))
        .expect("revenant originates");
    assert!(
        c.await_delivery(id4, Duration::from_secs(10)),
        "a revenant-originated broadcast reaches everyone"
    );

    // Anti-entropy may legitimately backfill id2 (sent while the victim
    // was dead) after the rejoin — summaries advertise recently-seen ids
    // and the revenant pulls its gaps — so "never delivered" would be
    // racy. The binding invariant is exactly-once: nothing is delivered
    // twice across the kill/rejoin cycle.
    for m in c.members() {
        let ids = c.delivered_ids(m);
        let unique: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len(), "node {m} double-delivered");
    }

    c.shutdown();
}

fn fault_config(faults: Arc<FaultInjector>) -> RuntimeConfig {
    RuntimeConfig {
        faults: Some(faults),
        ..fast_config()
    }
}

fn poll_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Isolates the victim until both sides excommunicate each other, then
/// heals the cut and waits for full reconvergence. Returns how the repair
/// machinery was exercised via the cluster metrics afterwards.
fn isolate_heal_reconverge(c: &Cluster, inj: &FaultInjector) {
    inj.add_partition_shared(Partition {
        a: [VICTIM as u32].into_iter().collect(),
        b: BTreeSet::new(),
        from_us: 0,
        until_us: u64::MAX,
        directed: false,
    });
    let excommunicated = poll_until(Duration::from_secs(15), || {
        c.members().into_iter().filter(|&m| m != VICTIM).all(|m| {
            c.node(m)
                .is_some_and(|s| s.crashes_applied().contains(&VICTIM))
        }) && c.node(VICTIM).is_some_and(|s| s.is_degraded())
    });
    assert!(
        excommunicated,
        "survivors excommunicate the isolated victim and it degrades"
    );

    inj.clear_partitions();
    let everyone: BTreeSet<MemberId> = c.members().into_iter().collect();
    let reconverged = poll_until(Duration::from_secs(30), || {
        c.degraded_members().is_empty()
            && c.members().into_iter().all(|m| {
                c.node(m).is_some_and(|s| {
                    s.crashes_applied().is_empty()
                        && s.overlay_snapshot()
                            .members()
                            .iter()
                            .copied()
                            .collect::<BTreeSet<_>>()
                            == everyone
                })
            })
    });
    assert!(reconverged, "replicas reconverge after the heal");
}

/// An excommunicated-but-alive node hears about its own "death" in a burst
/// of dead notices once its partition heals — one from every peer that
/// sees its traffic, repeated each heartbeat until it is re-admitted.
/// `rejoin_cooldown` must coalesce that burst into a bounded number of
/// repair rounds: without it, every single notice would start a fresh
/// SYNC/JOIN exchange and the revenant would flap.
#[test]
fn dead_notice_burst_coalesces_into_bounded_repairs() {
    let inj = Arc::new(FaultInjector::new(0xBADD1E));
    let mut c = Cluster::launch(Constraint::KDiamond, N, K, fault_config(Arc::clone(&inj)))
        .expect("cluster boots and fully connects");

    isolate_heal_reconverge(&c, &inj);

    // The degraded victim repairs through the SYNC path...
    let requests = c.metrics().counter("runtime.sync_requests").get();
    let rejoins = c.metrics().counter("runtime.sync_rejoins").get();
    assert!(rejoins >= 1, "the victim resynced at least once");
    // ...and the cooldown held the notice burst down to a handful of
    // repair rounds. Notices arrive every heartbeat period (10ms) from
    // many peers; one request per cooldown window (250ms) is the designed
    // pace, so anything near one-per-notice is a flap.
    assert!(
        requests <= 6,
        "dead-notice burst must coalesce under rejoin_cooldown, saw {requests} SYNC requests"
    );

    let id = c
        .broadcast(VICTIM, Bytes::from_static(b"revenant after the burst"))
        .expect("revenant originates");
    assert!(
        c.await_delivery(id, Duration::from_secs(10)),
        "post-repair broadcast spans the full overlay"
    );
    c.shutdown();
}

/// The cooldown must *expire* correctly when repair frames are lost: with
/// a seeded injector dropping a quarter of the victim's link traffic, a
/// SYNC request or snapshot can vanish mid-handshake. The jittered retry
/// schedule (`runtime.sync_retries`) and post-cooldown notices must then
/// restart the exchange until it lands — degraded-but-never-wedged.
#[test]
fn rejoin_cooldown_expires_and_repair_survives_lossy_links() {
    let mut inj = FaultInjector::new(0x10_55_1E);
    let lossy = LinkFaults {
        drop: 0.25,
        duplicate: 0.05,
        ..LinkFaults::default()
    };
    for m in 0..N as u32 {
        if m != VICTIM as u32 {
            inj.set_link(VICTIM as u32, m, lossy);
            inj.set_link(m, VICTIM as u32, lossy);
        }
    }
    let inj = Arc::new(inj);
    let mut c = Cluster::launch(Constraint::KDiamond, N, K, fault_config(Arc::clone(&inj)))
        .expect("cluster boots through the lossy links");

    isolate_heal_reconverge(&c, &inj);

    assert!(
        c.metrics().counter("runtime.sync_rejoins").get() >= 1,
        "the victim resynced despite the drops"
    );
    // Lossy repairs may take several cooldown windows plus retries, but
    // still orders of magnitude fewer rounds than one-per-notice.
    let requests = c.metrics().counter("runtime.sync_requests").get()
        + c.metrics().counter("runtime.sync_retries").get();
    assert!(
        requests <= 20,
        "repair rounds stay bounded under loss, saw {requests}"
    );

    let id = c
        .broadcast(0, Bytes::from_static(b"after the lossy repair"))
        .expect("origin is alive");
    assert!(
        c.await_delivery(id, Duration::from_secs(15)),
        "post-repair broadcast reaches the revenant through the lossy links"
    );
    c.shutdown();
}
