//! lhg-runtime: a self-healing LHG overlay over real TCP sockets.
//!
//! Where [`lhg_net::sim`] measures the flooding protocol in a discrete-event
//! simulator and [`lhg_net::threaded`] runs it over in-process channels,
//! this crate runs it over the real thing: each node is a set of OS threads
//! owning a loopback [`std::net::TcpListener`], links are TCP connections,
//! and frames are the same length-prefixed [`lhg_net::message::Message`]
//! encoding ([`lhg_net::codec`]) used everywhere else in the workspace.
//!
//! The runtime stacks seven layers (bottom to top):
//!
//! 1. **Connection manager** ([`node`]) — dials and tears down TCP links so
//!    the live socket set tracks the current LHG topology (the smaller
//!    member id dials, the larger accepts).
//! 2. **Reliable links** ([`lhg_net::reliable`]) — data frames carry
//!    per-link sequence numbers; cumulative acks with selective NACKs drive
//!    bounded-window retransmission, and a periodic anti-entropy pass
//!    (summaries of recently-seen broadcast ids on the heartbeat cadence,
//!    gaps answered by pulls) repairs whatever per-link retries could not,
//!    so delivery survives links that drop, duplicate, or reorder frames.
//! 3. **Reliable broadcast** — flooding with per-broadcast dedup; with a
//!    k-connected topology and at most k−1 crashed nodes, every correct
//!    node delivers (LHG property P1).
//! 4. **Failure detection** — periodic heartbeats on every link; a
//!    configurable silence window marks a neighbor crashed (fail-stop
//!    model: crashed nodes never speak again, so suspicion is permanent).
//!    With [`RuntimeConfig::byzantine`] set, suspicion is *corroborated*:
//!    a crash only applies once f+1 distinct reporters (direct silence
//!    counts as a self-report) agree, and a directly-heartbeating peer
//!    vetoes the wave — so a lone traitor forging CRASH announcements
//!    cannot excommunicate a live node.
//! 5. **Self-healing** — a detected crash is flooded as an announcement;
//!    every survivor applies it to its
//!    [`lhg_core::overlay::DynamicOverlay`] replica via `crash_many` and
//!    applies the returned churn (dial added links, drop removed ones),
//!    restoring k-connectivity at the smaller n. Replicas converge because
//!    rebuilds are deterministic in the surviving membership.
//! 6. **Metrics** ([`lhg_net::metrics`]) — counters, gauges and latency
//!    histograms shared by the whole cluster, exportable as JSON and as
//!    Prometheus text exposition.
//! 7. **Observability** ([`lhg_trace`]) — every node feeds a per-node
//!    [`lhg_trace::FlightRecorder`] (connect/disconnect, frames,
//!    heartbeats, suspicion, crash reports, healing, broadcast
//!    accept/forward/deliver) dumpable as JSONL, and every broadcast
//!    carries a trace id so a shared [`lhg_trace::TraceCollector`]
//!    reconstructs the realized dissemination tree per broadcast.
//!
//! [`Cluster`] wires it all together for experiments and tests:
//!
//! ```no_run
//! use lhg_runtime::{Cluster, RuntimeConfig};
//! use lhg_core::Constraint;
//! use std::time::Duration;
//!
//! let mut c = Cluster::launch(Constraint::Jd, 12, 3, RuntimeConfig::default()).unwrap();
//! let id = c.broadcast(0, bytes::Bytes::from_static(b"hello")).unwrap();
//! assert!(c.await_delivery(id, Duration::from_secs(5)));
//! c.kill(7).unwrap();
//! assert!(c.await_heal(Duration::from_secs(10)));
//! println!("{}", c.metrics_json());
//! c.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

pub mod cluster;
pub mod node;
pub mod wire;

pub use cluster::{Cluster, ClusterError};
pub use lhg_net::metrics::{HistogramSummary, MetricsRegistry};
pub use node::{Directory, NodeShared};

/// Timing knobs for the runtime. Defaults suit loopback tests: fast
/// heartbeats, a timeout an order of magnitude above the period.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Interval between heartbeats on every live link.
    pub heartbeat_period: Duration,
    /// Silence window after which a neighbor is declared crashed. Must
    /// comfortably exceed `heartbeat_period` to avoid false suspicion.
    pub heartbeat_timeout: Duration,
    /// Base delay of the jittered exponential redial backoff (the first
    /// retry waits roughly this long; see [`lhg_net::backoff`]).
    pub dial_backoff: Duration,
    /// Cap on the exponential redial delay.
    pub dial_backoff_cap: Duration,
    /// Consecutive dial failures to one peer before it is put on
    /// probation (periodic low-frequency probes instead of the
    /// exponential schedule). Never gives up permanently — a healed
    /// partition must eventually reconnect.
    pub dial_max_attempts: u32,
    /// Per-attempt TCP connect timeout.
    pub dial_timeout: Duration,
    /// Main-loop wakeup granularity (heartbeat emission, suspicion checks,
    /// link reconciliation all run at this cadence when traffic is quiet).
    pub tick: Duration,
    /// How long [`Cluster::launch`] waits for the initial mesh.
    pub launch_timeout: Duration,
    /// Per-node flight-recorder ring capacity (events retained before the
    /// oldest are overwritten). See [`lhg_trace::FlightRecorder`].
    pub recorder_capacity: usize,
    /// Seed deriving each node's private RNG (dial jitter). Distinct nodes
    /// mix their member id in, so one seed drives the whole cluster.
    pub rng_seed: u64,
    /// Fault injector consulted on every frame write, frame read, and dial
    /// (chaos runs). `None` — the default — injects nothing.
    pub faults: Option<std::sync::Arc<lhg_net::fault::FaultInjector>>,
    /// Per-link reliability knobs ([`lhg_net::reliable`]): retransmit
    /// window/timeout/budget, backpressure queue bound, anti-entropy store
    /// size, and — via `summary_every`, reinterpreted as *heartbeat periods
    /// per summary* — the anti-entropy cadence. Retransmit sweeps and ack
    /// emission run on the main-loop [`RuntimeConfig::tick`]; `tick_us` is
    /// ignored here (it paces the simulator's [`lhg_net::reliable::ReliableFlooder`]).
    pub reliable: lhg_net::reliable::ReliableConfig,
    /// Byzantine broadcast setup: when set, every node runs a Bracha
    /// echo/ready engine over the gossip frames ([`lhg_byzantine`]), and
    /// the listed traitor nodes actively misbehave. `None` — the default —
    /// still relays byz gossip but delivers nothing.
    pub byzantine: Option<ByzantineSetup>,
}

/// Byzantine configuration for a cluster run: the traitor budget the
/// quorums are sized for, and which members (if any) actually misbehave.
///
/// Setting this also hardens the failure detector: crash suspicion then
/// requires corroboration from f+1 distinct reporters before it is
/// applied, defeating [`lhg_byzantine::TraitorBehavior::FrameCrash`]
/// (forged CRASH waves from one voice). A
/// [`lhg_byzantine::TraitorBehavior::SuppressHeartbeat`] traitor instead
/// *invites* excommunication — going silent so survivors churn — which
/// the epoch-stamped Bracha membership views absorb by re-sizing quorums
/// from the live view.
#[derive(Debug, Clone, Default)]
pub struct ByzantineSetup {
    /// Traitor budget f the Bracha quorums are sized for. The protocol is
    /// safe and live while the *actual* traitors number at most f.
    pub f: usize,
    /// Members corrupted for this run, with their behavior.
    pub traitors: Vec<(u64, lhg_byzantine::TraitorBehavior)>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            heartbeat_period: Duration::from_millis(25),
            heartbeat_timeout: Duration::from_millis(300),
            dial_backoff: Duration::from_millis(20),
            dial_backoff_cap: Duration::from_millis(320),
            dial_max_attempts: 12,
            dial_timeout: Duration::from_millis(250),
            tick: Duration::from_millis(5),
            launch_timeout: Duration::from_secs(10),
            recorder_capacity: lhg_trace::DEFAULT_CAPACITY,
            rng_seed: 0x4C_48_47, // "LHG"
            faults: None,
            reliable: lhg_net::reliable::ReliableConfig::default(),
            byzantine: None,
        }
    }
}
