//! Cluster orchestration: boot n nodes on loopback, drive broadcasts,
//! inject fail-stop crashes, and await convergence.
//!
//! The [`Cluster`] is a test-harness-shaped front door: it owns the address
//! [`Directory`], the shared [`MetricsRegistry`], and a handle per node. It
//! observes node state through [`NodeShared`] snapshots — the data plane
//! (frames, heartbeats, healing) runs entirely over TCP between the nodes.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::RwLock;

use lhg_core::overlay::{DynamicOverlay, MemberId};
use lhg_core::Constraint;
use lhg_core::LhgError;
use lhg_graph::Graph;
use lhg_net::fifo::fifo_id;
use lhg_net::message::Message;
use lhg_net::metrics::MetricsRegistry;
use lhg_telemetry::{PeriodicSampler, TelemetrySampler, Timeline};
use lhg_trace::{merge_timelines, BroadcastTrace, FlightRecorder, TraceCollector};

use crate::node::{spawn_node, BootOpts, BroadcastClock, Directory, Event, NodeHandle, NodeShared};
use crate::wire::MAX_MEMBERS;
use crate::RuntimeConfig;

/// Errors from cluster orchestration.
#[derive(Debug)]
pub enum ClusterError {
    /// The overlay builder rejected (n, k) or a membership change.
    Overlay(LhgError),
    /// A socket operation failed while booting the cluster.
    Io(std::io::Error),
    /// The initial topology did not fully connect within the launch timeout.
    LaunchTimeout,
    /// An operation referenced a member that is unknown or already dead.
    NoSuchMember(MemberId),
    /// [`Cluster::kill`] targeted a member that was already killed —
    /// distinct from [`ClusterError::NoSuchMember`] so a chaos schedule can
    /// tell "double kill" apart from "never existed".
    AlreadyKilled(MemberId),
    /// [`Cluster::rejoin`] targeted a member that is still alive.
    NotKilled(MemberId),
    /// [`Cluster::rejoin`] targeted a member whose previous rejoin
    /// handshake is still in flight — distinct from
    /// [`ClusterError::NotKilled`] so a chaos schedule can tell "already
    /// back" apart from "still coming back" and wait instead of flapping.
    RejoinInProgress(MemberId),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Overlay(e) => write!(f, "overlay error: {e}"),
            ClusterError::Io(e) => write!(f, "socket error: {e}"),
            ClusterError::LaunchTimeout => {
                f.write_str("cluster links did not converge within the launch timeout")
            }
            ClusterError::NoSuchMember(m) => write!(f, "no live member {m}"),
            ClusterError::AlreadyKilled(m) => write!(f, "member {m} was already killed"),
            ClusterError::NotKilled(m) => write!(f, "member {m} is not killed"),
            ClusterError::RejoinInProgress(m) => {
                write!(f, "member {m} is still mid-rejoin")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<LhgError> for ClusterError {
    fn from(e: LhgError) -> Self {
        ClusterError::Overlay(e)
    }
}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> Self {
        ClusterError::Io(e)
    }
}

/// A running loopback cluster of LHG overlay nodes.
pub struct Cluster {
    config: RuntimeConfig,
    metrics: Arc<MetricsRegistry>,
    clock: BroadcastClock,
    directory: Directory,
    nodes: HashMap<MemberId, NodeHandle>,
    killed: BTreeSet<MemberId>,
    next_seq: u32,
    /// Next node-life ordinal: initial boots take 0..n, every rejoin takes
    /// a fresh one, so control-wave nonces never collide across lives.
    next_life: u32,
    /// One flight recorder per node, all sharing one epoch so their
    /// timelines merge into a single cluster-wide chronology.
    recorders: HashMap<MemberId, Arc<FlightRecorder>>,
    /// Cluster-wide sink of per-broadcast delivery path records.
    tracer: Arc<TraceCollector>,
    /// Background telemetry sampler over the shared registry, when armed
    /// (see [`Cluster::start_telemetry`]).
    telemetry: Option<PeriodicSampler>,
}

impl Cluster {
    /// Boots `n` nodes with a `constraint`-built k-connected LHG overlay and
    /// blocks until every overlay link has a live TCP connection.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Overlay`] when (n, k) is out of the builder's domain,
    /// [`ClusterError::Io`] when listeners cannot bind, and
    /// [`ClusterError::LaunchTimeout`] when the mesh does not come up within
    /// [`RuntimeConfig::launch_timeout`].
    pub fn launch(
        constraint: Constraint,
        n: usize,
        k: usize,
        config: RuntimeConfig,
    ) -> Result<Self, ClusterError> {
        assert!(
            (n as u64) < MAX_MEMBERS,
            "member ids must stay below 2^24 to avoid wire tag bits"
        );
        let overlay = DynamicOverlay::bootstrap(constraint, n, k)?;

        let directory: Directory = Arc::new(RwLock::new(HashMap::new()));
        let mut listeners = Vec::with_capacity(n);
        for member in overlay.members().to_vec() {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            directory.write().insert(member, listener.local_addr()?);
            listeners.push((member, listener));
        }

        let metrics = Arc::new(MetricsRegistry::new());
        let clock: BroadcastClock = Arc::new(RwLock::new(HashMap::new()));
        let tracer = Arc::new(TraceCollector::new());
        let epoch = Instant::now(); // shared so per-node timelines merge
        let mut recorders = HashMap::with_capacity(n);
        let mut nodes = HashMap::with_capacity(n);
        let mut next_life = 0u32;
        for (member, listener) in listeners {
            let recorder = Arc::new(FlightRecorder::with_capacity(
                member as u32,
                config.recorder_capacity,
                epoch,
            ));
            recorders.insert(member, Arc::clone(&recorder));
            let handle = spawn_node(
                member,
                overlay.clone(),
                listener,
                Arc::clone(&directory),
                config.clone(),
                Arc::clone(&metrics),
                Arc::clone(&clock),
                recorder,
                Arc::clone(&tracer),
                BootOpts {
                    life: next_life,
                    ..BootOpts::default()
                },
            )?;
            next_life += 1;
            nodes.insert(member, handle);
        }

        let cluster = Cluster {
            config,
            metrics,
            clock,
            directory,
            nodes,
            killed: BTreeSet::new(),
            next_seq: 0,
            next_life,
            recorders,
            tracer,
            telemetry: None,
        };
        if !cluster.await_links(cluster.config.launch_timeout) {
            cluster.shutdown();
            return Err(ClusterError::LaunchTimeout);
        }
        Ok(cluster)
    }

    /// The shared metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A shared handle to the registry that outlives the cluster — read it
    /// after [`Cluster::shutdown`] for totals no live node can still bump.
    #[must_use]
    pub fn shared_metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Pretty-printed JSON snapshot of every metric.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.metrics.snapshot_json()
    }

    /// Prometheus text-exposition snapshot of every metric.
    #[must_use]
    pub fn metrics_prometheus(&self) -> String {
        self.metrics.prometheus_text()
    }

    /// Starts background telemetry sampling of the shared registry every
    /// `interval` of wall-clock time (µs timestamps since the sampler
    /// spawned). The cluster's nodes all record into one registry, so the
    /// sampler's stream *is* the cluster-wide timeline — including the
    /// per-class `wire.*` frame/byte series. Restarting replaces the
    /// previous sampler, discarding its ring.
    pub fn start_telemetry(&mut self, interval: Duration) {
        let sampler = TelemetrySampler::new("cluster", self.metrics.clone());
        self.telemetry = Some(sampler.spawn_periodic(interval));
    }

    /// Stops background sampling (one final flush sample) and returns the
    /// merged timeline; `None` if telemetry was never started.
    pub fn stop_telemetry(&mut self) -> Option<Timeline> {
        let sampler = self.telemetry.take()?.stop();
        Some(lhg_telemetry::merge(vec![sampler.samples()]))
    }

    /// The flight recorder of `member`, if it was ever launched.
    #[must_use]
    pub fn recorder(&self, member: MemberId) -> Option<&Arc<FlightRecorder>> {
        self.recorders.get(&member)
    }

    /// The cluster-wide causal trace collector.
    #[must_use]
    pub fn tracer(&self) -> &Arc<TraceCollector> {
        &self.tracer
    }

    /// Every broadcast's reconstructed dissemination tree, one
    /// [`BroadcastTrace`] per trace id, ordered by trace id.
    #[must_use]
    pub fn traces(&self) -> Vec<BroadcastTrace> {
        self.tracer.traces()
    }

    /// All nodes' retained flight-recorder events merged into one
    /// cluster-wide timeline (timestamp order; recorders share an epoch).
    #[must_use]
    pub fn events(&self) -> Vec<lhg_trace::Event> {
        merge_timelines(self.recorders.values().map(Arc::as_ref))
    }

    /// The merged cluster timeline as JSONL (one event object per line).
    #[must_use]
    pub fn events_jsonl(&self) -> String {
        let mut s = String::new();
        for e in self.events() {
            s.push_str(&e.to_json());
            s.push('\n');
        }
        s
    }

    /// Writes the merged cluster timeline as JSONL to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file creation and write errors.
    pub fn dump_events(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.events_jsonl().as_bytes())?;
        f.flush()
    }

    /// All member ids ever launched, in id order.
    #[must_use]
    pub fn members(&self) -> Vec<MemberId> {
        let mut m: Vec<MemberId> = self.nodes.keys().copied().collect();
        m.sort_unstable();
        m
    }

    /// Members not yet killed, in id order.
    #[must_use]
    pub fn survivors(&self) -> Vec<MemberId> {
        self.members()
            .into_iter()
            .filter(|m| !self.killed.contains(m))
            .collect()
    }

    /// Observable state of `member`, if it was ever launched.
    #[must_use]
    pub fn node(&self, member: MemberId) -> Option<&Arc<NodeShared>> {
        self.nodes.get(&member).map(|h| &h.shared)
    }

    /// Originates a broadcast at `origin`; returns the broadcast id.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchMember`] if `origin` is unknown or dead.
    pub fn broadcast(&mut self, origin: MemberId, payload: Bytes) -> Result<u64, ClusterError> {
        if self.killed.contains(&origin) {
            return Err(ClusterError::NoSuchMember(origin));
        }
        let handle = self
            .nodes
            .get(&origin)
            .ok_or(ClusterError::NoSuchMember(origin))?;
        self.next_seq += 1;
        let id = fifo_id(origin as u32, self.next_seq);
        self.clock.write().insert(id, Instant::now());
        self.metrics.counter("runtime.broadcasts").inc();
        // The broadcast id doubles as the trace id: every delivery of this
        // message records its path into the cluster's TraceCollector.
        let msg = Message::new(id, origin as u32, payload).with_trace(id);
        handle
            .tx
            .send(Event::Broadcast { msg })
            .map_err(|_| ClusterError::NoSuchMember(origin))?;
        Ok(id)
    }

    /// Originates a Bracha (Byzantine-tolerant) broadcast at `origin` under
    /// instance nonce `nonce`. Requires the cluster to have been launched
    /// with [`RuntimeConfig::byzantine`] set; on a plain cluster the event
    /// is accepted but no node votes, so nothing is ever delivered. A
    /// traitor origin silently refuses to originate (its scripted attack
    /// fires from the gossip path instead).
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchMember`] if `origin` is unknown or dead.
    pub fn byzantine_broadcast(
        &mut self,
        origin: MemberId,
        nonce: u64,
        payload: Bytes,
    ) -> Result<(), ClusterError> {
        if self.killed.contains(&origin) {
            return Err(ClusterError::NoSuchMember(origin));
        }
        let handle = self
            .nodes
            .get(&origin)
            .ok_or(ClusterError::NoSuchMember(origin))?;
        self.metrics.counter("runtime.byz_broadcasts").inc();
        handle
            .tx
            .send(Event::ByzBroadcast { nonce, payload })
            .map_err(|_| ClusterError::NoSuchMember(origin))?;
        Ok(())
    }

    /// Byzantine deliveries recorded by `member` so far (empty for unknown
    /// members): one [`Message`] per delivered instance, `broadcast_id` =
    /// instance nonce, `trace` = certified payload digest.
    #[must_use]
    pub fn byz_delivered(&self, member: MemberId) -> Vec<Message> {
        self.nodes
            .get(&member)
            .map(|h| h.shared.byz_delivered())
            .unwrap_or_default()
    }

    /// Waits until each of `members` has byz-delivered instance `nonce` (or
    /// the timeout passes). Scope `members` to the correct nodes — traitors
    /// never record deliveries.
    #[must_use]
    pub fn await_byz_delivery(&self, nonce: u64, members: &[MemberId], timeout: Duration) -> bool {
        self.poll_until(timeout, || {
            members.iter().all(|m| {
                self.nodes
                    .get(m)
                    .is_some_and(|h| h.shared.byz_delivered_nonces().contains(&nonce))
            })
        })
    }

    /// Fail-stop crash: the node slams every socket shut and stops, without
    /// any goodbye. Survivors must detect it via heartbeat silence.
    ///
    /// The LHG failure model (property P1) guarantees convergent healing
    /// only while **at most k−1 members are concurrently dead**. Killing a
    /// k-th member is allowed — chaos runs do it deliberately — but then
    /// survivors enter degraded mode ([`NodeShared::is_degraded`]) instead
    /// of healing, until rejoins bring the count back within budget.
    ///
    /// # Errors
    ///
    /// [`ClusterError::AlreadyKilled`] if `member` was already killed, and
    /// [`ClusterError::NoSuchMember`] if it was never launched.
    pub fn kill(&mut self, member: MemberId) -> Result<(), ClusterError> {
        if self.killed.contains(&member) {
            return Err(ClusterError::AlreadyKilled(member));
        }
        let handle = self
            .nodes
            .get_mut(&member)
            .ok_or(ClusterError::NoSuchMember(member))?;
        let _ = handle.tx.send(Event::Kill);
        if let Some(main) = handle.main.take() {
            let _ = main.join();
        }
        self.killed.insert(member);
        self.metrics.counter("runtime.kills").inc();
        Ok(())
    }

    /// Restarts a previously killed member: a fresh listener is bound (the
    /// old port is gone), the directory is updated, and the node boots from
    /// a survivor's overlay snapshot with a pending `JOIN` announcement.
    /// Survivors re-admit it when the announcement floods through —
    /// converging because every replica admits at the same sorted position.
    ///
    /// Use [`Cluster::await_heal`] afterwards to block until every replica
    /// (including the revenant's) has converged back onto the survivor set.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSuchMember`] if `member` was never launched,
    /// [`ClusterError::NotKilled`] if it is still alive, and
    /// [`ClusterError::Io`] if the new listener cannot bind.
    pub fn rejoin(&mut self, member: MemberId) -> Result<(), ClusterError> {
        if !self.nodes.contains_key(&member) {
            return Err(ClusterError::NoSuchMember(member));
        }
        if !self.killed.contains(&member) {
            // A live member whose previous rejoin handshake has not
            // settled yet gets the dedicated error: stacking a second
            // boot on a node still announcing itself would orphan the
            // first one's listener mid-handshake.
            if self
                .nodes
                .get(&member)
                .is_some_and(|h| h.shared.is_alive() && h.shared.is_rejoining())
            {
                return Err(ClusterError::RejoinInProgress(member));
            }
            return Err(ClusterError::NotKilled(member));
        }
        // Boot from the freshest survivor view available; the revenant
        // re-admits itself if the survivors already excommunicated it.
        let mut overlay = self
            .live_shared()
            .next()
            .map(|s| s.overlay_snapshot())
            .ok_or(ClusterError::NoSuchMember(member))?;
        if !overlay.contains(member) {
            overlay.admit(member)?;
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        self.directory
            .write()
            .insert(member, listener.local_addr()?);
        let recorder = self
            .recorders
            .get(&member)
            .cloned()
            .expect("recorder outlives its node");
        let initial_crashes: BTreeSet<MemberId> = self
            .killed
            .iter()
            .copied()
            .filter(|&m| m != member)
            .collect();
        let handle = spawn_node(
            member,
            overlay,
            listener,
            Arc::clone(&self.directory),
            self.config.clone(),
            Arc::clone(&self.metrics),
            Arc::clone(&self.clock),
            recorder,
            Arc::clone(&self.tracer),
            BootOpts {
                announce_join: true,
                initial_crashes,
                life: self.next_life,
            },
        )?;
        self.next_life += 1;
        self.nodes.insert(member, handle);
        self.killed.remove(&member);
        self.metrics.counter("runtime.rejoins").inc();
        Ok(())
    }

    /// Waits until every survivor has delivered broadcast `id` (or the
    /// timeout passes); returns whether delivery completed.
    #[must_use]
    pub fn await_delivery(&self, id: u64, timeout: Duration) -> bool {
        self.poll_until(timeout, || {
            self.live_shared().all(|s| s.delivered_ids().contains(&id))
        })
    }

    /// Waits until each of `members` has delivered broadcast `id` (or the
    /// timeout passes). Lets chaos oracles scope the delivery requirement
    /// to the nodes that were reachable, instead of all survivors.
    #[must_use]
    pub fn await_delivery_by(&self, id: u64, members: &[MemberId], timeout: Duration) -> bool {
        self.poll_until(timeout, || {
            members.iter().all(|m| {
                self.nodes
                    .get(m)
                    .is_some_and(|h| h.shared.delivered_ids().contains(&id))
            })
        })
    }

    /// Live members currently reporting degraded mode (suspected failures
    /// at or above the k−1 budget), in id order.
    #[must_use]
    pub fn degraded_members(&self) -> Vec<MemberId> {
        let mut m: Vec<MemberId> = self
            .live_shared()
            .filter(|s| s.is_degraded())
            .map(|s| s.id)
            .collect();
        m.sort_unstable();
        m
    }

    /// Waits until every survivor has (a) applied every kill, (b) converged
    /// its overlay replica onto exactly the survivor set, and (c) has a live
    /// TCP link for each overlay neighbor. Returns whether healing finished.
    #[must_use]
    pub fn await_heal(&self, timeout: Duration) -> bool {
        let survivors: BTreeSet<MemberId> = self.survivors().into_iter().collect();
        self.poll_until(timeout, || {
            self.live_shared().all(|s| {
                let applied = s.crashes_applied();
                let members: BTreeSet<MemberId> =
                    s.overlay_snapshot().members().iter().copied().collect();
                self.killed.iter().all(|k| applied.contains(k))
                    && members == survivors
                    && s.desired_neighbors().is_subset(&s.links_up())
            })
        })
    }

    /// Waits until every node's TCP links cover its desired neighbor set.
    #[must_use]
    pub fn await_links(&self, timeout: Duration) -> bool {
        self.poll_until(timeout, || {
            self.live_shared()
                .all(|s| s.desired_neighbors().is_subset(&s.links_up()))
        })
    }

    /// `true` if all survivors hold identical overlay link sets.
    #[must_use]
    pub fn overlays_agree(&self) -> bool {
        let mut sets = self.live_shared().map(|s| s.overlay_snapshot().links());
        let Some(first) = sets.next() else {
            return true;
        };
        sets.all(|l| l == first)
    }

    /// The healed topology as seen by one survivor (they agree once
    /// [`Self::await_heal`] returns `true`).
    #[must_use]
    pub fn survivor_graph(&self) -> Option<Graph> {
        self.live_shared()
            .next()
            .map(|s| s.overlay_snapshot().graph().clone())
    }

    /// Broadcast ids delivered by `member`, in delivery order.
    #[must_use]
    pub fn delivered_ids(&self, member: MemberId) -> Vec<u64> {
        self.nodes
            .get(&member)
            .map(|h| h.shared.delivered_ids())
            .unwrap_or_default()
    }

    /// Stops every remaining node and joins their main threads. Any
    /// running telemetry sampler is stopped too (its ring is discarded —
    /// call [`Cluster::stop_telemetry`] first to keep the timeline).
    pub fn shutdown(mut self) {
        if let Some(telemetry) = self.telemetry.take() {
            let _ = telemetry.stop();
        }
        let members = self.members();
        for member in members {
            if let Some(handle) = self.nodes.get_mut(&member) {
                let _ = handle.tx.send(Event::Kill);
                if let Some(main) = handle.main.take() {
                    let _ = main.join();
                }
            }
        }
    }

    fn live_shared(&self) -> impl Iterator<Item = &Arc<NodeShared>> {
        self.nodes
            .values()
            .filter(|h| !self.killed.contains(&h.shared.id))
            .map(|h| &h.shared)
    }

    /// Polls `cond` every few milliseconds until it holds or `timeout`
    /// elapses; returns the final verdict.
    fn poll_until(&self, timeout: Duration, cond: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if cond() {
                return true;
            }
            if Instant::now() >= deadline {
                return cond();
            }
            std::thread::sleep(self.config.tick.min(Duration::from_millis(5)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RuntimeConfig {
        RuntimeConfig::default()
    }

    #[test]
    fn small_cluster_boots_and_broadcasts() {
        let mut c = Cluster::launch(Constraint::Jd, 6, 2, cfg()).expect("launch");
        let id = c.broadcast(0, Bytes::from_static(b"ping")).expect("send");
        assert!(c.await_delivery(id, Duration::from_secs(5)));
        for m in c.members() {
            assert_eq!(c.delivered_ids(m), vec![id]);
        }
        assert!(c.metrics().counter("runtime.deliveries").get() >= 6);
        c.shutdown();
    }

    #[test]
    fn crash_is_detected_and_healed() {
        let mut c = Cluster::launch(Constraint::Jd, 7, 2, cfg()).expect("launch");
        c.kill(3).expect("kill");
        assert!(c.await_heal(Duration::from_secs(10)), "survivors heal");
        assert!(c.overlays_agree());
        let g = c.survivor_graph().expect("graph");
        assert_eq!(g.node_count(), 6);
        assert!(lhg_graph::connectivity::is_k_vertex_connected(&g, 2));
        // Post-heal broadcasts still reach every survivor.
        let id = c.broadcast(0, Bytes::from_static(b"after")).expect("send");
        assert!(c.await_delivery(id, Duration::from_secs(5)));
        assert!(c.metrics().counter("runtime.suspects").get() >= 1);
        c.shutdown();
    }

    #[test]
    fn broadcast_is_traced_and_events_are_recorded() {
        let mut c = Cluster::launch(Constraint::Jd, 6, 2, cfg()).expect("launch");
        let id = c.broadcast(2, Bytes::from_static(b"traced")).expect("send");
        assert!(c.await_delivery(id, Duration::from_secs(5)));

        let traces = c.traces();
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert_eq!(trace.trace_id, id);
        assert_eq!(trace.origin(), Some(2));
        let expected: BTreeSet<u32> = c.members().iter().map(|&m| m as u32).collect();
        assert!(trace.is_spanning(&expected), "all 6 nodes on the tree");
        for m in c.members() {
            let path = trace.path_from_origin(m as u32).expect("path");
            assert_eq!(path.first(), Some(&2));
            assert_eq!(path.last(), Some(&(m as u32)));
        }

        let events = c.events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, lhg_trace::EventKind::Connect { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, lhg_trace::EventKind::BroadcastAccept { trace_id } if trace_id == id)));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, lhg_trace::EventKind::BroadcastDeliver { trace_id, .. } if trace_id == id)));
        // Timeline is time-ordered.
        assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us));

        // JSONL dump round-trips through the filesystem.
        let path = std::env::temp_dir().join("lhg_cluster_events_test.jsonl");
        c.dump_events(&path).expect("dump");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(text.lines().count() >= events.len().min(1));
        assert!(text.contains("\"event\":\"broadcast_accept\""));
        std::fs::remove_file(&path).ok();

        // The suspicion sweep keeps per-peer heartbeat-age gauges fresh.
        let snapshot = c.metrics_json();
        assert!(snapshot.contains("runtime.heartbeat_age_us.n0.p"));
        c.shutdown();
    }

    #[test]
    fn byzantine_broadcast_delivers_everywhere_with_no_traitors() {
        let mut config = cfg();
        config.byzantine = Some(crate::ByzantineSetup {
            f: 1,
            traitors: Vec::new(),
        });
        // K-DIAMOND: gap-free at k = 3 (JD cannot build every size there).
        let mut c = Cluster::launch(Constraint::KDiamond, 7, 3, config).expect("launch");
        c.byzantine_broadcast(0, 0x42, Bytes::from_static(b"certified"))
            .expect("send");
        let members = c.members();
        assert!(c.await_byz_delivery(0x42, &members, Duration::from_secs(5)));
        let digest = lhg_byzantine::digest(b"certified");
        for m in members {
            let got = c.byz_delivered(m);
            assert_eq!(got.len(), 1, "exactly once at node {m}");
            assert_eq!(got[0].broadcast_id, 0x42);
            assert_eq!(got[0].origin, 0);
            assert_eq!(got[0].trace, Some(digest));
            assert_eq!(&got[0].payload[..], b"certified");
        }
        c.shutdown();
    }

    #[test]
    fn byzantine_broadcast_survives_a_forging_traitor() {
        use lhg_byzantine::TraitorBehavior;
        let mut config = cfg();
        config.byzantine = Some(crate::ByzantineSetup {
            f: 1,
            traitors: vec![(4, TraitorBehavior::Forge)],
        });
        let mut c = Cluster::launch(Constraint::KDiamond, 8, 3, config).expect("launch");
        c.byzantine_broadcast(1, 0x99, Bytes::from_static(b"despite the liar"))
            .expect("send");
        let correct: Vec<MemberId> = c.members().into_iter().filter(|&m| m != 4).collect();
        assert!(c.await_byz_delivery(0x99, &correct, Duration::from_secs(5)));
        // The forged instance (nonce base 0xF000_0000) never certifies: one
        // forged voice is f short of every quorum. Correct nodes deliver the
        // honest instance and nothing else, and they all agree.
        for &m in &correct {
            let nonces: Vec<u64> = c.byz_delivered(m).iter().map(|d| d.broadcast_id).collect();
            assert_eq!(
                nonces,
                vec![0x99],
                "node {m} delivered only the honest instance"
            );
        }
        // The traitor records nothing — it never votes honestly.
        assert!(c.byz_delivered(4).is_empty());
        c.shutdown();
    }

    #[test]
    fn broadcast_from_dead_member_is_rejected() {
        let mut c = Cluster::launch(Constraint::Jd, 6, 2, cfg()).expect("launch");
        c.kill(5).expect("kill");
        assert!(matches!(
            c.broadcast(5, Bytes::new()),
            Err(ClusterError::NoSuchMember(5))
        ));
        // A second kill is a *distinct* error from an unknown member.
        assert!(matches!(c.kill(5), Err(ClusterError::AlreadyKilled(5))));
        assert!(matches!(c.kill(99), Err(ClusterError::NoSuchMember(99))));
        assert!(matches!(c.rejoin(0), Err(ClusterError::NotKilled(0))));
        c.shutdown();
    }

    #[test]
    fn mid_rejoin_member_reports_rejoin_in_progress() {
        let mut c = Cluster::launch(Constraint::Jd, 7, 2, cfg()).expect("launch");
        c.kill(3).expect("kill");
        assert!(c.await_heal(Duration::from_secs(10)), "survivors heal");
        c.rejoin(3).expect("rejoin");
        // Immediately stacking a second rejoin must be refused with the
        // dedicated error while the first handshake is still in flight —
        // and with NotKilled once it has settled (never AlreadyKilled).
        match c.rejoin(3) {
            Err(ClusterError::RejoinInProgress(3) | ClusterError::NotKilled(3)) => {}
            other => panic!("expected RejoinInProgress or NotKilled, got {other:?}"),
        }
        assert!(c.await_heal(Duration::from_secs(10)), "revenant converges");
        // Once the announcement handshake settles the flag clears and the
        // refusal relaxes back to plain NotKilled.
        assert!(
            c.poll_until(Duration::from_secs(5), || {
                c.node(3).is_some_and(|s| !s.is_rejoining())
            }),
            "join_pending clears once the announcement handshake settles"
        );
        assert!(matches!(c.rejoin(3), Err(ClusterError::NotKilled(3))));
        c.shutdown();
    }
}
