//! One overlay node: real sockets, real threads.
//!
//! A node owns a loopback [`TcpListener`] and runs three kinds of threads:
//!
//! * an **acceptor** polling the listener; each accepted connection performs
//!   a hello handshake, then gets a dedicated **reader** thread that decodes
//!   length-prefixed frames ([`lhg_net::codec::read_frame`]) into the node's
//!   event channel;
//! * a **main loop** owning all connection write halves and every piece of
//!   protocol state: flooding with dedup, heartbeat emission, failure
//!   suspicion, and self-healing via
//!   [`DynamicOverlay::crash_many`](lhg_core::overlay::DynamicOverlay::crash_many).
//!
//! Link ownership is asymmetric to avoid duplicate connections: the member
//! with the **smaller id dials**, the larger one accepts. Both sides monitor
//! the link with heartbeats once it is up.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};

use lhg_core::overlay::{DynamicOverlay, MemberId};
use lhg_net::codec::{read_frame, write_frame};
use lhg_net::message::Message;
use lhg_net::metrics::{Gauge, MetricsRegistry};
use lhg_trace::{EventKind, FlightRecorder, PathRecord, TraceCollector};

use crate::wire::{self, FrameKind};
use crate::RuntimeConfig;

/// Shared loopback address book: member id → listener address. Stands in
/// for out-of-band discovery (DNS, a tracker, a membership service).
pub type Directory = Arc<RwLock<HashMap<MemberId, SocketAddr>>>;

/// Broadcast start instants, shared cluster-wide so deliveries can record
/// end-to-end latency into the metrics registry.
pub(crate) type BroadcastClock = Arc<RwLock<HashMap<u64, Instant>>>;

/// Events feeding a node's main loop.
pub(crate) enum Event {
    /// A decoded frame arrived from connected peer `from`.
    Frame { from: MemberId, msg: Message },
    /// The acceptor finished a handshake; `writer` is the write half.
    Accepted { peer: MemberId, writer: TcpStream },
    /// A connection died (EOF or I/O error on the read side).
    PeerClosed { peer: MemberId },
    /// Originate a broadcast from this node.
    Broadcast { msg: Message },
    /// Fail-stop: abandon everything immediately, no goodbyes.
    Kill,
}

/// Node state observable by the [`crate::Cluster`] orchestrator. All fields
/// are written by the node's own threads and only read (cheap snapshots)
/// from outside.
pub struct NodeShared {
    /// This node's stable member id.
    pub id: MemberId,
    alive: AtomicBool,
    delivered: Mutex<Vec<Message>>,
    overlay: Mutex<DynamicOverlay>,
    links_up: Mutex<BTreeSet<MemberId>>,
    crashes_applied: Mutex<BTreeSet<MemberId>>,
}

impl NodeShared {
    /// `false` once the node was killed (or shut down) — fail-stop.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Broadcast ids of application messages delivered so far, in delivery
    /// order.
    #[must_use]
    pub fn delivered_ids(&self) -> Vec<u64> {
        self.delivered
            .lock()
            .iter()
            .map(|m| m.broadcast_id)
            .collect()
    }

    /// Application messages delivered so far.
    #[must_use]
    pub fn delivered_messages(&self) -> Vec<Message> {
        self.delivered.lock().clone()
    }

    /// A snapshot of this node's overlay replica.
    #[must_use]
    pub fn overlay_snapshot(&self) -> DynamicOverlay {
        self.overlay.lock().clone()
    }

    /// Peers with an established TCP connection right now.
    #[must_use]
    pub fn links_up(&self) -> BTreeSet<MemberId> {
        self.links_up.lock().clone()
    }

    /// Members this node has declared crashed and healed around.
    #[must_use]
    pub fn crashes_applied(&self) -> BTreeSet<MemberId> {
        self.crashes_applied.lock().clone()
    }

    /// Overlay neighbors this node currently wants links to.
    #[must_use]
    pub fn desired_neighbors(&self) -> BTreeSet<MemberId> {
        self.overlay
            .lock()
            .neighbors_of(self.id)
            .unwrap_or_default()
            .into_iter()
            .collect()
    }
}

/// A spawned node: its observable state plus the orchestrator's handles.
pub(crate) struct NodeHandle {
    pub shared: Arc<NodeShared>,
    pub tx: Sender<Event>,
    pub main: Option<JoinHandle<()>>,
    #[allow(dead_code)]
    pub addr: SocketAddr,
}

/// Boots a node: binds threads around `listener` and returns immediately.
/// The node dials its overlay neighbors from its first loop iteration.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_node(
    id: MemberId,
    overlay: DynamicOverlay,
    listener: TcpListener,
    directory: Directory,
    config: RuntimeConfig,
    metrics: Arc<MetricsRegistry>,
    clock: BroadcastClock,
    recorder: Arc<FlightRecorder>,
    tracer: Arc<TraceCollector>,
) -> std::io::Result<NodeHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let (tx, rx) = unbounded();

    let shared = Arc::new(NodeShared {
        id,
        alive: AtomicBool::new(true),
        delivered: Mutex::new(Vec::new()),
        overlay: Mutex::new(overlay),
        links_up: Mutex::new(BTreeSet::new()),
        crashes_applied: Mutex::new(BTreeSet::new()),
    });

    // Acceptor: poll-accept so the thread can observe the kill flag.
    {
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        let poll = config.tick.min(Duration::from_millis(2));
        std::thread::spawn(move || loop {
            if !shared.is_alive() {
                return; // listener drops, port closes
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_nodelay(true);
                    spawn_handshake_reader(stream, tx.clone());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(poll);
                }
                Err(_) => return,
            }
        });
    }

    // Main loop.
    let main = {
        let runtime = NodeRuntime {
            id,
            shared: Arc::clone(&shared),
            config,
            directory,
            metrics,
            clock,
            recorder,
            tracer,
            tx: tx.clone(),
            writers: HashMap::new(),
            seen: HashSet::new(),
            last_seen: HashMap::new(),
            next_dial: HashMap::new(),
            healing_since: None,
            hb_age_gauges: HashMap::new(),
        };
        std::thread::spawn(move || runtime.run(&rx))
    };

    Ok(NodeHandle {
        shared,
        tx,
        main: Some(main),
        addr,
    })
}

/// Reads the hello frame off a freshly accepted connection, registers the
/// write half with the main loop, then settles into the plain reader loop.
fn spawn_handshake_reader(mut stream: TcpStream, tx: Sender<Event>) {
    std::thread::spawn(move || {
        let peer = match read_frame(&mut stream) {
            Ok(Some(msg)) => match wire::classify(msg.broadcast_id) {
                FrameKind::Hello(peer) => peer,
                _ => return, // protocol violation: first frame must be hello
            },
            _ => return,
        };
        let Ok(writer) = stream.try_clone() else {
            return;
        };
        if tx.send(Event::Accepted { peer, writer }).is_err() {
            return;
        }
        reader_loop(peer, &mut stream, &tx);
    });
}

/// Decodes frames until EOF/error, forwarding each into the main loop.
fn reader_loop(peer: MemberId, stream: &mut TcpStream, tx: &Sender<Event>) {
    loop {
        match read_frame(stream) {
            Ok(Some(msg)) => {
                if tx.send(Event::Frame { from: peer, msg }).is_err() {
                    return; // node is gone
                }
            }
            Ok(None) | Err(_) => {
                let _ = tx.send(Event::PeerClosed { peer });
                return;
            }
        }
    }
}

/// The main loop's owned state. Everything here is single-threaded; shared
/// observability goes through [`NodeShared`].
struct NodeRuntime {
    id: MemberId,
    shared: Arc<NodeShared>,
    config: RuntimeConfig,
    directory: Directory,
    metrics: Arc<MetricsRegistry>,
    clock: BroadcastClock,
    /// This node's flight recorder (shared epoch with the whole cluster).
    recorder: Arc<FlightRecorder>,
    /// Cluster-wide sink for per-delivery path records.
    tracer: Arc<TraceCollector>,
    /// Cloned into reader threads spawned for dialed connections.
    tx: Sender<Event>,
    /// Write halves of every live connection, keyed by peer id.
    writers: HashMap<MemberId, TcpStream>,
    /// Flooding dedup: broadcast ids already processed.
    seen: HashSet<u64>,
    /// Last time each monitored peer produced any frame.
    last_seen: HashMap<MemberId, Instant>,
    /// Dial backoff: no redial before the recorded instant.
    next_dial: HashMap<MemberId, Instant>,
    /// Set when a crash is first applied; cleared (and timed) once every
    /// desired link is re-established.
    healing_since: Option<Instant>,
    /// Cached per-peer heartbeat-age gauges (µs since last frame), updated
    /// every suspicion sweep so snapshots read a fresh value.
    hb_age_gauges: HashMap<MemberId, Arc<Gauge>>,
}

impl NodeRuntime {
    fn run(mut self, rx: &Receiver<Event>) {
        self.reconcile();
        let mut next_beat = Instant::now() + self.config.heartbeat_period;
        while self.shared.is_alive() {
            match rx.recv_timeout(self.config.tick) {
                Ok(ev) => self.handle(ev),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if !self.shared.is_alive() {
                break;
            }
            let now = Instant::now();
            if now >= next_beat {
                self.send_heartbeats();
                next_beat = now + self.config.heartbeat_period;
            }
            self.check_suspicions(now);
            self.reconcile();
        }
        // Fail-stop: slam every socket shut so peers see EOF, not silence.
        self.shared.alive.store(false, Ordering::SeqCst);
        for (_, s) in self.writers.drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Frame { from, msg } => self.on_frame(from, &msg),
            Event::Accepted { peer, writer } => {
                if let Some(old) = self.writers.insert(peer, writer) {
                    let _ = old.shutdown(Shutdown::Both);
                }
                self.last_seen.insert(peer, Instant::now());
                self.metrics.counter("runtime.accepts").inc();
                self.recorder
                    .record(EventKind::Connect { peer: peer as u32 });
            }
            Event::PeerClosed { peer } => self.drop_link(peer),
            Event::Broadcast { msg } => {
                self.seen.insert(msg.broadcast_id);
                if let Some(trace_id) = msg.trace {
                    self.recorder
                        .record(EventKind::BroadcastAccept { trace_id });
                    self.tracer.record(PathRecord {
                        trace_id,
                        node: self.id as u32,
                        parent: None,
                        hops: 0,
                        at_us: self.recorder.now_us(),
                    });
                }
                self.deliver(&msg);
                // Send the hop-incremented copy so a receiver's `hops` field
                // counts the edges the copy travelled.
                self.flood(&msg.forwarded(), None);
            }
            Event::Kill => {
                self.shared.alive.store(false, Ordering::SeqCst);
            }
        }
    }

    fn on_frame(&mut self, from: MemberId, msg: &Message) {
        self.last_seen.insert(from, Instant::now());
        self.recorder.record(EventKind::FrameRx {
            peer: from as u32,
            bytes: (msg.encoded_len() + lhg_net::codec::LEN_PREFIX) as u32,
        });
        match wire::classify(msg.broadcast_id) {
            FrameKind::Heartbeat(_) => {
                // Liveness recorded above; keep the probe in the timeline.
                self.recorder
                    .record(EventKind::Heartbeat { peer: from as u32 });
            }
            FrameKind::Hello(_) => {} // handshakes never reach the loop
            FrameKind::Crash(victim) => {
                if self.seen.insert(msg.broadcast_id) {
                    self.recorder.record(EventKind::CrashReport {
                        victim: victim as u32,
                        via: from as u32,
                    });
                    self.flood(&msg.forwarded(), Some(from));
                    self.apply_crash(victim);
                }
            }
            FrameKind::Data => {
                if self.seen.insert(msg.broadcast_id) {
                    if let Some(trace_id) = msg.trace {
                        self.recorder.record(EventKind::BroadcastDeliver {
                            trace_id,
                            from: from as u32,
                            hops: msg.hops,
                        });
                        self.tracer.record(PathRecord {
                            trace_id,
                            node: self.id as u32,
                            parent: Some(from as u32),
                            hops: msg.hops,
                            at_us: self.recorder.now_us(),
                        });
                    }
                    self.deliver(msg);
                    if let Some(trace_id) = msg.trace {
                        self.recorder.record(EventKind::BroadcastForward {
                            trace_id,
                            hops: msg.hops + 1,
                        });
                    }
                    self.flood(&msg.forwarded(), Some(from));
                }
            }
        }
    }

    /// Records an application delivery (and its end-to-end latency, if the
    /// broadcast's start instant is known).
    fn deliver(&mut self, msg: &Message) {
        self.metrics.counter("runtime.deliveries").inc();
        if let Some(t0) = self.clock.read().get(&msg.broadcast_id) {
            let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.metrics
                .histogram("runtime.delivery_latency_us")
                .record(us);
        }
        self.shared.delivered.lock().push(msg.clone());
    }

    /// Sends `msg` to every connected peer except `except`.
    fn flood(&mut self, msg: &Message, except: Option<MemberId>) {
        let peers: Vec<MemberId> = self.writers.keys().copied().collect();
        for peer in peers {
            if Some(peer) != except {
                self.send_to(peer, msg);
            }
        }
    }

    /// Writes one frame to `peer`; a failed write tears the link down (the
    /// reconcile pass will redial if the link is still wanted).
    fn send_to(&mut self, peer: MemberId, msg: &Message) -> bool {
        let res = match self.writers.get_mut(&peer) {
            Some(stream) => write_frame(stream, msg),
            None => return false,
        };
        match res {
            Ok(n) => {
                self.metrics.counter("runtime.messages_sent").inc();
                self.metrics.counter("runtime.bytes_sent").add(n as u64);
                self.recorder.record(EventKind::FrameTx {
                    peer: peer as u32,
                    bytes: n as u32,
                });
                true
            }
            Err(_) => {
                self.drop_link(peer);
                false
            }
        }
    }

    fn send_heartbeats(&mut self) {
        let msg = Message::new(wire::heartbeat_id(self.id), self.id as u32, Bytes::new());
        self.flood(&msg, None);
    }

    /// Declares crashed any monitored neighbor silent past the timeout;
    /// refreshes the per-peer heartbeat-age gauges along the way.
    fn check_suspicions(&mut self, now: Instant) {
        let crashed = self.shared.crashes_applied.lock().clone();
        let mut suspects = Vec::new();
        for peer in self.shared.desired_neighbors() {
            if crashed.contains(&peer) {
                continue;
            }
            // A peer we have never heard from starts its grace period now;
            // this also covers crash-before-connect (dials keep failing).
            let seen_at = *self.last_seen.entry(peer).or_insert(now);
            let age = now.duration_since(seen_at);
            self.hb_age_gauge(peer)
                .set(i64::try_from(age.as_micros()).unwrap_or(i64::MAX));
            if age > self.config.heartbeat_timeout {
                suspects.push(peer);
            }
        }
        for peer in suspects {
            self.suspect(peer);
        }
    }

    /// The cached gauge `runtime.heartbeat_age_us.n<id>.p<peer>` — the µs
    /// since this node last heard from `peer`, fresh as of the latest
    /// suspicion sweep (every main-loop tick).
    fn hb_age_gauge(&mut self, peer: MemberId) -> Arc<Gauge> {
        let (id, metrics) = (self.id, &self.metrics);
        Arc::clone(
            self.hb_age_gauges.entry(peer).or_insert_with(|| {
                metrics.gauge(&format!("runtime.heartbeat_age_us.n{id}.p{peer}"))
            }),
        )
    }

    /// Local suspicion: announce the crash to the cluster, then heal.
    fn suspect(&mut self, victim: MemberId) {
        self.metrics.counter("runtime.suspects").inc();
        self.recorder.record(EventKind::Suspicion {
            peer: victim as u32,
        });
        self.recorder.record(EventKind::CrashReport {
            victim: victim as u32,
            via: self.id as u32,
        });
        let id = wire::crash_id(victim);
        self.seen.insert(id);
        let msg = Message::new(id, self.id as u32, Bytes::new());
        self.flood(&msg, None);
        self.apply_crash(victim);
    }

    /// Removes `victim` from the overlay replica and applies the resulting
    /// churn: drop removed links, dial added ones. Idempotent per victim.
    fn apply_crash(&mut self, victim: MemberId) {
        if !self.shared.crashes_applied.lock().insert(victim) {
            return;
        }
        self.metrics.counter("runtime.crashes_applied").inc();
        if self.healing_since.is_none() {
            self.healing_since = Some(Instant::now());
            self.recorder.record(EventKind::HealBegin {
                victim: victim as u32,
            });
        }
        let churn = {
            let mut ov = self.shared.overlay.lock();
            if ov.contains(victim) {
                // A below-floor heal is refused atomically; we then keep the
                // stale topology minus the dead links. Defensive: the failure
                // model promises at most k-1 crashes, which never hits the
                // 2k membership floor from n ≥ 2k + (k-1) launches.
                ov.crash_many(&[victim]).ok()
            } else {
                None
            }
        };
        self.drop_link(victim);
        self.last_seen.remove(&victim);
        self.next_dial.remove(&victim);
        if let Some(report) = churn {
            for peer in report.removed_for(self.id).collect::<Vec<_>>() {
                self.drop_link(peer);
                self.metrics.counter("runtime.links_dropped").inc();
            }
            for peer in report.added_for(self.id).collect::<Vec<_>>() {
                if self.id < peer {
                    self.dial(peer);
                }
            }
        }
        self.reconcile();
    }

    /// Converges connections toward the overlay's desired neighbor set:
    /// tears down links the dialer side no longer wants, dials missing ones
    /// (with backoff), and closes the healing stopwatch when done.
    fn reconcile(&mut self) {
        let desired = self.shared.desired_neighbors();
        let crashed = self.shared.crashes_applied.lock().clone();

        // Teardown is dialer-driven so a link is never closed by a node
        // that merely hasn't healed yet; connections to crashed members go
        // unconditionally.
        let current: Vec<MemberId> = self.writers.keys().copied().collect();
        for peer in current {
            if crashed.contains(&peer) || (self.id < peer && !desired.contains(&peer)) {
                self.drop_link(peer);
                self.metrics.counter("runtime.links_dropped").inc();
            }
        }

        let now = Instant::now();
        for &peer in &desired {
            if self.id < peer && !self.writers.contains_key(&peer) && !crashed.contains(&peer) {
                let due = self.next_dial.get(&peer).is_none_or(|&t| now >= t);
                if due {
                    self.dial(peer);
                }
            }
        }

        *self.shared.links_up.lock() = self.writers.keys().copied().collect();

        if let Some(t0) = self.healing_since {
            if desired.iter().all(|p| self.writers.contains_key(p)) {
                let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.metrics
                    .histogram("runtime.reconnect_time_us")
                    .record(us);
                self.metrics.counter("runtime.heals").inc();
                self.recorder.record(EventKind::HealEnd { took_us: us });
                self.healing_since = None;
            }
        }
    }

    /// Dials `peer`, performs the hello handshake, and spawns its reader.
    fn dial(&mut self, peer: MemberId) {
        let addr = self.directory.read().get(&peer).copied();
        let stream =
            addr.and_then(|a| TcpStream::connect_timeout(&a, self.config.dial_timeout).ok());
        let Some(mut stream) = stream else {
            self.metrics.counter("runtime.dial_failures").inc();
            self.next_dial
                .insert(peer, Instant::now() + self.config.dial_backoff);
            return;
        };
        let _ = stream.set_nodelay(true);
        let hello = Message::new(wire::hello_id(self.id), self.id as u32, Bytes::new());
        let reader = match write_frame(&mut stream, &hello).and(stream.try_clone()) {
            Ok(s) => s,
            Err(_) => {
                self.metrics.counter("runtime.dial_failures").inc();
                self.next_dial
                    .insert(peer, Instant::now() + self.config.dial_backoff);
                return;
            }
        };
        let tx = self.tx.clone();
        std::thread::spawn(move || {
            let mut reader = reader;
            reader_loop(peer, &mut reader, &tx);
        });
        self.writers.insert(peer, stream);
        self.last_seen.insert(peer, Instant::now());
        self.next_dial.remove(&peer);
        self.metrics.counter("runtime.dials").inc();
        self.recorder
            .record(EventKind::Connect { peer: peer as u32 });
    }

    /// Closes and forgets the connection to `peer` (if any).
    fn drop_link(&mut self, peer: MemberId) {
        if let Some(s) = self.writers.remove(&peer) {
            let _ = s.shutdown(Shutdown::Both);
            *self.shared.links_up.lock() = self.writers.keys().copied().collect();
            self.recorder
                .record(EventKind::Disconnect { peer: peer as u32 });
        }
        self.last_seen.remove(&peer);
    }
}
