//! One overlay node: real sockets, real threads.
//!
//! A node owns a loopback [`TcpListener`] and runs three kinds of threads:
//!
//! * an **acceptor** polling the listener; each accepted connection performs
//!   a hello handshake, then gets a dedicated **reader** thread that decodes
//!   length-prefixed frames ([`lhg_net::codec::read_frame`]) into the node's
//!   event channel;
//! * a **main loop** owning all connection write halves and every piece of
//!   protocol state: flooding with dedup, heartbeat emission, failure
//!   suspicion, and self-healing via
//!   [`DynamicOverlay::crash_many`](lhg_core::overlay::DynamicOverlay::crash_many).
//!
//! Link ownership is asymmetric to avoid duplicate connections: the member
//! with the **smaller id dials**, the larger one accepts. Both sides monitor
//! the link with heartbeats once it is up.
//!
//! # Reliable delivery
//!
//! Data frames ride the reliable layer from [`lhg_net::reliable`]: each
//! directed link stamps them with per-link sequence numbers
//! ([`LinkSender`]), the receiving side acks cumulatively and NACKs holes
//! ([`LinkReceiver`]), and retransmit sweeps run on the main-loop tick.
//! Sequence spaces are **per connection**: every new socket (dial or
//! accept) resets both halves, and frames a torn-down link never delivered
//! are re-sent over the replacement. On the heartbeat cadence each node
//! additionally floods anti-entropy *summaries* of its recently-delivered
//! broadcast ids; a peer that spots a gap pulls the missing broadcasts, so
//! even a frame lost on every copy (or a node that was down when it
//! flooded past) is repaired through any surviving path. Control frames
//! (hello/heartbeat/crash/join/sync and the ack/summary frames themselves)
//! stay best-effort: they are periodic, idempotent, or answered, so their
//! loss only costs latency.
//!
//! # Fault model and recovery
//!
//! The runtime promises convergence under **at most k−1 fail-stop crashes**
//! (LHG property P1). Three mechanisms extend behaviour beyond that budget:
//!
//! * **Fault injection** — when [`crate::RuntimeConfig::faults`] carries a
//!   [`lhg_net::fault::FaultInjector`], every frame write, frame read, and
//!   dial consults it,
//!   so chaos runs can drop/duplicate frames and cut partitions without
//!   touching kernel state. Extra-delay rates are ignored here (TCP has no
//!   timer wheel); the simulator honours them.
//! * **Degraded mode** — once a node has excommunicated ≥ k suspects it
//!   stops healing (a rebuild below the membership floor, or on a minority
//!   partition side, would diverge) and instead probes every known member
//!   until membership knowledge is repaired. The state is observable via
//!   [`NodeShared::is_degraded`], the `runtime.degraded.n<id>` gauge and
//!   [`EventKind::Degraded`] events.
//! * **Rejoin** — a node that learns it was excommunicated (a peer answers
//!   its traffic with a direct `CRASH(self)` *dead notice*) either floods a
//!   `JOIN` announcement (its replica is healthy — the peer was simply
//!   wrong) or requests a membership `SYNC` snapshot, rebuilds its replica
//!   with [`DynamicOverlay::from_parts`] +
//!   [`admit`](lhg_core::overlay::DynamicOverlay::admit), and then floods
//!   the `JOIN`. Survivors admit joiners at a canonical sorted position, so
//!   replicas converge regardless of announcement order.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;

use lhg_byzantine::engine::Action as ByzAction;
use lhg_byzantine::frame::{digest as byz_digest, GossipFrame, GossipKind};
use lhg_byzantine::sim::{EQUIVOCATE_NONCE_BASE, FORGE_NONCE_BASE};
use lhg_byzantine::{BrachaConfig, BrachaEngine, InstanceSummary, Phase, TraitorBehavior};
use lhg_core::overlay::{ChurnReport, DynamicOverlay, MemberId};
use lhg_net::backoff::{Backoff, BackoffPolicy};
use lhg_net::codec::{read_frame, write_frame};
use lhg_net::message::{ByzTag, Message};
use lhg_net::metrics::{Gauge, MetricsRegistry};
use lhg_net::reliable::{self, LinkReceiver, LinkSender, MAX_SUMMARY_IDS};
use lhg_net::seen::SeenSet;
use lhg_trace::{EventKind, FlightRecorder, PathRecord, TraceCollector};

use crate::wire::{self, FrameKind};
use crate::RuntimeConfig;

/// Shared loopback address book: member id → listener address. Stands in
/// for out-of-band discovery (DNS, a tracker, a membership service).
pub type Directory = Arc<RwLock<HashMap<MemberId, SocketAddr>>>;

/// Broadcast start instants, shared cluster-wide so deliveries can record
/// end-to-end latency into the metrics registry.
pub(crate) type BroadcastClock = Arc<RwLock<HashMap<u64, Instant>>>;

/// Events feeding a node's main loop.
pub(crate) enum Event {
    /// A decoded frame arrived from connected peer `from` over connection
    /// generation `conn`. Frames from superseded connections are discarded
    /// by the main loop — their link sequence numbers belong to a dead
    /// sequence space and must not pollute the current one.
    Frame {
        from: MemberId,
        conn: u64,
        msg: Message,
    },
    /// The acceptor finished a handshake; `writer` is the write half and
    /// `conn` the connection's node-local generation id.
    Accepted {
        peer: MemberId,
        conn: u64,
        writer: TcpStream,
    },
    /// Connection `conn` to `peer` died (EOF or I/O error on the read
    /// side). The generation id lets the main loop ignore EOFs from
    /// superseded connections: during a rejoin both sides may briefly hold
    /// two sockets to the same peer, and the stale one's death must not
    /// tear down its healthy replacement.
    PeerClosed { peer: MemberId, conn: u64 },
    /// Originate a broadcast from this node.
    Broadcast { msg: Message },
    /// Originate a Byzantine (Bracha) broadcast from this node. Requires
    /// [`crate::RuntimeConfig::byzantine`] to be configured.
    ByzBroadcast { nonce: u64, payload: Bytes },
    /// Fail-stop: abandon everything immediately, no goodbyes.
    Kill,
}

/// How a node enters the cluster: fresh boot or rejoin after a kill.
#[derive(Debug, Clone, Default)]
pub(crate) struct BootOpts {
    /// Flood a `JOIN` announcement once the first link is up (rejoin path).
    pub announce_join: bool,
    /// Members this node should treat as already crashed at boot (the other
    /// kills that happened while it was down).
    pub initial_crashes: BTreeSet<MemberId>,
    /// Cluster-global ordinal of this node *life* (initial boots and every
    /// rejoin each get a fresh one). Seeds the wave-nonce space so control
    /// waves from different lives of the same member never share an id.
    pub life: u32,
}

/// Node state observable by the [`crate::Cluster`] orchestrator. All fields
/// are written by the node's own threads and only read (cheap snapshots)
/// from outside.
pub struct NodeShared {
    /// This node's stable member id.
    pub id: MemberId,
    alive: AtomicBool,
    degraded: AtomicBool,
    /// Set for the whole rejoin handshake of a rejoin boot: from spawn
    /// until the `JOIN` announcement has flooded and no membership `SYNC`
    /// request is outstanding. [`crate::Cluster::rejoin`] refuses to stack
    /// a second rejoin on top of one still in flight.
    join_pending: AtomicBool,
    delivered: Mutex<Vec<Message>>,
    byz_delivered: Mutex<Vec<Message>>,
    overlay: Mutex<DynamicOverlay>,
    links_up: Mutex<BTreeSet<MemberId>>,
    crashes_applied: Mutex<BTreeSet<MemberId>>,
}

impl NodeShared {
    /// `false` once the node was killed (or shut down) — fail-stop.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// `true` while the node has excommunicated ≥ k suspects and has
    /// therefore suspended healing (graceful degradation instead of an
    /// inconsistent rebuild).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    /// `true` while a rejoin boot's handshake (JOIN announcement and any
    /// membership `SYNC`) is still in flight.
    #[must_use]
    pub fn is_rejoining(&self) -> bool {
        self.join_pending.load(Ordering::SeqCst)
    }

    /// Broadcast ids of application messages delivered so far, in delivery
    /// order.
    #[must_use]
    pub fn delivered_ids(&self) -> Vec<u64> {
        self.delivered
            .lock()
            .iter()
            .map(|m| m.broadcast_id)
            .collect()
    }

    /// Application messages delivered so far.
    #[must_use]
    pub fn delivered_messages(&self) -> Vec<Message> {
        self.delivered.lock().clone()
    }

    /// Byzantine broadcast deliveries so far, in delivery order. Each
    /// message's `broadcast_id` is the instance nonce, `origin` the
    /// instance origin, `trace` the certified payload digest, and the byz
    /// tag rides along — the shape the chaos oracle audits.
    #[must_use]
    pub fn byz_delivered(&self) -> Vec<Message> {
        self.byz_delivered.lock().clone()
    }

    /// Instance nonces of Byzantine deliveries so far, in delivery order.
    #[must_use]
    pub fn byz_delivered_nonces(&self) -> Vec<u64> {
        self.byz_delivered
            .lock()
            .iter()
            .map(|m| m.broadcast_id)
            .collect()
    }

    /// A snapshot of this node's overlay replica.
    #[must_use]
    pub fn overlay_snapshot(&self) -> DynamicOverlay {
        self.overlay.lock().clone()
    }

    /// Peers with an established TCP connection right now.
    #[must_use]
    pub fn links_up(&self) -> BTreeSet<MemberId> {
        self.links_up.lock().clone()
    }

    /// Members this node has declared crashed and healed around.
    #[must_use]
    pub fn crashes_applied(&self) -> BTreeSet<MemberId> {
        self.crashes_applied.lock().clone()
    }

    /// Overlay neighbors this node currently wants links to.
    #[must_use]
    pub fn desired_neighbors(&self) -> BTreeSet<MemberId> {
        self.overlay
            .lock()
            .neighbors_of(self.id)
            .unwrap_or_default()
            .into_iter()
            .collect()
    }
}

/// A spawned node: its observable state plus the orchestrator's handles.
pub(crate) struct NodeHandle {
    pub shared: Arc<NodeShared>,
    pub tx: Sender<Event>,
    pub main: Option<JoinHandle<()>>,
    #[allow(dead_code)]
    pub addr: SocketAddr,
}

/// Boots a node: binds threads around `listener` and returns immediately.
/// The node dials its overlay neighbors from its first loop iteration.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_node(
    id: MemberId,
    overlay: DynamicOverlay,
    listener: TcpListener,
    directory: Directory,
    config: RuntimeConfig,
    metrics: Arc<MetricsRegistry>,
    clock: BroadcastClock,
    recorder: Arc<FlightRecorder>,
    tracer: Arc<TraceCollector>,
    opts: BootOpts,
) -> std::io::Result<NodeHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let (tx, rx) = unbounded();

    let k = overlay.k();
    // Quorums are sized from an epoch-stamped membership view: each Bracha
    // instance snapshots the view live at its creation, and crash/join
    // churn bumps the view (f stays a protocol constant derived from k).
    // A boot membership below 3f+1 is a configuration error, surfaced
    // here instead of aborting the process.
    let byz = match config.byzantine.as_ref() {
        Some(setup) => {
            let n = overlay.members().len();
            let cfg = BrachaConfig::new(n, setup.f).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string())
            })?;
            Some(ByzState {
                engine: BrachaEngine::new(id as u32, cfg),
                behavior: setup
                    .traitors
                    .iter()
                    .find(|(m, _)| *m == id)
                    .map(|(_, b)| *b),
                attacked: false,
            })
        }
        None => None,
    };
    let shared = Arc::new(NodeShared {
        id,
        alive: AtomicBool::new(true),
        degraded: AtomicBool::new(false),
        join_pending: AtomicBool::new(opts.announce_join),
        delivered: Mutex::new(Vec::new()),
        byz_delivered: Mutex::new(Vec::new()),
        overlay: Mutex::new(overlay),
        links_up: Mutex::new(BTreeSet::new()),
        crashes_applied: Mutex::new(opts.initial_crashes.clone()),
    });

    // Node-local connection generation counter, shared by the acceptor and
    // the main loop's dialer so every socket gets a unique id.
    let conns = Arc::new(AtomicU64::new(0));

    // Acceptor: poll-accept so the thread can observe the kill flag.
    {
        let shared = Arc::clone(&shared);
        let tx = tx.clone();
        let conns = Arc::clone(&conns);
        let poll = config.tick.min(Duration::from_millis(2));
        std::thread::spawn(move || loop {
            if !shared.is_alive() {
                return; // listener drops, port closes
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_nodelay(true);
                    spawn_handshake_reader(stream, tx.clone(), Arc::clone(&conns));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(poll);
                }
                Err(_) => return,
            }
        });
    }

    // Main loop.
    let main = {
        // Each node jitters independently, but the whole cluster is still
        // driven by the one configured seed (reproducible chaos runs).
        let rng = StdRng::seed_from_u64(config.rng_seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let runtime = NodeRuntime {
            id,
            k,
            shared: Arc::clone(&shared),
            config,
            directory,
            metrics,
            clock,
            recorder,
            tracer,
            tx: tx.clone(),
            writers: HashMap::new(),
            conn_ids: HashMap::new(),
            conns,
            seen: SeenSet::default(),
            byz,
            life: opts.life,
            wave_seq: 0,
            last_seen: HashMap::new(),
            next_dial: HashMap::new(),
            backoffs: HashMap::new(),
            rng,
            fault_seqs: HashMap::new(),
            revenant_grace: HashMap::new(),
            revenant_since: HashMap::new(),
            notice_sent: HashMap::new(),
            awaiting_sync: None,
            catchup: None,
            catchup_replies: BTreeSet::new(),
            rejoin_cooldown: None,
            pending_join_announce: opts.announce_join,
            healing_since: None,
            crash_reporters: HashMap::new(),
            notice_senders: BTreeSet::new(),
            hb_age_gauges: HashMap::new(),
            link_tx: HashMap::new(),
            link_rx: HashMap::new(),
            pending_relay: HashMap::new(),
            store: HashMap::new(),
            recent: VecDeque::new(),
        };
        std::thread::spawn(move || runtime.run(&rx))
    };

    Ok(NodeHandle {
        shared,
        tx,
        main: Some(main),
        addr,
    })
}

/// Reads the hello frame off a freshly accepted connection, registers the
/// write half with the main loop, then settles into the plain reader loop.
fn spawn_handshake_reader(mut stream: TcpStream, tx: Sender<Event>, conns: Arc<AtomicU64>) {
    std::thread::spawn(move || {
        let peer = match read_frame(&mut stream) {
            Ok(Some(msg)) => match wire::classify(msg.broadcast_id) {
                FrameKind::Hello(peer) => peer,
                _ => return, // protocol violation: first frame must be hello
            },
            _ => return,
        };
        let Ok(writer) = stream.try_clone() else {
            return;
        };
        let conn = conns.fetch_add(1, Ordering::Relaxed);
        if tx.send(Event::Accepted { peer, conn, writer }).is_err() {
            return;
        }
        reader_loop(peer, conn, &mut stream, &tx);
    });
}

/// Decodes frames until EOF/error, forwarding each into the main loop.
fn reader_loop(peer: MemberId, conn: u64, stream: &mut TcpStream, tx: &Sender<Event>) {
    loop {
        match read_frame(stream) {
            Ok(Some(msg)) => {
                if tx
                    .send(Event::Frame {
                        from: peer,
                        conn,
                        msg,
                    })
                    .is_err()
                {
                    return; // node is gone
                }
            }
            Ok(None) | Err(_) => {
                let _ = tx.send(Event::PeerClosed { peer, conn });
                return;
            }
        }
    }
}

/// The main loop's owned state. Everything here is single-threaded; shared
/// observability goes through [`NodeShared`].
struct NodeRuntime {
    id: MemberId,
    /// The overlay's connectivity parameter, cached at boot: ≥ k applied
    /// crashes means the failure budget is blown and healing must stop.
    k: usize,
    shared: Arc<NodeShared>,
    config: RuntimeConfig,
    directory: Directory,
    metrics: Arc<MetricsRegistry>,
    clock: BroadcastClock,
    /// This node's flight recorder (shared epoch with the whole cluster).
    recorder: Arc<FlightRecorder>,
    /// Cluster-wide sink for per-delivery path records.
    tracer: Arc<TraceCollector>,
    /// Cloned into reader threads spawned for dialed connections.
    tx: Sender<Event>,
    /// Write halves of every live connection, keyed by peer id.
    writers: HashMap<MemberId, TcpStream>,
    /// Generation id of the connection currently backing each writer. A
    /// `PeerClosed` whose id does not match is a stale socket's EOF and
    /// must not tear the current link down.
    conn_ids: HashMap<MemberId, u64>,
    /// Source of connection generation ids (shared with the acceptor).
    conns: Arc<AtomicU64>,
    /// Flooding dedup: broadcast ids already processed. Entries survive
    /// until the set's capacity cap evicts the oldest — every control wave
    /// floods under a fresh nonce, so a stale copy of an old wave is
    /// absorbed here instead of being re-applied (re-arming dedup per
    /// membership flip is how crash/join waves used to chase each other
    /// into a churn livelock). The cap only matters on runs long enough to
    /// see millions of distinct ids; see [`lhg_net::seen::SeenSet`].
    seen: SeenSet,
    /// Bracha engine + this node's (mis)behavior when the cluster runs
    /// with [`crate::RuntimeConfig::byzantine`]. `None` relays byz gossip
    /// like any flood but never votes or delivers.
    byz: Option<ByzState>,
    /// This node-life's ordinal, unique across the cluster ([`BootOpts`]).
    life: u32,
    /// Per-life wave counter; with `life` it forms each wave's nonce.
    wave_seq: u16,
    /// Last time each monitored peer produced any frame.
    last_seen: HashMap<MemberId, Instant>,
    /// Dial backoff: no redial before the recorded instant.
    next_dial: HashMap<MemberId, Instant>,
    /// Per-peer jittered exponential retry state behind `next_dial`.
    backoffs: HashMap<MemberId, Backoff>,
    /// Private RNG driving dial jitter (seeded from the config seed).
    rng: StdRng,
    /// Per-peer outbound frame counters keying fault-injection decisions.
    fault_seqs: HashMap<MemberId, u64>,
    /// Excommunicated peers heard from recently: keep their link open until
    /// the recorded deadline so the rejoin handshake can complete.
    revenant_grace: HashMap<MemberId, Instant>,
    /// When each excommunicated peer's current unbroken run of frames
    /// began; drives degraded-mode re-admission by observation
    /// ([`Self::readmit_by_observation`]).
    revenant_since: HashMap<MemberId, Instant>,
    /// Last time a dead notice was sent to each revenant (rate limiting).
    notice_sent: HashMap<MemberId, Instant>,
    /// Set while a membership `SYNC` request is outstanding; the reply
    /// clears it, and each missed per-attempt deadline re-sends the
    /// request on a jittered exponential backoff until the schedule is
    /// exhausted (so a lossy link degrades the rejoin into retries, never
    /// a wedge).
    awaiting_sync: Option<RetrySchedule>,
    /// Set while a rejoin boot is soliciting Bracha instance summaries
    /// from its neighbors (byz catch-up); retried like `awaiting_sync`
    /// until a delivery quorum of distinct peers has answered.
    catchup: Option<RetrySchedule>,
    /// Distinct peers whose snapshots carried summaries we ingested; once
    /// a delivery quorum has answered, the catch-up solicitation stops.
    catchup_replies: BTreeSet<MemberId>,
    /// After announcing or requesting a rejoin, ignore further dead notices
    /// until this instant (they are echoes of the state being repaired).
    rejoin_cooldown: Option<Instant>,
    /// Flood a `JOIN` announcement as soon as at least one link is up.
    pending_join_announce: bool,
    /// Set when a crash is first applied; cleared (and timed) once every
    /// desired link is re-established.
    healing_since: Option<Instant>,
    /// Corroborated suspicion (byzantine runs): distinct wave origins that
    /// have reported each victim crashed. A wave is only *applied* once
    /// f+1 distinct reporters vouch for it — a lone traitor's forged CRASH
    /// wave cannot excommunicate a live node ([`Self::note_crash_report`]).
    crash_reporters: HashMap<MemberId, BTreeSet<MemberId>>,
    /// Distinct peers that sent us a dead notice (byzantine runs): the
    /// rejoin machinery only reacts once f+1 peers agree we were
    /// excommunicated, so a traitor cannot trigger rejoin flapping.
    notice_senders: BTreeSet<MemberId>,
    /// Cached per-peer heartbeat-age gauges (µs since last frame), updated
    /// every suspicion sweep so snapshots read a fresh value.
    hb_age_gauges: HashMap<MemberId, Arc<Gauge>>,
    /// Sender half of each peer's reliable link (data frames only). Reset
    /// whenever the backing connection is replaced ([`Self::reset_link`]).
    link_tx: HashMap<MemberId, LinkSender>,
    /// Receiver half of each peer's reliable link.
    link_rx: HashMap<MemberId, LinkReceiver>,
    /// Data frames a torn-down link never delivered, parked until a
    /// replacement connection to the same peer comes up.
    pending_relay: HashMap<MemberId, Vec<Message>>,
    /// Recently-delivered data messages retained for anti-entropy pull
    /// serving, with the insertion-ordered id window backing summaries and
    /// eviction (bounded by the reliable config's `store_cap`).
    store: HashMap<u64, Message>,
    recent: VecDeque<u64>,
}

/// One bounded retry schedule for a rejoin-path request (membership
/// `SYNC`, byz catch-up solicitation): a jittered exponential backoff
/// between attempts plus the next per-attempt deadline. Exhaustion clears
/// the state instead of wedging — a later dead notice restarts the
/// handshake from scratch.
struct RetrySchedule {
    backoff: Backoff,
    due: Instant,
    /// The peer the request went to (`None` floods to every live link).
    peer: Option<MemberId>,
}

/// Per-node Byzantine state: the Bracha engine plus this node's scripted
/// misbehavior, if it is one of the run's traitors.
struct ByzState {
    engine: BrachaEngine,
    /// `Some` makes this node a traitor — it never votes honestly.
    behavior: Option<TraitorBehavior>,
    /// Equivocate/forge traitors mount their attack exactly once, on the
    /// first byz frame they observe (so there is a broadcast to disrupt).
    attacked: bool,
}

impl NodeRuntime {
    fn run(mut self, rx: &Receiver<Event>) {
        self.reconcile();
        let mut next_beat = Instant::now() + self.config.heartbeat_period;
        // Anti-entropy cadence: `summary_every` heartbeat periods per
        // summary flood (the reliable config reinterprets its tick-based
        // knob for the runtime's heartbeat-driven clock).
        let summary_period = self
            .config
            .heartbeat_period
            .saturating_mul(u32::try_from(self.config.reliable.summary_every.max(1)).unwrap_or(5));
        let mut next_summary = Instant::now() + summary_period;
        let mut next_sweep = Instant::now() + self.config.tick;
        while self.shared.is_alive() {
            match rx.recv_timeout(self.config.tick) {
                Ok(ev) => self.handle(ev),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if !self.shared.is_alive() {
                break;
            }
            let now = Instant::now();
            if now >= next_beat {
                self.send_heartbeats();
                next_beat = now + self.config.heartbeat_period;
            }
            if now >= next_summary {
                self.send_summaries();
                next_summary = now + summary_period;
            }
            if now >= next_sweep {
                self.reliable_tick();
                next_sweep = now + self.config.tick;
            }
            if self.awaiting_sync.as_ref().is_some_and(|r| now >= r.due) {
                self.retry_sync(now);
            }
            if self.catchup.as_ref().is_some_and(|r| now >= r.due) {
                self.retry_catchup(now);
            }
            self.check_suspicions(now);
            self.settle_backoffs(now);
            self.reconcile();
            self.try_announce_join();
            self.maybe_settle_join();
        }
        // Fail-stop: slam every socket shut so peers see EOF, not silence.
        self.shared.alive.store(false, Ordering::SeqCst);
        for (_, s) in self.writers.drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Frame { from, conn, msg } => {
                // A superseded connection's leftovers carry sequence
                // numbers from a dead link-sequence space; processing them
                // would poison the replacement link's receiver state.
                if self.conn_ids.get(&from) == Some(&conn) {
                    self.on_frame(from, &msg);
                } else {
                    self.metrics.counter("runtime.stale_conn_frames").inc();
                }
            }
            Event::Accepted { peer, conn, writer } => {
                if let Some(old) = self.writers.insert(peer, writer) {
                    let _ = old.shutdown(Shutdown::Both);
                }
                self.conn_ids.insert(peer, conn);
                self.last_seen.insert(peer, Instant::now());
                self.reset_link(peer);
                if let Some(b) = self.backoffs.get_mut(&peer) {
                    b.connected(Instant::now());
                }
                if self.shared.crashes_applied.lock().contains(&peer) {
                    // An excommunicated peer dialed back in: hold the link
                    // open long enough for the rejoin handshake.
                    self.revenant_grace
                        .insert(peer, Instant::now() + self.config.heartbeat_timeout);
                }
                self.metrics.counter("runtime.accepts").inc();
                self.recorder
                    .record(EventKind::Connect { peer: peer as u32 });
                self.flush_pending(peer);
            }
            Event::PeerClosed { peer, conn } => {
                // Only the current connection's death is a link failure;
                // EOFs from superseded sockets are expected churn.
                if self.conn_ids.get(&peer) == Some(&conn) {
                    self.drop_link(peer);
                }
            }
            Event::Broadcast { msg } => {
                self.seen.insert(msg.broadcast_id);
                if let Some(trace_id) = msg.trace {
                    self.recorder
                        .record(EventKind::BroadcastAccept { trace_id });
                    self.tracer.record(PathRecord {
                        trace_id,
                        node: self.id as u32,
                        parent: None,
                        hops: 0,
                        at_us: self.recorder.now_us(),
                    });
                }
                self.deliver(&msg);
                // Send the hop-incremented copy so a receiver's `hops` field
                // counts the edges the copy travelled.
                self.flood(&msg.forwarded(), None);
            }
            Event::ByzBroadcast { nonce, payload } => {
                let actions = match self.byz.as_mut() {
                    // Traitors never originate honestly; their scripted
                    // attacks fire from the frame path instead.
                    Some(b) if b.behavior.is_none() => {
                        match b.engine.broadcast(nonce, payload) {
                            Ok(actions) => actions,
                            Err(_) => {
                                // The live view is below 3f+1: refuse the
                                // origination instead of certifying under
                                // unsound quorums. The chaos oracle reads
                                // this counter as QuorumUnsafe.
                                self.metrics.counter("byz.unsafe_views").inc();
                                Vec::new()
                            }
                        }
                    }
                    _ => Vec::new(),
                };
                self.apply_byz_actions(actions);
            }
            Event::Kill => {
                self.shared.alive.store(false, Ordering::SeqCst);
            }
        }
    }

    fn on_frame(&mut self, from: MemberId, msg: &Message) {
        if let Some(f) = self.config.faults.clone() {
            // Read-side partition check: frames already in flight when a
            // cut activates must not leak through it.
            if f.blocked(from as u32, self.id as u32, f.elapsed_us()) {
                self.metrics.counter("runtime.chaos_frames_blocked").inc();
                return;
            }
        }
        let now = Instant::now();
        let mut excommunicated = self.shared.crashes_applied.lock().contains(&from);
        if excommunicated {
            self.revenant_grace
                .insert(from, now + self.config.heartbeat_timeout);
            if self.readmit_by_observation(from, now) {
                excommunicated = false;
            } else {
                self.maybe_send_dead_notice(from);
            }
        }
        self.last_seen.insert(from, now);
        self.recorder.record(EventKind::FrameRx {
            peer: from as u32,
            bytes: (msg.encoded_len() + lhg_net::codec::LEN_PREFIX) as u32,
        });
        match wire::classify(msg.broadcast_id) {
            FrameKind::Heartbeat(_) => {
                // Liveness recorded above; keep the probe in the timeline.
                self.recorder
                    .record(EventKind::Heartbeat { peer: from as u32 });
                if !excommunicated && !self.shared.overlay.lock().contains(from) {
                    // A live peer our replica does not know: its JOIN flood
                    // must have been missed. Heartbeats are ground truth.
                    self.apply_join(from);
                }
            }
            FrameKind::Hello(_) => {} // handshakes never reach the loop
            FrameKind::Crash(victim) => {
                if victim == self.id {
                    // A dead notice: the sender excommunicated *us*. Never
                    // flooded, never applied — it starts the rejoin path.
                    self.on_excommunication_notice(from);
                } else if excommunicated {
                    // Crash gossip from a node we excommunicated could be
                    // poison (its replica is stale); drop it until the
                    // sender has rejoined.
                } else if self.seen.insert(msg.broadcast_id) {
                    self.recorder.record(EventKind::CrashReport {
                        victim: victim as u32,
                        via: from as u32,
                    });
                    self.flood(&msg.forwarded(), Some(from));
                    // The wave's *origin* is the reporter, not the relay:
                    // a traitor re-flooding forged waves under fresh
                    // nonces still counts as a single voice.
                    self.note_crash_report(victim, MemberId::from(msg.origin));
                }
            }
            FrameKind::Join(member) => {
                if excommunicated && member != from {
                    // A revenant may only announce itself.
                } else if self.seen.insert(msg.broadcast_id) {
                    self.recorder.record(EventKind::JoinAnnounce {
                        member: member as u32,
                    });
                    self.flood(&msg.forwarded(), Some(from));
                    self.apply_join(member);
                }
            }
            FrameKind::Sync(_) => {
                if msg.payload.is_empty() {
                    self.serve_sync(from);
                } else if self.awaiting_sync.is_some() {
                    self.install_sync(from, &msg.payload);
                } else {
                    // A snapshot we did not request as a membership repair
                    // (byz catch-up solicitation, or a late duplicate)
                    // still carries the server's instance summaries.
                    self.ingest_sync_summaries(from, &msg.payload);
                }
            }
            FrameKind::Ack(_) => {
                if let Some((cum, nacks)) = reliable::decode_ack_payload(msg.payload.clone()) {
                    let now_us = self.recorder.now_us();
                    let cfg = self.config.reliable;
                    let frames = match self.link_tx.get_mut(&from) {
                        Some(tx) => tx.on_ack(cum, &nacks, &cfg, now_us),
                        None => Vec::new(),
                    };
                    for frame in frames {
                        self.send_to(from, &frame);
                    }
                }
            }
            FrameKind::Summary(_) => self.on_summary(from, msg),
            FrameKind::Data => {
                // Link-level dedup first: a retransmitted copy whose
                // original arrived is dropped here (the ack it re-earns
                // goes out on the next sweep), keeping the flooding dedup
                // set's exactly-once accounting untouched.
                if let Some(seq) = msg.link_seq {
                    if !self.link_rx.entry(from).or_default().on_frame(seq) {
                        self.metrics.counter("runtime.link_dups").inc();
                        return;
                    }
                }
                if self.seen.insert(msg.broadcast_id) {
                    if let Some(trace_id) = msg.trace {
                        self.recorder.record(EventKind::BroadcastDeliver {
                            trace_id,
                            from: from as u32,
                            hops: msg.hops,
                        });
                        self.tracer.record(PathRecord {
                            trace_id,
                            node: self.id as u32,
                            parent: Some(from as u32),
                            hops: msg.hops,
                            at_us: self.recorder.now_us(),
                        });
                    }
                    self.deliver(msg);
                    if let Some(trace_id) = msg.trace {
                        self.recorder.record(EventKind::BroadcastForward {
                            trace_id,
                            hops: msg.hops + 1,
                        });
                    }
                    self.flood(&msg.forwarded(), Some(from));
                }
            }
            FrameKind::Byz => {
                if self.seen.insert(msg.broadcast_id) {
                    self.on_byz_frame(from, msg);
                }
            }
        }
    }

    /// A deduplicated Bracha gossip frame (SEND/ECHO/READY). Relay happens
    /// here rather than in the classify arm so a silent traitor can swallow
    /// the frame entirely; a cluster without a byzantine setup still
    /// relays (interop) but never votes or delivers.
    fn on_byz_frame(&mut self, from: MemberId, msg: &Message) {
        let behavior = self.byz.as_ref().and_then(|b| b.behavior);
        if behavior == Some(TraitorBehavior::Silent) {
            return;
        }
        self.flood(&msg.forwarded(), Some(from));
        match behavior {
            None => {
                let actions = match (GossipFrame::from_message(msg), self.byz.as_mut()) {
                    (Some(frame), Some(b)) => b.engine.on_gossip(&frame),
                    _ => Vec::new(), // malformed frame, or byz off: relay-only
                };
                self.apply_byz_actions(actions);
            }
            // Re-flood the identical frame: correct peers' dedup absorbs
            // the duplicate, so the copy costs bandwidth but no votes.
            Some(TraitorBehavior::Replay) => self.flood(&msg.forwarded(), Some(from)),
            Some(TraitorBehavior::Equivocate) => self.mount_equivocation(),
            Some(TraitorBehavior::Forge) => self.mount_forgery(),
            // Failure-detector attacks relay honestly but cast no votes;
            // their teeth are in the heartbeat path (`send_heartbeats`).
            Some(TraitorBehavior::FrameCrash | TraitorBehavior::SuppressHeartbeat) => {}
            Some(TraitorBehavior::Silent) => unreachable!("handled above"),
        }
    }

    /// Apply a batch of engine outputs: gossip frames flood to every live
    /// link (marking our own dedup so the echo never re-enters), and
    /// deliveries land in [`NodeShared::byz_delivered`] shaped for the
    /// chaos oracle: `broadcast_id` = nonce, `origin`/`trace`/byz tag set.
    fn apply_byz_actions(&mut self, actions: Vec<ByzAction>) {
        for action in actions {
            match action {
                ByzAction::Gossip(frame) => {
                    let m = frame.to_message();
                    self.seen.insert(m.broadcast_id);
                    self.flood(&m, None);
                }
                ByzAction::Deliver(d) => {
                    self.metrics.counter("runtime.byz_delivered").inc();
                    let m = Message::new(d.tag.nonce, d.tag.origin, d.payload)
                        .with_trace(d.digest)
                        .with_byz(d.tag);
                    self.shared.byz_delivered.lock().push(m);
                }
            }
        }
    }

    /// Anti-entropy for byz gossip (summary cadence): re-floods this
    /// node's standing SEND/ECHO/READY votes. Peers that already have
    /// them dedup the copies; peers that lost them to a lossy link regain
    /// the vote — which is what keeps churned, re-sized quorums fillable
    /// without a byz-specific ack layer.
    fn regossip_byz(&mut self) {
        let frames: Vec<Message> = match self.byz.as_ref() {
            Some(b) if b.behavior.is_none() => b
                .engine
                .regossip()
                .into_iter()
                .filter_map(|a| match a {
                    ByzAction::Gossip(f) => Some(f.to_message()),
                    ByzAction::Deliver(_) => None,
                })
                .collect(),
            _ => return,
        };
        for m in frames {
            self.seen.insert(m.broadcast_id);
            self.flood(&m, None);
        }
    }

    /// Re-sizes the Bracha membership view after applied churn: instances
    /// created from here on quorum against live membership, while
    /// in-flight instances keep the view they snapshotted. A view below
    /// 3f+1 is refused by the engine — new instances and originations are
    /// refused until membership recovers — and counted on
    /// `byz.unsafe_views` for the chaos oracle's QuorumUnsafe audit.
    fn bump_byz_view(&mut self) {
        let n = self.shared.overlay.lock().members().len();
        let Some(b) = self.byz.as_mut() else { return };
        if b.engine.bump_view(n).is_err() {
            self.metrics.counter("byz.unsafe_views").inc();
        }
    }

    /// Equivocation attack (once): conflicting SENDs under our own origin,
    /// one story to even-indexed live links, another to odd. Correct nodes
    /// must converge on at most one of the two digests (usually neither —
    /// neither side can reach its echo quorum without the other half).
    fn mount_equivocation(&mut self) {
        let Some(b) = self.byz.as_mut() else { return };
        if std::mem::replace(&mut b.attacked, true) {
            return;
        }
        let tag = ByzTag {
            origin: self.id as u32,
            nonce: EQUIVOCATE_NONCE_BASE + self.id,
        };
        let mut peers: Vec<MemberId> = self.writers.keys().copied().collect();
        peers.sort_unstable();
        for (i, peer) in peers.into_iter().enumerate() {
            let payload = if i % 2 == 0 {
                Bytes::from_static(b"two-faced: A")
            } else {
                Bytes::from_static(b"two-faced: B")
            };
            let frame = GossipFrame {
                kind: GossipKind::Send,
                witness: self.id as u32,
                tag,
                digest: byz_digest(&payload),
                payload,
            };
            let m = frame.to_message();
            self.seen.insert(m.broadcast_id);
            self.send_to(peer, &m);
        }
    }

    /// Forgery attack (once): ECHO+READY votes for a SEND the impersonated
    /// origin (lowest other member) never issued. One forged voice is f
    /// short of every quorum, so no correct node delivers the fake.
    fn mount_forgery(&mut self) {
        let Some(b) = self.byz.as_mut() else { return };
        if std::mem::replace(&mut b.attacked, true) {
            return;
        }
        let victim = self
            .shared
            .overlay
            .lock()
            .members()
            .iter()
            .copied()
            .find(|&m| m != self.id)
            .unwrap_or(self.id);
        let tag = ByzTag {
            origin: victim as u32,
            nonce: FORGE_NONCE_BASE + self.id,
        };
        let payload = Bytes::from_static(b"the origin never said this");
        let dig = byz_digest(&payload);
        for (kind, body) in [
            (GossipKind::Echo, payload),
            (GossipKind::Ready, Bytes::new()),
        ] {
            let frame = GossipFrame {
                kind,
                witness: self.id as u32,
                tag,
                digest: dig,
                payload: body,
            };
            let m = frame.to_message();
            self.seen.insert(m.broadcast_id);
            self.flood(&m, None);
        }
    }

    /// Degraded-mode ground truth: re-admits an excommunicated peer that
    /// has been observably alive — frames arriving without a gap — for a
    /// full suspicion timeout, returning `true` when it does.
    ///
    /// This is the only exit from **mutual degradation**: when every node
    /// has blown its k−1 budget (false suspicions during churn stack on
    /// real crashes), dead notices turn into `SYNC` requests that no node
    /// will serve — a deadlock where all links are up and everyone can see
    /// everyone alive, yet nobody's state machine moves. A degraded
    /// replica is already untrusted, so direct observation outranks the
    /// missing join/sync handshake; each node independently re-admits the
    /// live peers it excommunicated, drops below the budget, exits
    /// degradation, and then serves syncs to the rest. Healthy nodes never
    /// take this path — for them the dead-notice → `JOIN` dance works and
    /// keeps admissions announced cluster-wide.
    fn readmit_by_observation(&mut self, from: MemberId, now: Instant) -> bool {
        let timeout = self.config.heartbeat_timeout;
        // A silent gap longer than the suspicion timeout restarts the
        // observation window: "continuously alive" must be earned.
        let gap = self
            .last_seen
            .get(&from)
            .is_none_or(|&t| now.duration_since(t) > timeout);
        let since = *self
            .revenant_since
            .entry(from)
            .and_modify(|s| {
                if gap {
                    *s = now;
                }
            })
            .or_insert(now);
        if !self.shared.is_degraded() || now.duration_since(since) < timeout {
            return false;
        }
        self.metrics.counter("runtime.observed_readmits").inc();
        self.apply_join(from);
        true
    }

    /// Reacts to a direct `CRASH(self)` dead notice from `from`: flood a
    /// `JOIN` when our replica is healthy (the notifier is simply wrong
    /// about us), or request a membership snapshot when it is not (we are
    /// degraded, or already resyncing — our own view cannot be trusted).
    fn on_excommunication_notice(&mut self, from: MemberId) {
        if self
            .byz
            .as_ref()
            .is_some_and(|b| b.behavior == Some(TraitorBehavior::SuppressHeartbeat))
        {
            return; // scripted: it *wants* to stay excommunicated
        }
        let now = Instant::now();
        if self.rejoin_cooldown.is_some_and(|t| now < t) {
            return; // an earlier notice already started the repair
        }
        // Under a byzantine setup a single notice could be a traitor's
        // forgery; react only once f+1 distinct peers agree we were
        // excommunicated (a lone traitor cannot trigger rejoin flapping).
        if self.crash_quorum() > 1 {
            self.notice_senders.insert(from);
            if self.notice_senders.len() < self.crash_quorum() {
                return;
            }
            self.notice_senders.clear();
        }
        self.rejoin_cooldown = Some(now + self.config.heartbeat_timeout);
        if self.shared.is_degraded() || self.awaiting_sync.is_some() {
            self.awaiting_sync = Some(RetrySchedule {
                backoff: Backoff::new(self.retry_policy()),
                due: now + self.config.heartbeat_timeout,
                peer: Some(from),
            });
            self.metrics.counter("runtime.sync_requests").inc();
            let req = Message::new(wire::sync_id(self.id), self.id as u32, Bytes::new());
            self.send_to(from, &req);
        } else {
            // Reply with a direct JOIN; the notifier floods it onward and
            // re-admits us into its replica.
            self.pending_join_announce = true;
            let id = wire::join_id(self.id, self.fresh_wave_nonce());
            self.seen.insert(id);
            let msg = Message::new(id, self.id as u32, Bytes::new());
            self.send_to(from, &msg);
            self.try_announce_join();
        }
    }

    /// Answers a membership `SYNC` request with a snapshot of our replica —
    /// but only while that replica is trustworthy (not degraded, not itself
    /// waiting on a snapshot). Under a byzantine setup the snapshot also
    /// carries this node's standing Bracha instance summaries
    /// ([`BrachaEngine::summaries`]) so a rejoiner can catch up on
    /// broadcasts that ran while it was down; Equivocate/Forge traitors
    /// serve forged summaries instead — which corroboration must defeat.
    fn serve_sync(&mut self, from: MemberId) {
        if self.shared.is_degraded() || self.awaiting_sync.is_some() {
            return;
        }
        let summaries = match self.byz.as_ref() {
            Some(b) => match b.behavior {
                None => b.engine.summaries(),
                Some(TraitorBehavior::Equivocate | TraitorBehavior::Forge) => {
                    self.forged_summaries(from)
                }
                Some(_) => Vec::new(),
            },
            None => Vec::new(),
        };
        let payload = wire::encode_sync_snapshot(&self.shared.overlay.lock(), &summaries);
        let reply = Message::new(wire::sync_id(self.id), self.id as u32, payload);
        if self.send_to(from, &reply) {
            self.metrics.counter("runtime.syncs_served").inc();
        }
    }

    /// A traitor's catch-up reply: a fabricated already-`Delivered`
    /// instance the stable majority never saw, plus digest-flipped copies
    /// of its real summaries. Each lie is one voice — f short of the f+1
    /// echo corroboration and 2f+1 delivery quorum, so a correct rejoiner
    /// ingests it into a state that never certifies.
    fn forged_summaries(&self, requester: MemberId) -> Vec<InstanceSummary> {
        let victim = if requester == 0 { 1 } else { 0 };
        let payload = Bytes::from_static(b"forged catch-up: majority never delivered this");
        let mut items = vec![InstanceSummary {
            tag: ByzTag {
                origin: victim as u32,
                nonce: FORGE_NONCE_BASE + 0x500 + self.id,
            },
            phase: Phase::Delivered,
            digest: byz_digest(&payload),
            payload,
        }];
        if let Some(b) = self.byz.as_ref() {
            items.extend(b.engine.summaries().into_iter().map(|mut s| {
                s.digest = s.digest.wrapping_add(1);
                s.payload = Bytes::new();
                s.phase = Phase::Delivered;
                s
            }));
        }
        items
    }

    /// Ingests the Bracha summaries riding a SYNC snapshot as the serving
    /// peer's standing votes. Corroboration happens inside the engine —
    /// f+1 distinct echo witnesses, 2f+1 distinct ready witnesses — so one
    /// forged snapshot (or one traitor's serve) moves no instance state,
    /// while a delivery quorum of honest snapshots completes every
    /// broadcast the rejoiner slept through. Idempotent per peer.
    fn ingest_sync_summaries(&mut self, from: MemberId, payload: &Bytes) {
        let Some((_, _, _, summaries)) = wire::decode_sync_snapshot(payload) else {
            return;
        };
        self.ingest_summaries_from(from, &summaries);
    }

    fn ingest_summaries_from(&mut self, from: MemberId, summaries: &[InstanceSummary]) {
        if summaries.is_empty() {
            return;
        }
        let actions = match self.byz.as_mut() {
            Some(b) if b.behavior.is_none() => b.engine.ingest_summaries(from as u32, summaries),
            _ => return,
        };
        self.metrics.counter("runtime.catchup_ingests").inc();
        self.catchup_replies.insert(from);
        self.apply_byz_actions(actions);
    }

    /// Installs a membership snapshot served by `via`: rebuild the replica,
    /// admit ourselves, clear all suspicion state, and schedule the `JOIN`
    /// announcement that tells everyone else.
    fn install_sync(&mut self, via: MemberId, payload: &Bytes) {
        let Some((constraint, k, members, summaries)) = wire::decode_sync_snapshot(payload) else {
            return;
        };
        if k != self.k {
            return; // a replica from some other cluster generation
        }
        let Ok(mut replica) = DynamicOverlay::from_parts(constraint, k, members) else {
            return;
        };
        if !replica.contains(self.id) && replica.admit(self.id).is_err() {
            return;
        }
        if self.shared.degraded.swap(false, Ordering::SeqCst) {
            self.recorder.record(EventKind::DegradedExit);
            self.metrics.counter("runtime.degraded_exits").inc();
            self.degraded_gauge().set(0);
        }
        *self.shared.overlay.lock() = replica;
        self.shared.crashes_applied.lock().clear();
        // Dedup state survives wholesale: wave nonces guarantee that any
        // wave newer than the snapshot floods under an unseen id, while
        // stale copies of pre-sync waves stay absorbed.
        self.last_seen.clear();
        self.next_dial.clear();
        self.backoffs.clear();
        self.revenant_grace.clear();
        self.revenant_since.clear();
        self.notice_sent.clear();
        self.crash_reporters.clear();
        self.notice_senders.clear();
        self.bump_byz_view();
        // The snapshot's summaries are the server's standing byz votes:
        // ingest them now so catch-up starts from this first witness.
        self.ingest_summaries_from(via, &summaries);
        self.awaiting_sync = None;
        self.rejoin_cooldown = Some(Instant::now() + self.config.heartbeat_timeout);
        self.pending_join_announce = true;
        self.metrics.counter("runtime.sync_rejoins").inc();
        self.recorder
            .record(EventKind::SyncRejoin { via: via as u32 });
        self.reconcile();
        self.try_announce_join();
    }

    /// Floods this node's own `JOIN` announcement once at least one link is
    /// up (flooding into the void would announce to nobody).
    fn try_announce_join(&mut self) {
        if !self.pending_join_announce || self.writers.is_empty() {
            return;
        }
        self.pending_join_announce = false;
        let id = wire::join_id(self.id, self.fresh_wave_nonce());
        self.seen.insert(id);
        self.metrics.counter("runtime.join_announces").inc();
        self.recorder.record(EventKind::JoinAnnounce {
            member: self.id as u32,
        });
        let msg = Message::new(id, self.id as u32, Bytes::new());
        self.flood(&msg, None);
        // Byz catch-up rides the same moment: the instant we are back on
        // the mesh, ask every neighbor for its instance summaries so
        // broadcasts originated while we were down still corroborate and
        // deliver here. Retried on backoff until a delivery quorum of
        // distinct peers has answered (`retry_catchup`).
        if self.solicit_catchup() {
            self.catchup = Some(RetrySchedule {
                backoff: Backoff::new(self.retry_policy()),
                due: Instant::now() + self.config.heartbeat_timeout,
                peer: None,
            });
        }
    }

    /// Clears the shared rejoin-in-flight flag once the announcement has
    /// flooded and no membership `SYNC` is outstanding.
    fn maybe_settle_join(&mut self) {
        if self.shared.join_pending.load(Ordering::SeqCst)
            && !self.pending_join_announce
            && self.awaiting_sync.is_none()
        {
            self.shared.join_pending.store(false, Ordering::SeqCst);
        }
    }

    /// The shared retry/backoff policy for rejoin-path requests: same
    /// knobs as dialing, with the suspicion timeout as probation window.
    fn retry_policy(&self) -> BackoffPolicy {
        BackoffPolicy {
            base: self.config.dial_backoff,
            cap: self.config.dial_backoff_cap,
            max_attempts: self.config.dial_max_attempts,
            // A link healthy for a full suspicion window is genuinely
            // healthy; anything shorter may be one beat of a flap.
            probation_window: self.config.heartbeat_timeout,
        }
    }

    /// The SYNC snapshot never arrived (dropped frame, dead server):
    /// re-send the request on the jittered backoff instead of waiting for
    /// the next dead notice. Exhaustion clears the state — bounded work,
    /// never a wedge; a later notice restarts the handshake from scratch.
    fn retry_sync(&mut self, now: Instant) {
        let Some(mut retry) = self.awaiting_sync.take() else {
            return;
        };
        let Some(delay) = retry.backoff.next_delay(&mut self.rng) else {
            self.metrics.counter("runtime.sync_retry_exhausted").inc();
            return;
        };
        self.metrics.counter("runtime.sync_retries").inc();
        // Prefer the original server; fall back to any live link (the
        // server itself may have died while we waited).
        let target = retry
            .peer
            .filter(|p| self.writers.contains_key(p))
            .or_else(|| self.writers.keys().next().copied());
        if let Some(peer) = target {
            retry.peer = Some(peer);
            let req = Message::new(wire::sync_id(self.id), self.id as u32, Bytes::new());
            self.send_to(peer, &req);
        }
        retry.due = now + self.config.heartbeat_timeout + delay;
        self.awaiting_sync = Some(retry);
    }

    /// Sends an empty `SYNC` request to every live link: each correct
    /// server answers with a snapshot whose summaries we ingest. Only
    /// correct byz nodes solicit; returns whether anything was sent.
    fn solicit_catchup(&mut self) -> bool {
        if self.byz.as_ref().is_none_or(|b| b.behavior.is_some()) {
            return false;
        }
        let peers: Vec<MemberId> = self.writers.keys().copied().collect();
        if peers.is_empty() {
            return false;
        }
        self.metrics.counter("runtime.catchup_solicits").inc();
        let req = Message::new(wire::sync_id(self.id), self.id as u32, Bytes::new());
        for peer in peers {
            self.send_to(peer, &req);
        }
        true
    }

    /// Re-solicits byz catch-up on the jittered backoff until a delivery
    /// quorum (2f+1) of distinct peers has answered or the schedule is
    /// exhausted. Repeat ingests are idempotent, so over-asking is safe.
    fn retry_catchup(&mut self, now: Instant) {
        let Some(mut retry) = self.catchup.take() else {
            return;
        };
        let quorum = self
            .config
            .byzantine
            .as_ref()
            .map_or(usize::MAX, |s| 2 * s.f + 1);
        if self.catchup_replies.len() >= quorum {
            return; // enough distinct witnesses; catch-up is corroborated
        }
        let Some(delay) = retry.backoff.next_delay(&mut self.rng) else {
            self.metrics.counter("runtime.catchup_exhausted").inc();
            return;
        };
        if self.solicit_catchup() {
            self.metrics.counter("runtime.catchup_retries").inc();
        }
        retry.due = now + self.config.heartbeat_timeout + delay;
        self.catchup = Some(retry);
    }

    /// The next control-wave nonce: this life's cluster-unique ordinal in
    /// the high half, a per-life counter in the low half. No two waves any
    /// node ever floods share a nonce (until a single life emits 2^16
    /// waves, by which time the copies of wave 0 are long drained).
    fn fresh_wave_nonce(&mut self) -> u32 {
        let nonce = wire::wave_nonce(self.life, self.wave_seq);
        self.wave_seq = self.wave_seq.wrapping_add(1);
        nonce
    }

    /// Applies a (re)join of `member`: clear its crash state, admit it into
    /// the overlay at the canonical sorted position, and apply the churn.
    fn apply_join(&mut self, member: MemberId) {
        self.shared.crashes_applied.lock().remove(&member);
        self.revenant_grace.remove(&member);
        self.revenant_since.remove(&member);
        self.notice_sent.remove(&member);
        // A rejoined member's pre-join crash reports are stale evidence.
        self.crash_reporters.remove(&member);
        self.backoffs.remove(&member);
        self.next_dial.remove(&member);
        self.last_seen.insert(member, Instant::now());
        let churn = {
            let mut ov = self.shared.overlay.lock();
            if ov.contains(member) {
                None
            } else {
                ov.admit(member).ok()
            }
        };
        if let Some(report) = churn {
            self.metrics.counter("runtime.joins_applied").inc();
            self.apply_churn(&report);
            self.bump_byz_view();
            // Churn-triggered regossip, aimed at the rejoiner: our
            // standing votes go out now, not a summary cadence later, so
            // its re-sized quorums start filling immediately.
            self.regossip_byz();
        }
        self.maybe_exit_degraded();
        self.reconcile();
    }

    /// Records an application delivery (and its end-to-end latency, if the
    /// broadcast's start instant is known), retaining the message for
    /// anti-entropy pull serving.
    fn deliver(&mut self, msg: &Message) {
        self.metrics.counter("runtime.deliveries").inc();
        if let Some(t0) = self.clock.read().get(&msg.broadcast_id) {
            let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            self.metrics
                .histogram("runtime.delivery_latency_us")
                .record(us);
        }
        self.remember(msg);
        self.shared.delivered.lock().push(msg.clone());
    }

    /// Retains a delivered data message (link stamp stripped) for
    /// anti-entropy summaries and pull serving, evicting the oldest entry
    /// past the configured store capacity.
    fn remember(&mut self, msg: &Message) {
        if self.recent.len() >= self.config.reliable.store_cap {
            if let Some(old) = self.recent.pop_front() {
                self.store.remove(&old);
            }
        }
        self.recent.push_back(msg.broadcast_id);
        let mut kept = msg.clone();
        kept.link_seq = None;
        self.store.insert(msg.broadcast_id, kept);
    }

    /// Sends `msg` to every connected peer except `except`. Data frames go
    /// through the per-link reliable layer; control frames stay
    /// best-effort.
    fn flood(&mut self, msg: &Message, except: Option<MemberId>) {
        let is_data = matches!(wire::classify(msg.broadcast_id), FrameKind::Data);
        let peers: Vec<MemberId> = self.writers.keys().copied().collect();
        for peer in peers {
            if Some(peer) != except {
                if is_data {
                    self.reliable_send_to(peer, msg.clone());
                } else {
                    self.send_to(peer, msg);
                }
            }
        }
    }

    /// Hands a data frame to `peer`'s [`LinkSender`] and writes whatever
    /// the window admits right now; the rest is queued (backpressure) and
    /// surfaces from later acks or sweeps.
    fn reliable_send_to(&mut self, peer: MemberId, msg: Message) {
        let now_us = self.recorder.now_us();
        let cfg = self.config.reliable;
        let stamped = self
            .link_tx
            .entry(peer)
            .or_default()
            .send(msg, &cfg, now_us);
        if let Some(stamped) = stamped {
            self.send_to(peer, &stamped);
        }
    }

    /// Retransmit sweep + ack emission for every live link, run on the
    /// main-loop tick cadence.
    fn reliable_tick(&mut self) {
        let now_us = self.recorder.now_us();
        let cfg = self.config.reliable;
        let peers: Vec<MemberId> = self.writers.keys().copied().collect();
        for peer in peers {
            let frames = match self.link_tx.get_mut(&peer) {
                Some(tx) => tx.sweep(&cfg, now_us),
                None => Vec::new(),
            };
            if !frames.is_empty() {
                self.metrics
                    .counter("runtime.retransmits")
                    .add(frames.len() as u64);
            }
            for frame in &frames {
                self.send_to(peer, frame);
            }
            let owed = match self.link_rx.get_mut(&peer) {
                Some(rx) if rx.dirty() => Some(rx.ack_payload()),
                _ => None,
            };
            if let Some((cum, nacks)) = owed {
                let ack = Message::new(
                    wire::ack_id(self.id),
                    self.id as u32,
                    reliable::encode_ack_payload(cum, &nacks),
                );
                self.metrics.counter("runtime.acks_sent").inc();
                self.send_to(peer, &ack);
            }
        }
    }

    /// Floods an anti-entropy summary of recently-delivered broadcast ids
    /// to every connected peer (heartbeat-cadence repair channel).
    fn send_summaries(&mut self) {
        if self
            .byz
            .as_ref()
            .is_some_and(|b| b.behavior == Some(TraitorBehavior::SuppressHeartbeat))
        {
            return; // any frame would refresh last_seen and spoil the act
        }
        self.regossip_byz();
        if self.recent.is_empty() || self.writers.is_empty() {
            return;
        }
        let ids: Vec<u64> = self
            .recent
            .iter()
            .rev()
            .take(MAX_SUMMARY_IDS)
            .copied()
            .collect();
        let msg = Message::new(
            wire::summary_id(self.id),
            self.id as u32,
            reliable::encode_summary_payload(false, &ids),
        );
        self.metrics.counter("runtime.summaries_sent").inc();
        self.flood(&msg, None);
    }

    /// Reacts to an anti-entropy summary from `from`: an advertisement is
    /// diffed against our dedup set and any gap answered with a pull; a
    /// pull is served from the recent-message store over the reliable
    /// layer. Served copies keep their stored hop count — repair traffic
    /// is not part of the dissemination tree.
    fn on_summary(&mut self, from: MemberId, msg: &Message) {
        match reliable::decode_summary_payload(msg.payload.clone()) {
            Some((false, ids)) => {
                let missing: Vec<u64> = ids
                    .into_iter()
                    .filter(|id| !self.seen.contains(*id))
                    .collect();
                if !missing.is_empty() {
                    self.metrics.counter("runtime.pulls_sent").inc();
                    let pull = Message::new(
                        wire::summary_id(self.id),
                        self.id as u32,
                        reliable::encode_summary_payload(true, &missing),
                    );
                    self.send_to(from, &pull);
                }
            }
            Some((true, ids)) => {
                for id in ids {
                    if let Some(kept) = self.store.get(&id).cloned() {
                        self.metrics.counter("runtime.pulls_served").inc();
                        self.reliable_send_to(from, kept);
                    }
                }
            }
            None => {}
        }
    }

    /// Resets `peer`'s link-sequence spaces for a fresh connection, parking
    /// whatever the old sender never got acknowledged so
    /// [`Self::flush_pending`] can re-send it.
    fn reset_link(&mut self, peer: MemberId) {
        self.link_rx.remove(&peer);
        if let Some(mut tx) = self.link_tx.remove(&peer) {
            let undelivered = tx.take_undelivered();
            if !undelivered.is_empty() {
                let parked = self.pending_relay.entry(peer).or_default();
                parked.extend(undelivered);
                // The park is bounded like the sender queue: a peer that
                // stays down long enough to overflow it is left to
                // anti-entropy repair.
                let cap = self.config.reliable.queue_cap;
                let excess = parked.len().saturating_sub(cap);
                if excess > 0 {
                    parked.drain(..excess);
                }
            }
        }
    }

    /// Re-sends data frames parked by a previous teardown now that a
    /// connection to `peer` is up again. Duplicates are harmless: the
    /// peer's flooding dedup absorbs anything it already has.
    fn flush_pending(&mut self, peer: MemberId) {
        let Some(parked) = self.pending_relay.remove(&peer) else {
            return;
        };
        for msg in parked {
            self.reliable_send_to(peer, msg);
        }
    }

    /// Clears dial-backoff streaks for peers whose connection has stayed
    /// healthy for a full probation window (a single momentary connect is
    /// not enough — see [`lhg_net::backoff`]).
    fn settle_backoffs(&mut self, now: Instant) {
        let writers = &self.writers;
        self.backoffs
            .retain(|peer, b| !(writers.contains_key(peer) && b.maybe_reset(now)));
    }

    /// Sends one frame to `peer` through the fault injector (if any): the
    /// frame may be swallowed (counted, not a link failure) or written more
    /// than once (duplicate injection). Injected extra delays are ignored —
    /// TCP ordering makes per-frame delay infeasible without a timer wheel.
    fn send_to(&mut self, peer: MemberId, msg: &Message) -> bool {
        if let Some(f) = self.config.faults.clone() {
            let seq = self.fault_seqs.entry(peer).or_insert(0);
            let this_seq = *seq;
            *seq += 1;
            let copies = f.decide(self.id as u32, peer as u32, f.elapsed_us(), this_seq);
            if copies.is_empty() {
                self.metrics.counter("runtime.chaos_frames_dropped").inc();
                self.recorder
                    .record(EventKind::FaultDrop { peer: peer as u32 });
                return true; // the network ate it; the link is fine
            }
            let mut ok = true;
            for _ in copies {
                ok = self.write_frame_to(peer, msg);
                if !ok {
                    break;
                }
            }
            return ok;
        }
        self.write_frame_to(peer, msg)
    }

    /// Writes one frame to `peer`; a failed write tears the link down (the
    /// reconcile pass will redial if the link is still wanted).
    fn write_frame_to(&mut self, peer: MemberId, msg: &Message) -> bool {
        let res = match self.writers.get_mut(&peer) {
            Some(stream) => write_frame(stream, msg),
            None => return false,
        };
        match res {
            Ok(n) => {
                self.metrics.counter("runtime.messages_sent").inc();
                self.metrics.counter("runtime.bytes_sent").add(n as u64);
                // Same site as the counters above, so per-class totals
                // reconcile with them exactly (n includes the length prefix).
                self.metrics
                    .wire()
                    .record(self.id as u32, peer as u32, msg.broadcast_id, n as u64);
                self.recorder.record(EventKind::FrameTx {
                    peer: peer as u32,
                    bytes: n as u32,
                });
                true
            }
            Err(_) => {
                self.drop_link(peer);
                false
            }
        }
    }

    fn send_heartbeats(&mut self) {
        match self.byz.as_ref().and_then(|b| b.behavior) {
            // Plays dead on the control plane: no heartbeats means correct
            // nodes legitimately excommunicate it — forced churn is the
            // attack, and the dynamic views must absorb it.
            Some(TraitorBehavior::SuppressHeartbeat) => return,
            Some(TraitorBehavior::FrameCrash) => self.mount_frame_crash(),
            _ => {}
        }
        let msg = Message::new(wire::heartbeat_id(self.id), self.id as u32, Bytes::new());
        self.flood(&msg, None);
    }

    /// FrameCrash traitor: on every heartbeat, flood a freshly-nonced
    /// forged CRASH wave naming a live victim (the lowest other member).
    /// Every wave carries this traitor's origin, so corroboration counts
    /// the whole barrage as a single reporter — below the f+1 quorum, the
    /// still-heartbeating victim survives.
    fn mount_frame_crash(&mut self) {
        let victim = self
            .shared
            .overlay
            .lock()
            .members()
            .iter()
            .copied()
            .find(|&m| m != self.id);
        let Some(victim) = victim else { return };
        self.metrics.counter("runtime.forged_crash_waves").inc();
        let id = wire::crash_id(victim, self.fresh_wave_nonce());
        self.seen.insert(id);
        let msg = Message::new(id, self.id as u32, Bytes::new());
        self.flood(&msg, None);
    }

    /// Sends a direct `CRASH(peer)` *to* `peer`: "you are excommunicated
    /// here". Rate-limited so a chatty revenant gets one notice per
    /// half-timeout, not one per frame.
    fn maybe_send_dead_notice(&mut self, peer: MemberId) {
        let now = Instant::now();
        let interval = self.config.heartbeat_timeout / 2;
        let due = self
            .notice_sent
            .get(&peer)
            .is_none_or(|&t| now.duration_since(t) >= interval);
        if !due {
            return;
        }
        self.notice_sent.insert(peer, now);
        self.metrics.counter("runtime.dead_notices").inc();
        // Dead notices are point-to-point and never deduplicated, but a
        // fresh nonce keeps them out of any wave's identity space.
        let id = wire::crash_id(peer, self.fresh_wave_nonce());
        let msg = Message::new(id, self.id as u32, Bytes::new());
        self.send_to(peer, &msg);
    }

    /// Declares crashed any monitored neighbor silent past the timeout;
    /// refreshes the per-peer heartbeat-age gauges along the way.
    fn check_suspicions(&mut self, now: Instant) {
        let crashed = self.shared.crashes_applied.lock().clone();
        let mut suspects = Vec::new();
        for peer in self.shared.desired_neighbors() {
            if crashed.contains(&peer) {
                continue;
            }
            // A peer we have never heard from starts its grace period now;
            // this also covers crash-before-connect (dials keep failing).
            let seen_at = *self.last_seen.entry(peer).or_insert(now);
            let age = now.duration_since(seen_at);
            self.hb_age_gauge(peer)
                .set(i64::try_from(age.as_micros()).unwrap_or(i64::MAX));
            if age > self.config.heartbeat_timeout {
                suspects.push(peer);
            }
        }
        for peer in suspects {
            self.suspect(peer);
        }
    }

    /// The cached gauge `runtime.heartbeat_age_us.n<id>.p<peer>` — the µs
    /// since this node last heard from `peer`, fresh as of the latest
    /// suspicion sweep (every main-loop tick).
    fn hb_age_gauge(&mut self, peer: MemberId) -> Arc<Gauge> {
        let (id, metrics) = (self.id, &self.metrics);
        Arc::clone(
            self.hb_age_gauges.entry(peer).or_insert_with(|| {
                metrics.gauge(&format!("runtime.heartbeat_age_us.n{id}.p{peer}"))
            }),
        )
    }

    /// The gauge `runtime.degraded.n<id>`: 1 while this node is degraded.
    fn degraded_gauge(&self) -> Arc<Gauge> {
        self.metrics
            .gauge(&format!("runtime.degraded.n{}", self.id))
    }

    /// The number of distinct crash reporters required before a flooded
    /// CRASH wave is applied: f+1 under a byzantine setup (so the f
    /// traitors alone can never excommunicate anyone), 1 otherwise (the
    /// crash-only fault model trusts every report — unchanged behavior).
    fn crash_quorum(&self) -> usize {
        match &self.config.byzantine {
            Some(setup) => setup.f + 1,
            None => 1,
        }
    }

    /// `true` while `victim` is demonstrably alive on a direct link: the
    /// connection is up and frames arrived within the suspicion timeout.
    fn directly_live(&self, victim: MemberId) -> bool {
        self.writers.contains_key(&victim)
            && self
                .last_seen
                .get(&victim)
                .is_some_and(|&t| t.elapsed() <= self.config.heartbeat_timeout)
    }

    /// Byz-aware corroborated suspicion: records `reporter`'s vote that
    /// `victim` crashed and applies the crash only once
    /// [`Self::crash_quorum`] distinct reporters agree **and** the victim
    /// is not demonstrably alive on a direct link. Either guard alone
    /// stops a lone traitor: forged waves all share the traitor's origin
    /// (one voice), and even a corroborated-looking wave is vetoed while
    /// the victim keeps heartbeating at us — our own detector counts
    /// itself as a reporter the moment the silence becomes real.
    fn note_crash_report(&mut self, victim: MemberId, reporter: MemberId) {
        let quorum = self.crash_quorum();
        if quorum <= 1 {
            self.apply_crash(victim);
            return;
        }
        let reporters = self.crash_reporters.entry(victim).or_default();
        reporters.insert(reporter);
        if reporters.len() < quorum {
            self.metrics.counter("runtime.crash_reports_pending").inc();
            return;
        }
        if self.directly_live(victim) {
            self.metrics.counter("runtime.crash_vetoes").inc();
            return;
        }
        self.crash_reporters.remove(&victim);
        self.apply_crash(victim);
    }

    /// Local suspicion: announce the crash to the cluster, then heal.
    /// Direct evidence (our own heartbeat timeout) applies immediately —
    /// corroboration guards *remote* reports, not first-hand observation.
    fn suspect(&mut self, victim: MemberId) {
        self.metrics.counter("runtime.suspects").inc();
        self.recorder.record(EventKind::Suspicion {
            peer: victim as u32,
        });
        self.recorder.record(EventKind::CrashReport {
            victim: victim as u32,
            via: self.id as u32,
        });
        let id = wire::crash_id(victim, self.fresh_wave_nonce());
        self.seen.insert(id);
        let msg = Message::new(id, self.id as u32, Bytes::new());
        self.flood(&msg, None);
        self.apply_crash(victim);
    }

    /// Removes `victim` from the overlay replica and applies the resulting
    /// churn: drop removed links, dial added ones. Idempotent per victim.
    ///
    /// When this crash pushes the suspect count to ≥ k, the node **stops
    /// healing** and degrades instead: below the k−1 budget LHG guarantees
    /// a consistent rebuild, above it a rebuild could partition the replica
    /// set (e.g. on the minority side of a network split). Degraded nodes
    /// keep probing every known member until joins bring the count back
    /// within budget ([`Self::maybe_exit_degraded`]) or a membership sync
    /// replaces their replica wholesale.
    fn apply_crash(&mut self, victim: MemberId) {
        if victim == self.id {
            return; // dead notices are handled before classification
        }
        if !self.shared.crashes_applied.lock().insert(victim) {
            return;
        }
        self.metrics.counter("runtime.crashes_applied").inc();
        // A fresh crash record must not inherit a prior observation run.
        self.revenant_since.remove(&victim);
        if self.healing_since.is_none() {
            self.healing_since = Some(Instant::now());
            self.recorder.record(EventKind::HealBegin {
                victim: victim as u32,
            });
        }
        let active = self.shared.crashes_applied.lock().len();
        if active >= self.k {
            if !self.shared.degraded.swap(true, Ordering::SeqCst) {
                self.metrics.counter("runtime.degraded_entries").inc();
                self.recorder.record(EventKind::Degraded {
                    active: active as u32,
                });
                self.degraded_gauge().set(1);
            }
            self.drop_link(victim);
            self.next_dial.remove(&victim);
            self.pending_relay.remove(&victim);
            self.reconcile();
            return;
        }
        let churn = {
            let mut ov = self.shared.overlay.lock();
            if ov.contains(victim) {
                // A below-floor heal is refused atomically; we then keep the
                // stale topology minus the dead links. Defensive: the failure
                // model promises at most k-1 crashes, which never hits the
                // 2k membership floor from n ≥ 2k + (k-1) launches.
                ov.crash_many(&[victim]).ok()
            } else {
                None
            }
        };
        self.drop_link(victim);
        self.last_seen.remove(&victim);
        self.next_dial.remove(&victim);
        // Frames parked for an excommunicated peer are abandoned; if it
        // ever rejoins, anti-entropy summaries catch it up instead.
        self.pending_relay.remove(&victim);
        if let Some(report) = churn {
            self.apply_churn(&report);
            self.bump_byz_view();
        }
        self.reconcile();
    }

    /// Leaves degraded mode once joins have brought the suspect count back
    /// within the k−1 budget, then applies the heals deferred while the
    /// budget was blown.
    fn maybe_exit_degraded(&mut self) {
        if !self.shared.is_degraded() {
            return;
        }
        let remaining: Vec<MemberId> = self.shared.crashes_applied.lock().iter().copied().collect();
        if remaining.len() >= self.k {
            return;
        }
        self.shared.degraded.store(false, Ordering::SeqCst);
        self.metrics.counter("runtime.degraded_exits").inc();
        self.recorder.record(EventKind::DegradedExit);
        self.degraded_gauge().set(0);
        let churn = {
            let mut ov = self.shared.overlay.lock();
            let stale: Vec<MemberId> = remaining.into_iter().filter(|&m| ov.contains(m)).collect();
            if stale.is_empty() {
                None
            } else {
                ov.crash_many(&stale).ok()
            }
        };
        if let Some(report) = churn {
            self.apply_churn(&report);
            self.bump_byz_view();
        }
        self.reconcile();
    }

    /// Applies one churn report: drop removed links, dial added ones (on
    /// the dialer side).
    fn apply_churn(&mut self, report: &ChurnReport) {
        for peer in report.removed_for(self.id).collect::<Vec<_>>() {
            self.drop_link(peer);
            self.metrics.counter("runtime.links_dropped").inc();
        }
        for peer in report.added_for(self.id).collect::<Vec<_>>() {
            if self.id < peer {
                self.dial(peer);
            }
        }
    }

    /// Converges connections toward the overlay's desired neighbor set:
    /// tears down links the dialer side no longer wants, dials missing ones
    /// (with backoff), and closes the healing stopwatch when done.
    ///
    /// While the node is repairing membership knowledge (degraded, waiting
    /// on a sync, or holding an unannounced join) it probes **every** known
    /// member instead — its notion of "desired" cannot be trusted, and any
    /// live peer is a way back in.
    fn reconcile(&mut self) {
        let desired = self.shared.desired_neighbors();
        let crashed = self.shared.crashes_applied.lock().clone();
        let probe_all =
            self.shared.is_degraded() || self.pending_join_announce || self.awaiting_sync.is_some();
        let now = Instant::now();
        self.revenant_grace
            .retain(|_, &mut deadline| now < deadline);

        // Teardown is dialer-driven so a link is never closed by a node
        // that merely hasn't healed yet; connections to crashed members go
        // down too, unless the peer is a revenant mid-rejoin.
        let current: Vec<MemberId> = self.writers.keys().copied().collect();
        for peer in current {
            let revenant = self.revenant_grace.contains_key(&peer);
            let unwanted = if crashed.contains(&peer) {
                !probe_all && !revenant
            } else {
                !probe_all && self.id < peer && !desired.contains(&peer)
            };
            if unwanted {
                self.drop_link(peer);
                self.metrics.counter("runtime.links_dropped").inc();
            }
        }

        let targets: Vec<MemberId> = if probe_all {
            let dir = self.directory.read();
            dir.keys().copied().filter(|&p| p != self.id).collect()
        } else {
            desired.iter().copied().collect()
        };
        for peer in targets {
            if self.writers.contains_key(&peer) {
                continue;
            }
            let may_dial = probe_all || (self.id < peer && !crashed.contains(&peer));
            if !may_dial {
                continue;
            }
            if self.next_dial.get(&peer).is_none_or(|&t| now >= t) {
                self.dial(peer);
            }
        }

        // Grave probing: periodically dial the members this replica
        // believes crashed. A genuinely dead member refuses instantly and
        // costs one backed-off connect; a live one is a stale exclusion
        // this node might otherwise never learn about — e.g. a late first
        // receipt of an old crash wave for a **non-neighbor**, where no
        // link exists over which the usual dead-notice → `JOIN` repair
        // could run. On contact, send the dead notice straight away: even
        // if the probe link is torn down by the peer's own reconcile pass,
        // a healthy peer answers with a flooded `JOIN` wave that reaches
        // us through the mesh. (Degraded nodes already probe everything.)
        if !probe_all {
            for peer in crashed {
                if self.writers.contains_key(&peer)
                    || self.next_dial.get(&peer).is_some_and(|&t| now < t)
                {
                    continue;
                }
                self.dial(peer);
                if self.writers.contains_key(&peer) {
                    self.metrics.counter("runtime.grave_probes_hit").inc();
                    self.revenant_grace
                        .insert(peer, now + self.config.heartbeat_timeout);
                    self.maybe_send_dead_notice(peer);
                }
            }
        }

        *self.shared.links_up.lock() = self.writers.keys().copied().collect();

        if let Some(t0) = self.healing_since {
            if desired.iter().all(|p| self.writers.contains_key(p)) {
                let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
                self.metrics
                    .histogram("runtime.reconnect_time_us")
                    .record(us);
                self.metrics.counter("runtime.heals").inc();
                self.recorder.record(EventKind::HealEnd { took_us: us });
                self.healing_since = None;
            }
        }
    }

    /// Dials `peer`, performs the hello handshake, and spawns its reader.
    /// Fault-injected partitions block dialing too — a cut that only
    /// dropped frames could be bypassed by reconnecting through it.
    fn dial(&mut self, peer: MemberId) {
        if let Some(f) = self.config.faults.clone() {
            if f.blocked(self.id as u32, peer as u32, f.elapsed_us()) {
                self.dial_failed(peer);
                return;
            }
        }
        let addr = self.directory.read().get(&peer).copied();
        let stream =
            addr.and_then(|a| TcpStream::connect_timeout(&a, self.config.dial_timeout).ok());
        let Some(mut stream) = stream else {
            self.dial_failed(peer);
            return;
        };
        let _ = stream.set_nodelay(true);
        let hello = Message::new(wire::hello_id(self.id), self.id as u32, Bytes::new());
        let reader = match write_frame(&mut stream, &hello).and(stream.try_clone()) {
            Ok(s) => s,
            Err(_) => {
                self.dial_failed(peer);
                return;
            }
        };
        let tx = self.tx.clone();
        let conn = self.conns.fetch_add(1, Ordering::Relaxed);
        std::thread::spawn(move || {
            let mut reader = reader;
            reader_loop(peer, conn, &mut reader, &tx);
        });
        if let Some(old) = self.writers.insert(peer, stream) {
            let _ = old.shutdown(Shutdown::Both);
        }
        self.conn_ids.insert(peer, conn);
        self.last_seen.insert(peer, Instant::now());
        self.next_dial.remove(&peer);
        self.reset_link(peer);
        // The success alone does not forgive the failure streak: the
        // escalated schedule stays until the link survives a full
        // probation window ([`Self::settle_backoffs`]).
        if let Some(b) = self.backoffs.get_mut(&peer) {
            b.connected(Instant::now());
        }
        self.metrics.counter("runtime.dials").inc();
        self.recorder
            .record(EventKind::Connect { peer: peer as u32 });
        self.flush_pending(peer);
    }

    /// Schedules the next dial attempt to `peer` on the jittered exponential
    /// backoff. After `dial_max_attempts` consecutive failures the peer goes
    /// on low-frequency probation instead — never permanent abandonment,
    /// because a healed partition must eventually reconnect.
    fn dial_failed(&mut self, peer: MemberId) {
        self.metrics.counter("runtime.dial_failures").inc();
        let policy = BackoffPolicy {
            base: self.config.dial_backoff,
            cap: self.config.dial_backoff_cap,
            max_attempts: self.config.dial_max_attempts,
            // A link healthy for a full suspicion window is genuinely
            // healthy; anything shorter may be one beat of a flap.
            probation_window: self.config.heartbeat_timeout,
        };
        let backoff = self
            .backoffs
            .entry(peer)
            .or_insert_with(|| Backoff::new(policy));
        match backoff.next_delay(&mut self.rng) {
            Some(delay) => {
                self.next_dial.insert(peer, Instant::now() + delay);
            }
            None => {
                backoff.reset();
                self.metrics.counter("runtime.dial_probations").inc();
                self.next_dial
                    .insert(peer, Instant::now() + self.config.dial_backoff_cap * 8);
            }
        }
    }

    /// Closes and forgets the connection to `peer` (if any), parking the
    /// reliable layer's undelivered frames for the replacement link.
    fn drop_link(&mut self, peer: MemberId) {
        if let Some(s) = self.writers.remove(&peer) {
            let _ = s.shutdown(Shutdown::Both);
            *self.shared.links_up.lock() = self.writers.keys().copied().collect();
            self.recorder
                .record(EventKind::Disconnect { peer: peer as u32 });
        }
        self.conn_ids.remove(&peer);
        self.last_seen.remove(&peer);
        self.reset_link(peer);
        if let Some(b) = self.backoffs.get_mut(&peer) {
            b.disconnected();
        }
    }
}
