//! Frame tagging for the runtime's control plane.
//!
//! Everything on the wire is a [`lhg_net::message::Message`] inside a
//! length-prefixed frame ([`lhg_net::codec`]). The `broadcast_id` carries a
//! tag in its upper bits that distinguishes control frames from application
//! data; the member id a control frame refers to sits in the low 32 bits.
//!
//! Application data ids come from [`lhg_net::fifo::fifo_id`] (origin id in
//! bits 32..64). Loopback clusters have tiny member ids, so bits 57+ are
//! never set by data traffic; [`crate::Cluster`] enforces the ceiling at
//! launch ([`MAX_MEMBERS`]).

use lhg_core::overlay::MemberId;

/// Tag bit of a handshake frame: the first frame a dialer sends, announcing
/// its member id so the acceptor can key the connection.
pub const HELLO_TAG: u64 = 1 << 57;
/// Tag bit of a point-to-point liveness probe. Never forwarded, never
/// deduplicated (the same id repeats every period).
pub const HEARTBEAT_TAG: u64 = 1 << 58;
/// Tag bit of a flooded crash announcement. One id per crashed member, so
/// announcements from independent detectors deduplicate into one wave.
pub const CRASH_TAG: u64 = 1 << 59;

const TAG_MASK: u64 = HELLO_TAG | HEARTBEAT_TAG | CRASH_TAG;
const MEMBER_MASK: u64 = u32::MAX as u64;

/// Largest member id representable in a tagged frame without colliding with
/// the tag bits (also bounds `fifo_id` origins well below bit 57).
pub const MAX_MEMBERS: u64 = 1 << 25;

/// What a received frame is, according to its tagged `broadcast_id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Handshake from the given dialer.
    Hello(MemberId),
    /// Liveness probe from the given member.
    Heartbeat(MemberId),
    /// Announcement that the given member crashed.
    Crash(MemberId),
    /// Application broadcast data.
    Data,
}

/// Classifies a `broadcast_id` into its [`FrameKind`].
#[must_use]
pub fn classify(broadcast_id: u64) -> FrameKind {
    let member = broadcast_id & MEMBER_MASK;
    match broadcast_id & TAG_MASK {
        HELLO_TAG => FrameKind::Hello(member),
        HEARTBEAT_TAG => FrameKind::Heartbeat(member),
        CRASH_TAG => FrameKind::Crash(member),
        _ => FrameKind::Data,
    }
}

/// Broadcast id of a handshake frame from `member`.
#[must_use]
pub fn hello_id(member: MemberId) -> u64 {
    debug_assert!(member < MAX_MEMBERS);
    HELLO_TAG | member
}

/// Broadcast id of a heartbeat from `member`.
#[must_use]
pub fn heartbeat_id(member: MemberId) -> u64 {
    debug_assert!(member < MAX_MEMBERS);
    HEARTBEAT_TAG | member
}

/// Broadcast id announcing that `member` crashed.
#[must_use]
pub fn crash_id(member: MemberId) -> u64 {
    debug_assert!(member < MAX_MEMBERS);
    CRASH_TAG | member
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_net::fifo::fifo_id;

    #[test]
    fn tags_round_trip_through_classify() {
        assert_eq!(classify(hello_id(7)), FrameKind::Hello(7));
        assert_eq!(classify(heartbeat_id(0)), FrameKind::Heartbeat(0));
        assert_eq!(classify(crash_id(11)), FrameKind::Crash(11));
    }

    #[test]
    fn fifo_data_ids_stay_untagged() {
        let id = fifo_id((MAX_MEMBERS - 1) as u32, u32::MAX);
        assert_eq!(classify(id), FrameKind::Data);
        assert_eq!(classify(0), FrameKind::Data);
    }

    #[test]
    fn distinct_members_get_distinct_control_ids() {
        assert_ne!(crash_id(1), crash_id(2));
        assert_ne!(crash_id(1), heartbeat_id(1));
        assert_ne!(heartbeat_id(1), hello_id(1));
    }
}
