//! Frame tagging for the runtime's control plane.
//!
//! Everything on the wire is a [`lhg_net::message::Message`] inside a
//! length-prefixed frame ([`lhg_net::codec`]). The `broadcast_id` carries a
//! tag in its upper bits that distinguishes control frames from application
//! data; the member id a control frame refers to sits in the low 25 bits,
//! and flooded control waves (crash, join) carry a 32-bit **wave nonce** in
//! bits 25..57 so every wave gets a fresh id.
//!
//! The nonce is what makes crash/join gossip safe to deduplicate forever:
//! a re-crash or re-join floods under a *new* id, so stale copies of an
//! old wave still circulating in socket buffers can never be mistaken for
//! news. (With fixed per-member ids, re-arming the dedup entry on each
//! membership flip let an old crash wave and an old join wave chase each
//! other through the mesh indefinitely — a churn livelock.)
//!
//! Application data ids come from [`lhg_net::fifo::fifo_id`] (origin id in
//! bits 32..64). Loopback clusters have tiny member ids, so bits 57+ are
//! never set by data traffic; [`crate::Cluster`] enforces the ceiling at
//! launch ([`MAX_MEMBERS`]).

use bytes::{BufMut, Bytes, BytesMut};
use lhg_byzantine::InstanceSummary;
use lhg_core::overlay::{DynamicOverlay, MemberId};
use lhg_core::Constraint;

pub use lhg_net::reliable::{
    decode_ack_payload, decode_summary_payload, encode_ack_payload, encode_summary_payload,
};

/// Tag bit of a handshake frame: the first frame a dialer sends, announcing
/// its member id so the acceptor can key the connection. The numeric values
/// of this and the other runtime tags are re-derived from
/// [`lhg_net::wirecost`], the canonical home of the class-tag bits, so
/// wire-cost accounting in `lhg-net` classifies runtime control traffic
/// without a dependency on this crate.
pub const HELLO_TAG: u64 = lhg_net::wirecost::HELLO_TAG;
/// Tag bit of a point-to-point liveness probe. Never forwarded, never
/// deduplicated (the same id repeats every period).
pub const HEARTBEAT_TAG: u64 = lhg_net::wirecost::HEARTBEAT_TAG;
/// Tag bit of a flooded crash announcement: the member in the low bits
/// crashed. Each detection floods under a fresh wave nonce; applying a
/// crash is idempotent, so concurrent detectors' waves coexist harmlessly.
pub const CRASH_TAG: u64 = lhg_net::wirecost::CRASH_TAG;
/// Tag bit of a flooded (re)join announcement: the member in the low bits
/// is (back) in the overlay and every replica must admit it.
pub const JOIN_TAG: u64 = lhg_net::wirecost::JOIN_TAG;
/// Tag bit of the membership-sync handshake. An empty payload is a request
/// (from a node that learned it was excommunicated); a non-empty payload is
/// the serving replica's snapshot ([`encode_membership`]).
pub const SYNC_TAG: u64 = lhg_net::wirecost::SYNC_TAG;
/// Tag bit of a point-to-point link-level ack (cumulative ack + selective
/// NACK list in the payload, see [`lhg_net::reliable`]). Never forwarded,
/// never deduplicated. The numeric value is [`lhg_net::reliable::ACK_TAG`]
/// so all engines share one tag space.
pub const ACK_TAG: u64 = lhg_net::reliable::ACK_TAG;
/// Tag bit of a point-to-point anti-entropy summary (advertisement of
/// recently-seen broadcast ids, or a pull request for missing ones — the
/// payload's mode byte distinguishes). Never forwarded, never deduplicated.
pub const SUMMARY_TAG: u64 = lhg_net::reliable::SUMMARY_TAG;
/// Tag bit of Byzantine broadcast gossip (Bracha SEND/ECHO/READY frames,
/// see [`lhg_byzantine::frame`]). Unlike the other tags, the remaining 56
/// bits are a content hash of the gossip frame, not a member id — flooded
/// and deduplicated like data, never re-originated. The numeric value is
/// [`lhg_byzantine::frame::BYZ_ID_TAG`] so all engines share one id space.
pub const BYZ_TAG: u64 = lhg_byzantine::frame::BYZ_ID_TAG;

const TAG_MASK: u64 =
    HELLO_TAG | HEARTBEAT_TAG | CRASH_TAG | JOIN_TAG | SYNC_TAG | ACK_TAG | SUMMARY_TAG | BYZ_TAG;

/// Largest member id representable in a tagged frame without colliding with
/// the wave-nonce bits (also bounds `fifo_id` origins below bit 56, the
/// Byzantine gossip tag).
pub const MAX_MEMBERS: u64 = 1 << 24;

const MEMBER_MASK: u64 = MAX_MEMBERS - 1;
/// Wave nonces sit between the member id and the tag bits: 32 bits wide,
/// occupying bits 24..56 (so the topmost nonce bit stays clear of
/// [`BYZ_TAG`] at bit 56).
const NONCE_SHIFT: u64 = 24;

/// What a received frame is, according to its tagged `broadcast_id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Handshake from the given dialer.
    Hello(MemberId),
    /// Liveness probe from the given member.
    Heartbeat(MemberId),
    /// Announcement that the given member crashed.
    Crash(MemberId),
    /// Flooded announcement that the given member (re)joined.
    Join(MemberId),
    /// Membership sync frame from the given member: request when the
    /// payload is empty, snapshot reply otherwise.
    Sync(MemberId),
    /// Link-level cumulative ack + NACK list from the given member.
    Ack(MemberId),
    /// Anti-entropy summary (advertisement or pull) from the given member.
    Summary(MemberId),
    /// Byzantine broadcast gossip (Bracha SEND/ECHO/READY). The witness is
    /// in the message's origin field and the instance in its byz extension.
    Byz,
    /// Application broadcast data.
    Data,
}

/// Classifies a `broadcast_id` into its [`FrameKind`].
#[must_use]
pub fn classify(broadcast_id: u64) -> FrameKind {
    let member = broadcast_id & MEMBER_MASK;
    match broadcast_id & TAG_MASK {
        HELLO_TAG => FrameKind::Hello(member),
        HEARTBEAT_TAG => FrameKind::Heartbeat(member),
        CRASH_TAG => FrameKind::Crash(member),
        JOIN_TAG => FrameKind::Join(member),
        SYNC_TAG => FrameKind::Sync(member),
        ACK_TAG => FrameKind::Ack(member),
        SUMMARY_TAG => FrameKind::Summary(member),
        BYZ_TAG => FrameKind::Byz,
        _ => FrameKind::Data,
    }
}

/// Broadcast id of a handshake frame from `member`.
#[must_use]
pub fn hello_id(member: MemberId) -> u64 {
    debug_assert!(member < MAX_MEMBERS);
    HELLO_TAG | member
}

/// Broadcast id of a heartbeat from `member`.
#[must_use]
pub fn heartbeat_id(member: MemberId) -> u64 {
    debug_assert!(member < MAX_MEMBERS);
    HEARTBEAT_TAG | member
}

/// Broadcast id of one crash-announcement wave for `member`. The `nonce`
/// makes the wave's id unique, so dedup state never needs re-arming: a
/// later re-crash floods under a different id.
#[must_use]
pub fn crash_id(member: MemberId, nonce: u32) -> u64 {
    debug_assert!(member < MAX_MEMBERS);
    CRASH_TAG | (u64::from(nonce) << NONCE_SHIFT) | member
}

/// Broadcast id of one (re)join-announcement wave for `member`; `nonce` as
/// in [`crash_id`].
#[must_use]
pub fn join_id(member: MemberId, nonce: u32) -> u64 {
    debug_assert!(member < MAX_MEMBERS);
    JOIN_TAG | (u64::from(nonce) << NONCE_SHIFT) | member
}

/// Broadcast id of a membership-sync frame sent by `member`.
#[must_use]
pub fn sync_id(member: MemberId) -> u64 {
    debug_assert!(member < MAX_MEMBERS);
    SYNC_TAG | member
}

/// Broadcast id of a link-level ack frame sent by `member`.
#[must_use]
pub fn ack_id(member: MemberId) -> u64 {
    debug_assert!(member < MAX_MEMBERS);
    ACK_TAG | member
}

/// Broadcast id of an anti-entropy summary frame sent by `member`.
#[must_use]
pub fn summary_id(member: MemberId) -> u64 {
    debug_assert!(member < MAX_MEMBERS);
    SUMMARY_TAG | member
}

/// `true` for ids whose tag marks runtime control traffic (as opposed to
/// application data from [`lhg_net::fifo::fifo_id`]).
#[must_use]
pub fn is_control_id(broadcast_id: u64) -> bool {
    broadcast_id & TAG_MASK != 0
}

/// Serializes an overlay's membership for a sync reply: constraint code,
/// k, member count, then the member ids **in the serving replica's order**
/// so [`lhg_core::overlay::DynamicOverlay::from_parts`] reproduces the
/// identical graph-position mapping.
#[must_use]
pub fn encode_membership(overlay: &DynamicOverlay) -> Bytes {
    let members = overlay.members();
    let mut buf = BytesMut::with_capacity(2 + 4 + members.len() * 8);
    buf.put_u8(match overlay.constraint() {
        Constraint::KTree => 0,
        Constraint::KDiamond => 1,
        Constraint::Jd => 2,
    });
    buf.put_u8(overlay.k() as u8);
    buf.put_u32(members.len() as u32);
    for &m in members {
        buf.put_u64(m);
    }
    buf.freeze()
}

/// Version byte of the SYNC snapshot's Bracha-summary extension. A legacy
/// snapshot is exactly the membership block ([`encode_membership`]) and
/// carries no byte here; an extended snapshot appends this byte plus an
/// [`lhg_byzantine::encode_summaries`] block.
pub const SYNC_SNAPSHOT_VERSION: u8 = 1;

/// A 32-bit crash/join wave nonce: the member's cluster-global life number
/// in the high 16 bits, its per-life wave sequence in the low 16. Lives
/// are allocated once per (re)join by the cluster, so nonces stay unique
/// across kill/rejoin cycles until the life counter itself wraps at
/// 2^16 — far beyond the dedup set's eviction horizon (see the
/// wave-nonce property tests).
#[must_use]
pub fn wave_nonce(life: u32, seq: u16) -> u32 {
    (life << 16) | u32::from(seq)
}

/// Serializes a full SYNC snapshot: the membership block, and — when the
/// serving node runs Byzantine broadcast and has per-instance state — a
/// versioned extension of its Bracha catch-up summaries. With no
/// summaries the encoding is **byte-identical** to [`encode_membership`],
/// so non-Byzantine peers and old nodes interoperate unchanged.
#[must_use]
pub fn encode_sync_snapshot(overlay: &DynamicOverlay, summaries: &[InstanceSummary]) -> Bytes {
    let membership = encode_membership(overlay);
    if summaries.is_empty() {
        return membership;
    }
    let body = lhg_byzantine::encode_summaries(summaries);
    let mut buf = BytesMut::with_capacity(membership.len() + 1 + body.len());
    buf.put_slice(&membership);
    buf.put_u8(SYNC_SNAPSHOT_VERSION);
    buf.put_slice(&body);
    buf.freeze()
}

/// Parses a SYNC snapshot: a bare membership block (legacy — empty
/// summary list) or a membership block followed by the versioned summary
/// extension. `None` on any malformation, never a panic.
#[must_use]
pub fn decode_sync_snapshot(
    payload: &Bytes,
) -> Option<(Constraint, usize, Vec<MemberId>, Vec<InstanceSummary>)> {
    let b = payload.as_ref();
    if b.len() < 6 {
        return None;
    }
    let count = u32::from_be_bytes(b[2..6].try_into().ok()?) as usize;
    let mlen = count.checked_mul(8).and_then(|m| m.checked_add(6))?;
    if b.len() < mlen {
        return None;
    }
    let membership = Bytes::copy_from_slice(&b[..mlen]);
    let (constraint, k, members) = decode_membership(&membership)?;
    let rest = &b[mlen..];
    let summaries = if rest.is_empty() {
        Vec::new()
    } else if rest[0] == SYNC_SNAPSHOT_VERSION {
        lhg_byzantine::decode_summaries(&rest[1..])?
    } else {
        return None;
    };
    Some((constraint, k, members, summaries))
}

/// Parses an [`encode_membership`] payload; `None` on any malformation.
#[must_use]
pub fn decode_membership(payload: &Bytes) -> Option<(Constraint, usize, Vec<MemberId>)> {
    let b = payload.as_ref();
    if b.len() < 6 {
        return None;
    }
    let constraint = match b[0] {
        0 => Constraint::KTree,
        1 => Constraint::KDiamond,
        2 => Constraint::Jd,
        _ => return None,
    };
    let k = b[1] as usize;
    let count = u32::from_be_bytes(b[2..6].try_into().ok()?) as usize;
    if b.len() != 6 + count * 8 {
        return None;
    }
    let members = (0..count)
        .map(|i| u64::from_be_bytes(b[6 + i * 8..14 + i * 8].try_into().unwrap()))
        .collect();
    Some((constraint, k, members))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_net::fifo::fifo_id;

    #[test]
    fn tags_round_trip_through_classify() {
        assert_eq!(classify(hello_id(7)), FrameKind::Hello(7));
        assert_eq!(classify(heartbeat_id(0)), FrameKind::Heartbeat(0));
        assert_eq!(classify(crash_id(11, 0)), FrameKind::Crash(11));
        assert_eq!(classify(join_id(5, 0)), FrameKind::Join(5));
        assert_eq!(classify(sync_id(3)), FrameKind::Sync(3));
        assert_eq!(classify(ack_id(9)), FrameKind::Ack(9));
        assert_eq!(classify(summary_id(2)), FrameKind::Summary(2));
    }

    #[test]
    fn fifo_data_ids_stay_untagged() {
        let id = fifo_id((MAX_MEMBERS - 1) as u32, u32::MAX);
        assert_eq!(classify(id), FrameKind::Data);
        assert_eq!(classify(0), FrameKind::Data);
        assert!(!is_control_id(id));
        assert!(is_control_id(join_id(0, 0)));
        assert!(is_control_id(crash_id(0, 0)));
    }

    #[test]
    fn byz_gossip_ids_classify_as_byz() {
        use lhg_byzantine::frame::{gossip_frame_id, GossipKind};
        use lhg_net::message::ByzTag;

        let id = gossip_frame_id(
            GossipKind::Echo,
            3,
            ByzTag {
                origin: 1,
                nonce: 0x1000,
            },
            0xabcd,
        );
        assert_eq!(classify(id), FrameKind::Byz);
        assert!(is_control_id(id));
        // Byz ids and wave ids can never collide: the full 32-bit wave
        // nonce tops out at bit 55, below BYZ_TAG.
        assert_eq!(classify(crash_id(4, u32::MAX)), FrameKind::Crash(4));
        assert_eq!(classify(join_id(4, u32::MAX)), FrameKind::Join(4));
        // Nor can max-member fifo data ids reach bit 56.
        assert_ne!(
            classify(fifo_id((MAX_MEMBERS - 1) as u32, u32::MAX)),
            FrameKind::Byz
        );
    }

    #[test]
    fn distinct_members_get_distinct_control_ids() {
        assert_ne!(crash_id(1, 0), crash_id(2, 0));
        assert_ne!(crash_id(1, 0), heartbeat_id(1));
        assert_ne!(heartbeat_id(1), hello_id(1));
        assert_ne!(join_id(1, 0), crash_id(1, 0));
        assert_ne!(sync_id(1), join_id(1, 0));
        assert_ne!(ack_id(1), sync_id(1));
        assert_ne!(summary_id(1), ack_id(1));
        assert_ne!(ack_id(1), ack_id(2));
    }

    #[test]
    fn wave_nonces_make_fresh_ids_that_classify_identically() {
        // Distinct waves for the same member never collide (stale-copy
        // immunity) and never leak into the member or tag bits.
        assert_ne!(crash_id(4, 1), crash_id(4, 2));
        assert_ne!(join_id(4, 1), join_id(4, 2));
        assert_eq!(classify(crash_id(4, u32::MAX)), FrameKind::Crash(4));
        assert_eq!(
            classify(join_id((MAX_MEMBERS - 1) as MemberId, u32::MAX)),
            FrameKind::Join((MAX_MEMBERS - 1) as MemberId)
        );
    }

    #[test]
    fn membership_codec_round_trips() {
        use lhg_core::overlay::DynamicOverlay;
        use lhg_core::Constraint;

        let mut o = DynamicOverlay::bootstrap(Constraint::KDiamond, 12, 3).unwrap();
        let _ = o.crash_many(&[2, 9]).unwrap();
        let payload = encode_membership(&o);
        let (constraint, k, members) = decode_membership(&payload).unwrap();
        assert_eq!(constraint, Constraint::KDiamond);
        assert_eq!(k, 3);
        assert_eq!(members, o.members());
        let replica = DynamicOverlay::from_parts(constraint, k, members).unwrap();
        assert_eq!(replica.links(), o.links());
    }

    #[test]
    fn membership_decode_rejects_malformed_payloads() {
        use bytes::Bytes;

        assert!(decode_membership(&Bytes::new()).is_none());
        assert!(decode_membership(&Bytes::from_static(&[9, 3, 0, 0, 0, 0])).is_none());
        // Truncated member list.
        assert!(decode_membership(&Bytes::from_static(&[0, 3, 0, 0, 0, 2, 0, 0])).is_none());
    }

    #[test]
    fn sync_snapshot_without_summaries_is_byte_identical_to_legacy() {
        use lhg_core::overlay::DynamicOverlay;
        use lhg_core::Constraint;

        let o = DynamicOverlay::bootstrap(Constraint::KTree, 10, 3).unwrap();
        let snap = encode_sync_snapshot(&o, &[]);
        assert_eq!(snap, encode_membership(&o), "non-byz wire unchanged");
        // And a legacy membership-only payload decodes with no summaries.
        let (constraint, k, members, summaries) = decode_sync_snapshot(&snap).unwrap();
        assert_eq!((constraint, k), (Constraint::KTree, 3));
        assert_eq!(members, o.members());
        assert!(summaries.is_empty());
    }

    #[test]
    fn sync_snapshot_round_trips_with_summaries() {
        use lhg_byzantine::{digest, InstanceSummary, Phase};
        use lhg_core::overlay::DynamicOverlay;
        use lhg_core::Constraint;
        use lhg_net::message::ByzTag;

        let o = DynamicOverlay::bootstrap(Constraint::KDiamond, 12, 3).unwrap();
        let items = vec![
            InstanceSummary {
                tag: ByzTag {
                    origin: 2,
                    nonce: 7,
                },
                phase: Phase::Delivered,
                digest: digest(b"v"),
                payload: Bytes::from_static(b"v"),
            },
            InstanceSummary {
                tag: ByzTag {
                    origin: 5,
                    nonce: 9,
                },
                phase: Phase::Readied,
                digest: 11,
                payload: Bytes::new(),
            },
        ];
        let snap = encode_sync_snapshot(&o, &items);
        let (constraint, k, members, summaries) = decode_sync_snapshot(&snap).unwrap();
        assert_eq!((constraint, k), (Constraint::KDiamond, 3));
        assert_eq!(members, o.members());
        assert_eq!(summaries, items);
        // The membership prefix still decodes standalone for legacy
        // readers that check exact length — by failing cleanly, not by
        // mis-parsing.
        assert!(decode_membership(&snap).is_none());
    }

    #[test]
    fn sync_snapshot_rejects_malformed_extensions() {
        use lhg_core::overlay::DynamicOverlay;
        use lhg_core::Constraint;

        let o = DynamicOverlay::bootstrap(Constraint::KTree, 8, 3).unwrap();
        let good = encode_membership(&o);
        // Unknown version byte.
        let mut bad = good.to_vec();
        bad.push(9);
        assert!(decode_sync_snapshot(&Bytes::from(bad)).is_none());
        // Version byte with truncated summary block.
        let mut bad = good.to_vec();
        bad.push(SYNC_SNAPSHOT_VERSION);
        bad.extend_from_slice(&[0, 0, 0]);
        assert!(decode_sync_snapshot(&Bytes::from(bad)).is_none());
        assert!(decode_sync_snapshot(&Bytes::new()).is_none());
    }

    mod wave_nonce_props {
        //! The wave-nonce life allocation contract: `life << 16 | seq`
        //! stays globally unique across repeated kill/rejoin cycles of the
        //! same member — every rejoin gets a fresh cluster-global life, so
        //! no two lives ever reuse a nonce — up to the documented 16-bit
        //! life horizon, where the space wraps (pinned below).

        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Distinct (life, seq) pairs within the 16-bit life horizon
            /// map to distinct nonces: no wave of any life collides with
            /// any wave of any other life.
            #[test]
            fn nonces_unique_across_lives_and_seqs(
                life_a in 0u32..(1 << 16),
                life_b in 0u32..(1 << 16),
                seq_a in any::<u16>(),
                seq_b in any::<u16>(),
            ) {
                if (life_a, seq_a) != (life_b, seq_b) {
                    prop_assert_ne!(wave_nonce(life_a, seq_a), wave_nonce(life_b, seq_b));
                }
            }

            /// A rejoin (life+1) never reuses any nonce of the previous
            /// life, whatever the two wave sequences were.
            #[test]
            fn rejoin_life_never_reuses_prior_waves(
                life in 0u32..((1 << 16) - 1),
                seq_old in any::<u16>(),
                seq_new in any::<u16>(),
            ) {
                prop_assert_ne!(
                    wave_nonce(life, seq_old),
                    wave_nonce(life + 1, seq_new)
                );
            }

            /// The documented wraparound edge: lives exactly 2^16 apart
            /// alias (the shift drops the high bits). This is the bounded
            /// uniqueness window — 65536 lives of one cluster — far beyond
            /// the seen-set's 2^20-frame eviction horizon, so an aliased
            /// stale wave would have been evicted long before.
            #[test]
            fn life_counter_wraps_at_the_16_bit_edge(
                life in 0u32..(1 << 16),
                seq in any::<u16>(),
            ) {
                prop_assert_eq!(
                    wave_nonce(life, seq),
                    wave_nonce(life.wrapping_add(1 << 16), seq)
                );
                // And the crash/join ids built from aliased nonces collide
                // too — documenting that the wire gives no extra slack.
                prop_assert_eq!(
                    crash_id(3, wave_nonce(life, seq)),
                    crash_id(3, wave_nonce(life.wrapping_add(1 << 16), seq))
                );
            }
        }
    }

    mod reliable_frames {
        //! Property tests for the reliable-layer frames: ack/NACK and
        //! anti-entropy summary payloads must survive the payload codec,
        //! the full [`Message`] frame codec, and classification — and
        //! legacy frames (no extension block) must keep decoding as
        //! before, since a reliable node can receive them from a peer
        //! that never stamped a link sequence number.

        use super::*;
        use lhg_net::message::Message;
        use lhg_net::reliable::{MAX_NACKS, MAX_SUMMARY_IDS};
        use proptest::prelude::*;

        fn arb_member() -> impl Strategy<Value = MemberId> {
            0..MAX_MEMBERS
        }

        proptest! {
            #[test]
            fn ack_payloads_round_trip(
                member in arb_member(),
                cum in any::<u64>(),
                nacks in proptest::collection::vec(any::<u64>(), 0..MAX_NACKS),
            ) {
                let msg = Message::new(
                    ack_id(member),
                    member as u32,
                    encode_ack_payload(cum, &nacks),
                );
                let decoded = Message::decode(msg.encode()).expect("frame decodes");
                prop_assert_eq!(classify(decoded.broadcast_id), FrameKind::Ack(member));
                let (got_cum, got_nacks) =
                    decode_ack_payload(decoded.payload).expect("payload decodes");
                prop_assert_eq!(got_cum, cum);
                prop_assert_eq!(got_nacks, nacks);
            }

            #[test]
            fn summary_payloads_round_trip(
                member in arb_member(),
                pull in any::<bool>(),
                ids in proptest::collection::vec(any::<u64>(), 0..MAX_SUMMARY_IDS),
            ) {
                let msg = Message::new(
                    summary_id(member),
                    member as u32,
                    encode_summary_payload(pull, &ids),
                );
                let decoded = Message::decode(msg.encode()).expect("frame decodes");
                prop_assert_eq!(classify(decoded.broadcast_id), FrameKind::Summary(member));
                let (got_pull, got_ids) =
                    decode_summary_payload(decoded.payload).expect("payload decodes");
                prop_assert_eq!(got_pull, pull);
                prop_assert_eq!(got_ids, ids);
            }

            /// Oversized NACK / id lists are truncated by the encoder, not
            /// rejected by the decoder — a sender with a huge hole list
            /// still produces a valid frame carrying the head of it.
            #[test]
            fn oversized_lists_encode_to_valid_truncated_frames(
                cum in any::<u64>(),
                extra in 1usize..40,
            ) {
                let nacks: Vec<u64> = (0..(MAX_NACKS + extra) as u64).collect();
                let (got_cum, got_nacks) =
                    decode_ack_payload(encode_ack_payload(cum, &nacks)).expect("decodes");
                prop_assert_eq!(got_cum, cum);
                prop_assert_eq!(got_nacks.as_slice(), &nacks[..MAX_NACKS]);

                let ids: Vec<u64> = (0..(MAX_SUMMARY_IDS + extra) as u64).collect();
                let (_, got_ids) =
                    decode_summary_payload(encode_summary_payload(true, &ids)).expect("decodes");
                prop_assert_eq!(got_ids.as_slice(), &ids[..MAX_SUMMARY_IDS]);
            }

            /// A pre-reliable peer's frame — no extension block at all —
            /// must decode as legacy (`link_seq = None`) and classify by
            /// tag exactly as a stamped frame would.
            #[test]
            fn legacy_unstamped_frames_classify_unchanged(
                member in arb_member(),
                cum in any::<u64>(),
            ) {
                let msg = Message::new(
                    heartbeat_id(member),
                    member as u32,
                    encode_ack_payload(cum, &[]),
                );
                // `Message::new` emits no extension when trace and
                // link_seq are both unset, which is byte-identical to the
                // legacy encoding.
                prop_assert!(msg.trace.is_none() && msg.link_seq.is_none());
                let decoded = Message::decode(msg.encode()).expect("legacy frame decodes");
                prop_assert_eq!(decoded.link_seq, None);
                prop_assert_eq!(
                    classify(decoded.broadcast_id),
                    FrameKind::Heartbeat(member)
                );

                // And a stamped copy of the same frame still classifies
                // identically: the link seq rides the extension block,
                // never the broadcast id.
                let mut stamped = msg;
                stamped.link_seq = Some(7);
                let decoded = Message::decode(stamped.encode()).expect("stamped frame decodes");
                prop_assert_eq!(decoded.link_seq, Some(7));
                prop_assert_eq!(
                    classify(decoded.broadcast_id),
                    FrameKind::Heartbeat(member)
                );
            }

            /// Malformed reliable payloads never panic the decoders.
            #[test]
            fn malformed_payloads_are_rejected_not_panicked(
                raw in proptest::collection::vec(any::<u8>(), 0..64),
            ) {
                let bytes = Bytes::from(raw);
                // Either decode succeeds with consistent lengths or
                // returns None — both fine; panics are the only failure.
                if let Some((_, nacks)) = decode_ack_payload(bytes.clone()) {
                    prop_assert!(nacks.len() <= MAX_NACKS);
                }
                if let Some((_, ids)) = decode_summary_payload(bytes) {
                    prop_assert!(ids.len() <= MAX_SUMMARY_IDS);
                }
            }
        }
    }
}
