//! Multi-trial experiment runner and aggregate statistics.
//!
//! Experiments E9–E11 sweep topologies × failure intensities × protocols;
//! this module runs the trials (seeded, reproducible) and aggregates
//! latency, message cost and reliability.

use lhg_graph::{CsrGraph, Graph, NodeId};

use crate::engine::{run_broadcast, FloodOutcome, Protocol};
use crate::failure::{
    adversarial_link_failures, adversarial_node_failures, random_link_failures,
    random_node_failures, FailurePlan,
};

/// How failures are injected per trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureMode {
    /// No failures.
    None,
    /// `count` crash-from-start nodes, fresh random choice per trial.
    RandomNodes {
        /// Nodes crashed per trial.
        count: usize,
    },
    /// `count` failed links, fresh random choice per trial.
    RandomLinks {
        /// Links failed per trial.
        count: usize,
    },
    /// Up to `count` crash-from-start nodes drawn from a minimum vertex cut
    /// (the same adversarial plan every trial; falls back to no failures on
    /// complete graphs, which have no cut).
    AdversarialNodes {
        /// Nodes crashed per trial.
        count: usize,
    },
    /// Up to `count` failed links drawn from a minimum edge cut.
    AdversarialLinks {
        /// Links failed per trial.
        count: usize,
    },
}

/// Aggregates over a batch of broadcast trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialStats {
    /// Trials run.
    pub trials: usize,
    /// Mean of the last informing round over trials.
    pub mean_rounds: f64,
    /// Maximum last informing round.
    pub max_rounds: u32,
    /// Mean messages sent.
    pub mean_messages: f64,
    /// Mean coverage of correct nodes.
    pub mean_coverage: f64,
    /// Fraction of trials achieving full coverage (reliability).
    pub reliability: f64,
}

impl TrialStats {
    fn from_outcomes(outcomes: &[FloodOutcome]) -> Self {
        let trials = outcomes.len();
        assert!(trials > 0, "at least one trial required");
        let mut rounds_sum = 0u64;
        let mut max_rounds = 0u32;
        let mut msg_sum = 0u64;
        let mut coverage_sum = 0.0;
        let mut full = 0usize;
        for o in outcomes {
            let r = o.last_informed_round();
            rounds_sum += u64::from(r);
            max_rounds = max_rounds.max(r);
            msg_sum += o.messages_sent;
            coverage_sum += o.coverage();
            full += usize::from(o.full_coverage());
        }
        TrialStats {
            trials,
            mean_rounds: rounds_sum as f64 / trials as f64,
            max_rounds,
            mean_messages: msg_sum as f64 / trials as f64,
            mean_coverage: coverage_sum / trials as f64,
            reliability: full as f64 / trials as f64,
        }
    }
}

/// Runs `trials` broadcasts of `protocol` from node 0 over `graph`, with
/// failures per `mode`, base seed `seed` (trial t uses `seed + t`).
///
/// # Panics
///
/// Panics if `trials == 0` or the graph is empty.
#[must_use]
pub fn run_trials(
    graph: &Graph,
    protocol: Protocol,
    mode: FailureMode,
    trials: usize,
    seed: u64,
) -> TrialStats {
    assert!(trials > 0, "at least one trial required");
    assert!(graph.node_count() > 0, "graph must be nonempty");
    let topology = CsrGraph::from_graph(graph);
    let origin = NodeId(0);
    let outcomes: Vec<FloodOutcome> = (0..trials)
        .map(|t| {
            let trial_seed = seed.wrapping_add(t as u64);
            let plan = match mode {
                FailureMode::None => FailurePlan::none(),
                FailureMode::RandomNodes { count } => {
                    random_node_failures(graph, count, origin, trial_seed)
                }
                FailureMode::RandomLinks { count } => {
                    random_link_failures(graph, count, trial_seed)
                }
                FailureMode::AdversarialNodes { count } => {
                    adversarial_node_failures(graph, count, origin)
                        .unwrap_or_else(FailurePlan::none)
                }
                FailureMode::AdversarialLinks { count } => {
                    adversarial_link_failures(graph, count).unwrap_or_else(FailurePlan::none)
                }
            };
            run_broadcast(&topology, origin, &plan, protocol, trial_seed)
        })
        .collect();
    TrialStats::from_outcomes(&outcomes)
}

/// Runs one broadcast under an explicit plan (adversarial experiments).
#[must_use]
pub fn run_with_plan(
    graph: &Graph,
    protocol: Protocol,
    plan: &FailurePlan,
    seed: u64,
) -> FloodOutcome {
    let topology = CsrGraph::from_graph(graph);
    run_broadcast(&topology, NodeId(0), plan, protocol, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    #[test]
    fn failure_free_flooding_is_fully_reliable() {
        let g = cycle(16);
        let s = run_trials(&g, Protocol::Flood, FailureMode::None, 5, 1);
        assert_eq!(s.reliability, 1.0);
        assert_eq!(s.mean_coverage, 1.0);
        assert_eq!(s.mean_rounds, 8.0);
        assert_eq!(s.max_rounds, 8);
        assert_eq!(s.trials, 5);
    }

    #[test]
    fn one_random_failure_on_cycle_keeps_reliability() {
        let g = cycle(12);
        let s = run_trials(
            &g,
            Protocol::Flood,
            FailureMode::RandomNodes { count: 1 },
            20,
            3,
        );
        assert_eq!(s.reliability, 1.0, "2-connected tolerates 1 crash");
    }

    #[test]
    fn two_random_failures_on_cycle_break_reliability_sometimes() {
        let g = cycle(12);
        let s = run_trials(
            &g,
            Protocol::Flood,
            FailureMode::RandomNodes { count: 2 },
            40,
            3,
        );
        assert!(s.reliability < 1.0, "two crashes can split a cycle");
        assert!(s.reliability > 0.0, "but not always");
        assert!(s.mean_coverage > 0.5);
    }

    #[test]
    fn link_failures_mode_works() {
        let g = cycle(10);
        let s = run_trials(
            &g,
            Protocol::Flood,
            FailureMode::RandomLinks { count: 1 },
            10,
            7,
        );
        assert_eq!(s.reliability, 1.0, "2-edge-connected tolerates 1 link loss");
        let s2 = run_trials(
            &g,
            Protocol::Flood,
            FailureMode::RandomLinks { count: 2 },
            40,
            7,
        );
        assert!(s2.reliability < 1.0);
    }

    #[test]
    fn stats_are_reproducible() {
        let g = cycle(14);
        let a = run_trials(
            &g,
            Protocol::Flood,
            FailureMode::RandomNodes { count: 2 },
            10,
            9,
        );
        let b = run_trials(
            &g,
            Protocol::Flood,
            FailureMode::RandomNodes { count: 2 },
            10,
            9,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn adversarial_modes_track_the_connectivity_threshold() {
        let g = cycle(12);
        // One cut node (κ − 1): always survives.
        let s = run_trials(
            &g,
            Protocol::Flood,
            FailureMode::AdversarialNodes { count: 1 },
            5,
            0,
        );
        assert_eq!(s.reliability, 1.0);
        // The whole 2-node cut: always splits.
        let s = run_trials(
            &g,
            Protocol::Flood,
            FailureMode::AdversarialNodes { count: 2 },
            5,
            0,
        );
        assert_eq!(s.reliability, 0.0);
        // Same on links.
        let s = run_trials(
            &g,
            Protocol::Flood,
            FailureMode::AdversarialLinks { count: 1 },
            5,
            0,
        );
        assert_eq!(s.reliability, 1.0);
        let s = run_trials(
            &g,
            Protocol::Flood,
            FailureMode::AdversarialLinks { count: 2 },
            5,
            0,
        );
        assert_eq!(s.reliability, 0.0);
    }

    #[test]
    fn adversarial_mode_on_complete_graph_degrades_to_none() {
        let mut g = Graph::with_nodes(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        let s = run_trials(
            &g,
            Protocol::Flood,
            FailureMode::AdversarialNodes { count: 3 },
            3,
            0,
        );
        assert_eq!(s.reliability, 1.0, "no vertex cut exists in K_5");
    }

    #[test]
    fn run_with_plan_matches_engine() {
        let g = cycle(8);
        let mut plan = FailurePlan::none();
        plan.crash_node(NodeId(4), 0);
        let out = run_with_plan(&g, Protocol::Flood, &plan, 0);
        assert!(out.full_coverage());
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let g = cycle(4);
        let _ = run_trials(&g, Protocol::Flood, FailureMode::None, 0, 0);
    }
}
