//! Failure plans: which nodes crash (and when) and which links are down.
//!
//! The LHG guarantee under test: with at most k−1 node or link failures,
//! deterministic flooding still reaches every correct process. Plans are
//! built either randomly (seeded) or *adversarially* from an actual minimum
//! cut of the topology — the worst case the paper's k-connectivity
//! argument must survive.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use lhg_graph::connectivity::{min_edge_cut, min_vertex_cut};
use lhg_graph::{Edge, Graph, NodeId};

/// A set of node crashes (each with the round it takes effect) and link
/// failures (down for the whole run).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailurePlan {
    crashed_from: BTreeMap<NodeId, u32>,
    failed_links: BTreeSet<Edge>,
}

impl FailurePlan {
    /// A plan with no failures.
    #[must_use]
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Crashes `node` from `round` onward (0 = crashed before the run).
    /// The earliest round wins if called twice.
    pub fn crash_node(&mut self, node: NodeId, round: u32) -> &mut Self {
        self.crashed_from
            .entry(node)
            .and_modify(|r| *r = (*r).min(round))
            .or_insert(round);
        self
    }

    /// Fails `link` for the whole run.
    pub fn fail_link(&mut self, link: Edge) -> &mut Self {
        self.failed_links.insert(link);
        self
    }

    /// Returns `true` if `node` is crashed at `round`.
    #[must_use]
    pub fn is_crashed(&self, node: NodeId, round: u32) -> bool {
        self.crashed_from.get(&node).is_some_and(|&r| round >= r)
    }

    /// Returns `true` if `node` crashes at some point during the run.
    #[must_use]
    pub fn ever_crashes(&self, node: NodeId) -> bool {
        self.crashed_from.contains_key(&node)
    }

    /// Returns `true` if `link` is failed.
    #[must_use]
    pub fn is_link_failed(&self, link: Edge) -> bool {
        self.failed_links.contains(&link)
    }

    /// Number of nodes that crash at any point.
    #[must_use]
    pub fn crashed_count(&self) -> usize {
        self.crashed_from.len()
    }

    /// Number of failed links.
    #[must_use]
    pub fn failed_link_count(&self) -> usize {
        self.failed_links.len()
    }

    /// Iterator over crashed nodes and their crash rounds.
    pub fn crashes(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.crashed_from.iter().map(|(&v, &r)| (v, r))
    }
}

/// Crashes `count` random nodes (≠ `protect`) from round 0.
///
/// # Panics
///
/// Panics if fewer than `count` candidate nodes exist.
#[must_use]
pub fn random_node_failures(g: &Graph, count: usize, protect: NodeId, seed: u64) -> FailurePlan {
    let mut candidates: Vec<NodeId> = g.nodes().filter(|&v| v != protect).collect();
    assert!(candidates.len() >= count, "not enough nodes to crash");
    let mut rng = StdRng::seed_from_u64(seed);
    candidates.shuffle(&mut rng);
    let mut plan = FailurePlan::none();
    for &v in candidates.iter().take(count) {
        plan.crash_node(v, 0);
    }
    plan
}

/// Fails `count` random links from round 0.
///
/// # Panics
///
/// Panics if the graph has fewer than `count` links.
#[must_use]
pub fn random_link_failures(g: &Graph, count: usize, seed: u64) -> FailurePlan {
    let mut links: Vec<Edge> = g.edges().collect();
    assert!(links.len() >= count, "not enough links to fail");
    let mut rng = StdRng::seed_from_u64(seed);
    links.shuffle(&mut rng);
    let mut plan = FailurePlan::none();
    for &e in links.iter().take(count) {
        plan.fail_link(e);
    }
    plan
}

/// Crashes up to `count` nodes taken from a **minimum vertex cut** of `g`
/// (skipping `protect`): the adversarial choice. With `count < κ(G)` the
/// graph provably stays connected; with `count ≥ κ(G)` the whole cut falls
/// and flooding is expected to miss nodes.
///
/// Returns `None` if `g` has no vertex cut (complete graphs).
#[must_use]
pub fn adversarial_node_failures(g: &Graph, count: usize, protect: NodeId) -> Option<FailurePlan> {
    let cut = min_vertex_cut(g)?;
    let mut plan = FailurePlan::none();
    for v in cut.into_iter().filter(|&v| v != protect).take(count) {
        plan.crash_node(v, 0);
    }
    Some(plan)
}

/// Fails up to `count` links taken from a **minimum edge cut** of `g`.
///
/// Returns `None` for graphs with fewer than two nodes.
#[must_use]
pub fn adversarial_link_failures(g: &Graph, count: usize) -> Option<FailurePlan> {
    let cut = min_edge_cut(g)?;
    let mut plan = FailurePlan::none();
    for e in cut.into_iter().take(count) {
        plan.fail_link(e);
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    #[test]
    fn empty_plan_has_no_failures() {
        let p = FailurePlan::none();
        assert!(!p.is_crashed(NodeId(0), 100));
        assert!(!p.is_link_failed(Edge::new(NodeId(0), NodeId(1))));
        assert_eq!(p.crashed_count(), 0);
        assert_eq!(p.failed_link_count(), 0);
    }

    #[test]
    fn crash_takes_effect_at_round() {
        let mut p = FailurePlan::none();
        p.crash_node(NodeId(3), 5);
        assert!(!p.is_crashed(NodeId(3), 4));
        assert!(p.is_crashed(NodeId(3), 5));
        assert!(p.is_crashed(NodeId(3), 9));
        assert!(p.ever_crashes(NodeId(3)));
        assert!(!p.ever_crashes(NodeId(2)));
    }

    #[test]
    fn earliest_crash_round_wins() {
        let mut p = FailurePlan::none();
        p.crash_node(NodeId(1), 7)
            .crash_node(NodeId(1), 3)
            .crash_node(NodeId(1), 9);
        assert!(!p.is_crashed(NodeId(1), 2));
        assert!(p.is_crashed(NodeId(1), 3));
        assert_eq!(p.crashed_count(), 1);
    }

    #[test]
    fn random_node_failures_respect_protect_and_count() {
        let g = cycle(10);
        for seed in 0..5 {
            let p = random_node_failures(&g, 3, NodeId(0), seed);
            assert_eq!(p.crashed_count(), 3, "seed {seed}");
            assert!(!p.ever_crashes(NodeId(0)), "seed {seed}");
        }
    }

    #[test]
    fn random_link_failures_count() {
        let g = cycle(8);
        let p = random_link_failures(&g, 2, 1);
        assert_eq!(p.failed_link_count(), 2);
    }

    #[test]
    fn random_plans_are_reproducible() {
        let g = cycle(12);
        assert_eq!(
            random_node_failures(&g, 4, NodeId(0), 9),
            random_node_failures(&g, 4, NodeId(0), 9)
        );
        assert_ne!(
            random_node_failures(&g, 4, NodeId(0), 9),
            random_node_failures(&g, 4, NodeId(0), 10)
        );
    }

    #[test]
    fn adversarial_node_failures_use_the_cut() {
        let g = cycle(8);
        let p = adversarial_node_failures(&g, 1, NodeId(0)).unwrap();
        assert_eq!(p.crashed_count(), 1);
        // With 2 failures (= κ) the cycle splits.
        let p2 = adversarial_node_failures(&g, 2, NodeId(0)).unwrap();
        assert_eq!(p2.crashed_count(), 2);
    }

    #[test]
    fn adversarial_link_failures_use_the_cut() {
        let g = cycle(6);
        let p = adversarial_link_failures(&g, 2).unwrap();
        assert_eq!(p.failed_link_count(), 2);
    }

    #[test]
    #[should_panic(expected = "not enough nodes")]
    fn too_many_crashes_panics() {
        let g = cycle(4);
        let _ = random_node_failures(&g, 4, NodeId(0), 0);
    }
}
