//! Multi-broadcast workloads: sweeping origins and aggregating latency
//! distributions.
//!
//! A deployed overlay does not flood once from node 0 — every process
//! originates broadcasts. This module runs an all-origins (or strided)
//! sweep and reports the latency distribution, tying the flooding behavior
//! back to the graph theory: failure-free flooding from `v` takes exactly
//! `ecc(v)` rounds, so the sweep's min/max equal the topology's
//! radius/diameter.

use lhg_graph::{CsrGraph, Graph, NodeId};

use crate::engine::{run_broadcast, FloodOutcome, Protocol};
use crate::failure::FailurePlan;

/// Aggregate over an origin sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OriginSweep {
    /// Per-origin completion rounds (index = origin id / stride position).
    pub rounds: Vec<u32>,
    /// Per-origin message counts.
    pub messages: Vec<u64>,
    /// Number of origins that achieved full coverage.
    pub fully_covered: usize,
}

impl OriginSweep {
    /// Fastest origin's completion rounds (the topology's radius when the
    /// sweep is exhaustive and failure-free).
    #[must_use]
    pub fn min_rounds(&self) -> u32 {
        self.rounds.iter().copied().min().unwrap_or(0)
    }

    /// Slowest origin's completion rounds (the diameter, likewise).
    #[must_use]
    pub fn max_rounds(&self) -> u32 {
        self.rounds.iter().copied().max().unwrap_or(0)
    }

    /// Mean completion rounds.
    #[must_use]
    pub fn mean_rounds(&self) -> f64 {
        if self.rounds.is_empty() {
            0.0
        } else {
            self.rounds.iter().map(|&r| f64::from(r)).sum::<f64>() / self.rounds.len() as f64
        }
    }

    /// The `q`-quantile of completion rounds (nearest-rank; `q ∈ [0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if the sweep is empty or `q` is out of range.
    #[must_use]
    pub fn rounds_quantile(&self, q: f64) -> u32 {
        assert!(!self.rounds.is_empty(), "empty sweep");
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let mut sorted = self.rounds.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// Floods once from every `stride`-th origin under `plan` and aggregates.
///
/// # Panics
///
/// Panics if `stride == 0`, the graph is empty, or an origin is crashed at
/// round 0 under `plan` (pick a plan that spares the swept origins).
#[must_use]
pub fn origin_sweep(
    graph: &Graph,
    protocol: Protocol,
    plan: &FailurePlan,
    stride: usize,
    seed: u64,
) -> OriginSweep {
    assert!(stride > 0, "stride must be positive");
    assert!(graph.node_count() > 0, "graph must be nonempty");
    let topology = CsrGraph::from_graph(graph);
    let mut rounds = Vec::new();
    let mut messages = Vec::new();
    let mut fully_covered = 0;
    let mut origin = 0;
    while origin < graph.node_count() {
        let out: FloodOutcome = run_broadcast(&topology, NodeId(origin), plan, protocol, seed);
        rounds.push(out.last_informed_round());
        messages.push(out.messages_sent);
        fully_covered += usize::from(out.full_coverage());
        origin += stride;
    }
    OriginSweep {
        rounds,
        messages,
        fully_covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_graph::paths::{diameter, radius};

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i - 1), NodeId(i));
        }
        g
    }

    #[test]
    fn sweep_extrema_equal_radius_and_diameter() {
        for g in [cycle(9), path(7)] {
            let sweep = origin_sweep(&g, Protocol::Flood, &FailurePlan::none(), 1, 0);
            assert_eq!(sweep.min_rounds(), radius(&g).unwrap(), "{g:?}");
            assert_eq!(sweep.max_rounds(), diameter(&g).unwrap(), "{g:?}");
            assert_eq!(sweep.fully_covered, g.node_count());
        }
    }

    #[test]
    fn message_cost_is_origin_independent_without_failures() {
        let g = cycle(10);
        let sweep = origin_sweep(&g, Protocol::Flood, &FailurePlan::none(), 1, 0);
        assert!(
            sweep.messages.windows(2).all(|w| w[0] == w[1]),
            "{:?}",
            sweep.messages
        );
    }

    #[test]
    fn quantiles_are_ordered() {
        let g = path(12);
        let sweep = origin_sweep(&g, Protocol::Flood, &FailurePlan::none(), 1, 0);
        let q50 = sweep.rounds_quantile(0.5);
        let q90 = sweep.rounds_quantile(0.9);
        let q100 = sweep.rounds_quantile(1.0);
        assert!(q50 <= q90 && q90 <= q100);
        assert_eq!(q100, sweep.max_rounds());
        assert!((sweep.mean_rounds() - 8.5) < 12.0);
    }

    #[test]
    fn stride_reduces_the_sample() {
        let g = cycle(12);
        let full = origin_sweep(&g, Protocol::Flood, &FailurePlan::none(), 1, 0);
        let half = origin_sweep(&g, Protocol::Flood, &FailurePlan::none(), 2, 0);
        assert_eq!(full.rounds.len(), 12);
        assert_eq!(half.rounds.len(), 6);
    }

    #[test]
    fn sweep_under_failures_counts_coverage() {
        // Path 0-..-5 with the middle node 3 crashed: every live origin
        // reaches only its own side, so nobody achieves full coverage.
        // Stride 2 sweeps origins 0, 2, 4 — none of them the crashed node.
        let g = path(6);
        let mut plan = FailurePlan::none();
        plan.crash_node(NodeId(3), 0);
        let sweep = origin_sweep(&g, Protocol::Flood, &plan, 2, 0);
        assert_eq!(sweep.rounds.len(), 3);
        assert_eq!(sweep.fully_covered, 0);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let _ = origin_sweep(&cycle(4), Protocol::Flood, &FailurePlan::none(), 0, 0);
    }
}
