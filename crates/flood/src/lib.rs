//! # lhg-flood
//!
//! Round-synchronous flooding and gossip simulator with failure injection —
//! the application Logarithmic Harary Graphs were designed for.
//!
//! The LHG papers motivate their constructions by robust *deterministic
//! flooding*: over a k-connected topology, a broadcast reaches every correct
//! process despite up to k−1 node or link failures, in a number of rounds
//! bounded by the diameter. This crate measures exactly that:
//!
//! * [`engine`] — the lockstep broadcast simulator
//!   ([`engine::run_broadcast`]) with [`engine::Protocol::Flood`] and
//!   [`engine::Protocol::GossipPush`];
//! * [`failure`] — crash/link failure plans, random (seeded) or adversarial
//!   (built from actual minimum cuts of the topology);
//! * [`experiment`] — multi-trial sweeps aggregating latency, message cost
//!   and reliability.
//!
//! # Example
//!
//! ```
//! use lhg_core::ktree::build_ktree;
//! use lhg_flood::engine::Protocol;
//! use lhg_flood::experiment::{run_trials, FailureMode};
//!
//! // Flood a 3-connected LHG with 2 random crashes: always delivered.
//! let lhg = build_ktree(18, 3)?;
//! let stats = run_trials(
//!     lhg.graph(),
//!     Protocol::Flood,
//!     FailureMode::RandomNodes { count: 2 },
//!     25,
//!     42,
//! );
//! assert_eq!(stats.reliability, 1.0);
//! # Ok::<(), lhg_core::LhgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod experiment;
pub mod failure;
pub mod workload;
