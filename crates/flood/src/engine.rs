//! Round-synchronous dissemination engine.
//!
//! A single broadcast is simulated in lockstep rounds: the origin knows the
//! message at round 0; every round, each live informed node sends according
//! to its [`Protocol`]; messages cross live links and are delivered to live
//! nodes at the next round. The run ends at quiescence (no sends happened).
//!
//! The engine is deterministic given the topology, plan, protocol and seed,
//! which is what lets the experiments make exact claims ("with any k−1
//! failures, coverage is 100%").

use rand::rngs::StdRng;
use rand::seq::IteratorRandom;
use rand::{Rng as _, SeedableRng};

use lhg_graph::{CsrGraph, Edge, NodeId};

use crate::failure::FailurePlan;

/// Dissemination protocol run by every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Deterministic flooding: the round after first receiving the message,
    /// forward it once to every neighbor except the first sender. The
    /// protocol the LHG topologies are designed for.
    Flood,
    /// Push gossip: for `rounds_per_node` consecutive rounds after becoming
    /// informed, push to `fanout` uniformly random neighbors. Probabilistic
    /// coverage — the randomized baseline (\[5\] in the follow-up study).
    GossipPush {
        /// Random neighbors contacted per round.
        fanout: usize,
        /// How many rounds an informed node keeps pushing.
        rounds_per_node: u32,
    },
    /// Flooding with retransmissions: like [`Protocol::Flood`], but each
    /// node repeats its forward for `retries` consecutive rounds. Useless
    /// on reliable links; the standard counter-measure on lossy ones
    /// (experiment E18, after Lin & Marzullo's flooding-vs-gossip study).
    FloodRetry {
        /// Consecutive rounds each node transmits after being informed.
        retries: u32,
    },
    /// Push–pull (anti-entropy) gossip: for `rounds` global rounds, every
    /// live node contacts `fanout` random neighbors; a contact informs the
    /// uninformed party if either side knows the message.
    GossipPushPull {
        /// Random neighbors contacted per round by every node.
        fanout: usize,
        /// Total number of global rounds.
        rounds: u32,
    },
}

/// Outcome of one simulated broadcast.
#[derive(Debug, Clone, PartialEq)]
pub struct FloodOutcome {
    /// Round at which each node was informed (`None` = never).
    pub informed_at: Vec<Option<u32>>,
    /// The neighbor each node was first informed by (`None` for the origin
    /// and for never-informed nodes) — the realized dissemination tree.
    pub parents: Vec<Option<NodeId>>,
    /// Total messages sent (each transmission attempt counts, including
    /// attempts onto failed links and to crashed nodes — the sender cannot
    /// know).
    pub messages_sent: u64,
    /// First round with no sends (the broadcast has quiesced).
    pub quiescence_round: u32,
    /// Number of *correct* nodes (never crash during the run).
    pub correct_nodes: usize,
    /// Number of correct nodes that were informed.
    pub correct_informed: usize,
}

impl FloodOutcome {
    /// Fraction of correct nodes informed (1.0 when there are none).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.correct_nodes == 0 {
            1.0
        } else {
            self.correct_informed as f64 / self.correct_nodes as f64
        }
    }

    /// `true` if every correct node got the message — the reliable-broadcast
    /// success criterion.
    #[must_use]
    pub fn full_coverage(&self) -> bool {
        self.correct_informed == self.correct_nodes
    }

    /// Latest informing round among correct nodes (0 if only the origin).
    #[must_use]
    pub fn last_informed_round(&self) -> u32 {
        self.informed_at
            .iter()
            .flatten()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Records this outcome into `metrics` so round-synchronous floods
    /// export the same JSON shape as the event-driven and TCP runtimes:
    /// counters `flood.runs` / `flood.messages_sent`, gauges
    /// `flood.correct_nodes` / `flood.correct_informed`, histograms
    /// `flood.inform_round` (one sample per informed node) and
    /// `flood.quiescence_round`.
    pub fn record_into(&self, metrics: &lhg_net::metrics::MetricsRegistry) {
        metrics.counter("flood.runs").inc();
        metrics
            .counter("flood.messages_sent")
            .add(self.messages_sent);
        metrics
            .gauge("flood.correct_nodes")
            .set(self.correct_nodes as i64);
        metrics
            .gauge("flood.correct_informed")
            .set(self.correct_informed as i64);
        let inform = metrics.histogram("flood.inform_round");
        for r in self.informed_at.iter().flatten() {
            inform.record(u64::from(*r));
        }
        metrics
            .histogram("flood.quiescence_round")
            .record(u64::from(self.quiescence_round));
    }

    /// Contributes one [`lhg_trace::PathRecord`] per informed node to
    /// `tracer` under `trace_id`, so round-synchronous floods feed the same
    /// spanning-tree reconstruction as the event-driven and TCP runtimes.
    /// Rounds stand in for both hop count and time (`at_us` = round).
    pub fn record_trace(&self, trace_id: u64, tracer: &lhg_trace::TraceCollector) {
        for (v, informed) in self.informed_at.iter().enumerate() {
            let Some(round) = informed else { continue };
            tracer.record(lhg_trace::PathRecord {
                trace_id,
                node: v as u32,
                parent: self.parents[v].map(|p| p.index() as u32),
                hops: *round,
                at_us: u64::from(*round),
            });
        }
    }

    /// Coverage curve: for each round `r = 0..=last`, the fraction of
    /// correct nodes informed by the end of round `r`. The figure-style
    /// series experiment E18 plots.
    #[must_use]
    pub fn coverage_curve(&self) -> Vec<f64> {
        let last = self.last_informed_round();
        if self.correct_nodes == 0 {
            return vec![1.0; last as usize + 1];
        }
        let mut counts = vec![0usize; last as usize + 1];
        for r in self.informed_at.iter().flatten() {
            counts[*r as usize] += 1;
        }
        let mut acc = 0;
        counts
            .into_iter()
            .map(|c| {
                acc += c;
                // Crashed-but-informed nodes may push this over correct
                // counts; clamp for a monotone fraction of correct nodes.
                (acc as f64 / self.correct_nodes as f64).min(1.0)
            })
            .collect()
    }
}

/// Runs one broadcast of `protocol` from `origin` over `topology` under
/// `plan`, with perfectly reliable links. `seed` feeds the gossip RNG
/// (deterministic floods ignore it).
///
/// # Panics
///
/// Panics if `origin` is out of bounds or is crashed from round 0.
#[must_use]
pub fn run_broadcast(
    topology: &CsrGraph,
    origin: NodeId,
    plan: &FailurePlan,
    protocol: Protocol,
    seed: u64,
) -> FloodOutcome {
    run_broadcast_lossy(topology, origin, plan, protocol, seed, 0.0)
}

/// Like [`run_broadcast`], but every transmission is independently lost
/// with probability `loss_prob` (a lossy-datagram network, the setting of
/// Lin & Marzullo's flooding-vs-gossip comparison).
///
/// # Panics
///
/// Panics if `origin` is invalid (see [`run_broadcast`]) or `loss_prob` is
/// not within `0.0..=1.0`.
#[must_use]
pub fn run_broadcast_lossy(
    topology: &CsrGraph,
    origin: NodeId,
    plan: &FailurePlan,
    protocol: Protocol,
    seed: u64,
    loss_prob: f64,
) -> FloodOutcome {
    let n = topology.node_count();
    assert!(origin.index() < n, "origin {origin} out of bounds");
    assert!(
        !plan.is_crashed(origin, 0),
        "origin must be live at round 0"
    );
    assert!(
        (0.0..=1.0).contains(&loss_prob),
        "loss probability out of range"
    );

    if let Protocol::GossipPushPull { fanout, rounds } = protocol {
        return run_push_pull(topology, origin, plan, fanout, rounds, seed, loss_prob);
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut informed_at: Vec<Option<u32>> = vec![None; n];
    let mut first_sender: Vec<Option<NodeId>> = vec![None; n];
    informed_at[origin.index()] = Some(0);

    // How many more rounds each informed node keeps transmitting.
    let sends_on_inform = match protocol {
        Protocol::Flood => 1,
        Protocol::FloodRetry { retries } => retries.max(1),
        Protocol::GossipPush {
            rounds_per_node, ..
        } => rounds_per_node,
        Protocol::GossipPushPull { .. } => unreachable!("handled above"),
    };
    let mut sends_left: Vec<u32> = vec![0; n];
    sends_left[origin.index()] = sends_on_inform;

    let mut messages_sent: u64 = 0;
    let mut round: u32 = 0;
    let mut senders: Vec<NodeId> = vec![origin];
    sends_left[origin.index()] -= 1;

    loop {
        round += 1;
        let mut deliveries: Vec<(NodeId, NodeId)> = Vec::new(); // (from, to)
        let mut sent_this_round = false;

        for &v in &senders {
            if plan.is_crashed(v, round) {
                continue; // crashed before it could transmit this round
            }
            let targets: Vec<NodeId> = match protocol {
                Protocol::Flood | Protocol::FloodRetry { .. } => topology
                    .neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| Some(w) != first_sender[v.index()])
                    .collect(),
                Protocol::GossipPush { fanout, .. } => topology
                    .neighbors(v)
                    .iter()
                    .copied()
                    .choose_multiple(&mut rng, fanout),
                Protocol::GossipPushPull { .. } => unreachable!("handled above"),
            };
            for w in targets {
                sent_this_round = true;
                messages_sent += 1;
                if loss_prob > 0.0 && rng.random_bool(loss_prob) {
                    continue; // dropped on the wire
                }
                if plan.is_link_failed(Edge::new(v, w)) || plan.is_crashed(w, round) {
                    continue; // failed link or dead receiver
                }
                deliveries.push((v, w));
            }
        }

        // Deliver simultaneously at the end of the round.
        for (from, to) in deliveries {
            if informed_at[to.index()].is_none() {
                informed_at[to.index()] = Some(round);
                first_sender[to.index()] = Some(from);
                sends_left[to.index()] = sends_on_inform;
            }
        }

        // Build the next round's sender set from remaining send budgets.
        senders.clear();
        for v in 0..n {
            if informed_at[v].is_some() && sends_left[v] > 0 {
                sends_left[v] -= 1;
                senders.push(NodeId(v));
            }
        }

        if senders.is_empty() {
            if !sent_this_round {
                round -= 1; // nothing happened this round
            }
            break;
        }
    }

    finish(informed_at, first_sender, messages_sent, round, plan)
}

/// Push–pull anti-entropy loop: every live node contacts `fanout` random
/// neighbors each round; a contact synchronizes the pair.
fn run_push_pull(
    topology: &CsrGraph,
    origin: NodeId,
    plan: &FailurePlan,
    fanout: usize,
    rounds: u32,
    seed: u64,
    loss_prob: f64,
) -> FloodOutcome {
    let n = topology.node_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut informed_at: Vec<Option<u32>> = vec![None; n];
    let mut first_sender: Vec<Option<NodeId>> = vec![None; n];
    informed_at[origin.index()] = Some(0);
    let mut messages_sent: u64 = 0;

    for round in 1..=rounds {
        let informed_snapshot: Vec<bool> = informed_at.iter().map(Option::is_some).collect();
        let mut to_inform: Vec<(usize, NodeId)> = Vec::new(); // (node, informer)
        for v in 0..n {
            if plan.is_crashed(NodeId(v), round) {
                continue;
            }
            let contacts = topology
                .neighbors(NodeId(v))
                .iter()
                .copied()
                .choose_multiple(&mut rng, fanout);
            for w in contacts {
                // A push-pull exchange costs a request plus (if productive)
                // a payload transfer; count the request.
                messages_sent += 1;
                if loss_prob > 0.0 && rng.random_bool(loss_prob) {
                    continue;
                }
                if plan.is_link_failed(Edge::new(NodeId(v), w)) || plan.is_crashed(w, round) {
                    continue;
                }
                match (informed_snapshot[v], informed_snapshot[w.index()]) {
                    (true, false) => to_inform.push((w.index(), NodeId(v))),
                    (false, true) => to_inform.push((v, w)),
                    _ => {}
                }
            }
        }
        for (v, informer) in to_inform {
            if informed_at[v].is_none() {
                informed_at[v] = Some(round);
                first_sender[v] = Some(informer);
            }
        }
    }

    finish(informed_at, first_sender, messages_sent, rounds, plan)
}

fn finish(
    informed_at: Vec<Option<u32>>,
    parents: Vec<Option<NodeId>>,
    messages_sent: u64,
    quiescence_round: u32,
    plan: &FailurePlan,
) -> FloodOutcome {
    let mut correct_nodes = 0;
    let mut correct_informed = 0;
    for (v, informed) in informed_at.iter().enumerate() {
        if !plan.ever_crashes(NodeId(v)) {
            correct_nodes += 1;
            if informed.is_some() {
                correct_informed += 1;
            }
        }
    }
    FloodOutcome {
        informed_at,
        parents,
        messages_sent,
        quiescence_round,
        correct_nodes,
        correct_informed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_graph::Graph;

    fn csr_cycle(n: usize) -> CsrGraph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        CsrGraph::from_graph(&g)
    }

    fn csr_path(n: usize) -> CsrGraph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i - 1), NodeId(i));
        }
        CsrGraph::from_graph(&g)
    }

    #[test]
    fn flood_covers_cycle_in_n_half_rounds() {
        let t = csr_cycle(10);
        let out = run_broadcast(&t, NodeId(0), &FailurePlan::none(), Protocol::Flood, 0);
        assert!(out.full_coverage());
        assert_eq!(out.coverage(), 1.0);
        assert_eq!(out.last_informed_round(), 5);
        // Node i is informed at min(i, n-i).
        for i in 0..10usize {
            assert_eq!(out.informed_at[i], Some(i.min(10 - i) as u32), "node {i}");
        }
    }

    #[test]
    fn flood_message_count_on_path() {
        // Path 0-1-2-3, origin 0: 0 sends 1 msg; 1 forwards to 2 (not back);
        // 2 forwards to 3; 3 has only its sender -> 0 sends. Total 3.
        let t = csr_path(4);
        let out = run_broadcast(&t, NodeId(0), &FailurePlan::none(), Protocol::Flood, 0);
        assert_eq!(out.messages_sent, 3);
        assert!(out.full_coverage());
    }

    #[test]
    fn flood_from_middle_sends_both_ways() {
        let t = csr_path(5);
        let out = run_broadcast(&t, NodeId(2), &FailurePlan::none(), Protocol::Flood, 0);
        assert!(out.full_coverage());
        assert_eq!(out.last_informed_round(), 2);
    }

    #[test]
    fn crashed_from_start_node_blocks_a_path() {
        let t = csr_path(4);
        let mut plan = FailurePlan::none();
        plan.crash_node(NodeId(1), 0);
        let out = run_broadcast(&t, NodeId(0), &plan, Protocol::Flood, 0);
        assert!(!out.full_coverage());
        assert_eq!(out.correct_nodes, 3);
        assert_eq!(out.correct_informed, 1, "only the origin");
        assert!(out.coverage() < 0.5);
    }

    #[test]
    fn cycle_survives_one_crash() {
        let t = csr_cycle(8);
        let mut plan = FailurePlan::none();
        plan.crash_node(NodeId(3), 0);
        let out = run_broadcast(&t, NodeId(0), &plan, Protocol::Flood, 0);
        assert!(out.full_coverage(), "2-connected survives 1 failure");
        assert_eq!(out.correct_nodes, 7);
    }

    #[test]
    fn cycle_splits_under_two_crashes() {
        let t = csr_cycle(8);
        let mut plan = FailurePlan::none();
        plan.crash_node(NodeId(2), 0);
        plan.crash_node(NodeId(6), 0);
        let out = run_broadcast(&t, NodeId(0), &plan, Protocol::Flood, 0);
        assert!(!out.full_coverage());
        // Nodes 3,4,5 unreachable.
        assert_eq!(out.correct_informed, 3);
    }

    #[test]
    fn link_failure_is_bidirectional() {
        let t = csr_cycle(6);
        let mut plan = FailurePlan::none();
        plan.fail_link(Edge::new(NodeId(0), NodeId(1)));
        plan.fail_link(Edge::new(NodeId(3), NodeId(4)));
        let out = run_broadcast(&t, NodeId(0), &plan, Protocol::Flood, 0);
        assert!(!out.full_coverage(), "two link failures split the cycle");
        assert_eq!(out.correct_informed, 3, "only the 0-5-4 side is reachable");
    }

    #[test]
    fn mid_flood_crash_can_still_block() {
        // Path: node 1 is informed at round 1 but crashes from round 2 — the
        // round it would forward in — so the message dies with it.
        let t = csr_path(4);
        let mut plan = FailurePlan::none();
        plan.crash_node(NodeId(1), 2);
        let out = run_broadcast(&t, NodeId(0), &plan, Protocol::Flood, 0);
        assert_eq!(out.informed_at[1], Some(1), "informed before crashing");
        assert!(!out.full_coverage(), "crashed before forwarding");
    }

    #[test]
    fn mid_flood_crash_after_forwarding_is_harmless() {
        // Node 1 forwards during round 2 and only crashes from round 3.
        let t = csr_path(4);
        let mut plan = FailurePlan::none();
        plan.crash_node(NodeId(1), 3);
        let out = run_broadcast(&t, NodeId(0), &plan, Protocol::Flood, 0);
        assert!(out.full_coverage());
    }

    #[test]
    fn gossip_with_full_fanout_behaves_like_flooding() {
        let t = csr_cycle(12);
        let out = run_broadcast(
            &t,
            NodeId(0),
            &FailurePlan::none(),
            Protocol::GossipPush {
                fanout: 2,
                rounds_per_node: 12,
            },
            7,
        );
        assert!(out.full_coverage());
    }

    #[test]
    fn gossip_with_fanout_1_can_miss_nodes() {
        // On a star, fanout-1 gossip from a leaf reaches the hub, which then
        // pushes to one random leaf per round for rounds_per_node rounds:
        // with few rounds, some leaves stay uninformed.
        let mut g = Graph::with_nodes(12);
        for i in 1..12 {
            g.add_edge(NodeId(0), NodeId(i));
        }
        let t = CsrGraph::from_graph(&g);
        let out = run_broadcast(
            &t,
            NodeId(1),
            &FailurePlan::none(),
            Protocol::GossipPush {
                fanout: 1,
                rounds_per_node: 3,
            },
            3,
        );
        assert!(!out.full_coverage(), "3 pushes cannot reach 10 leaves");
        assert!(out.coverage() > 0.0);
    }

    #[test]
    fn gossip_is_reproducible_per_seed() {
        let t = csr_cycle(20);
        let p = Protocol::GossipPush {
            fanout: 1,
            rounds_per_node: 4,
        };
        let a = run_broadcast(&t, NodeId(0), &FailurePlan::none(), p, 5);
        let b = run_broadcast(&t, NodeId(0), &FailurePlan::none(), p, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn quiescence_round_is_reported() {
        let t = csr_path(3);
        let out = run_broadcast(&t, NodeId(0), &FailurePlan::none(), Protocol::Flood, 0);
        assert!(out.quiescence_round >= out.last_informed_round());
    }

    #[test]
    fn outcomes_record_into_metrics() {
        let t = csr_cycle(8);
        let out = run_broadcast(&t, NodeId(0), &FailurePlan::none(), Protocol::Flood, 0);
        let reg = lhg_net::metrics::MetricsRegistry::new();
        out.record_into(&reg);
        assert_eq!(reg.counter("flood.runs").get(), 1);
        assert_eq!(reg.counter("flood.messages_sent").get(), out.messages_sent);
        assert_eq!(reg.gauge("flood.correct_informed").get(), 8);
        assert_eq!(reg.histogram("flood.inform_round").count(), 8);
        let json = reg.snapshot_json();
        assert!(json.contains("flood.quiescence_round"));
    }

    #[test]
    fn parents_form_the_dissemination_tree() {
        let t = csr_path(4);
        let out = run_broadcast(&t, NodeId(0), &FailurePlan::none(), Protocol::Flood, 0);
        assert_eq!(
            out.parents,
            vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(2))]
        );
    }

    #[test]
    fn record_trace_reconstructs_spanning_tree() {
        use std::collections::BTreeSet;

        let t = csr_cycle(8);
        let mut plan = FailurePlan::none();
        plan.crash_node(NodeId(3), 0);
        let out = run_broadcast(&t, NodeId(0), &plan, Protocol::Flood, 0);
        let tracer = lhg_trace::TraceCollector::new();
        out.record_trace(11, &tracer);
        let trace = tracer.trace(11).expect("trace recorded");
        assert_eq!(trace.origin(), Some(0));
        let survivors: BTreeSet<u32> = (0..8u32).filter(|&v| v != 3).collect();
        assert!(trace.is_spanning(&survivors));
        // Node 2 is a dead end past the crash: 0-1-2 one way, 0-7-6-5-4 the
        // other; realized depth is 4.
        assert_eq!(trace.max_hops(), 4);
        assert_eq!(trace.path_from_origin(4), Some(vec![0, 7, 6, 5, 4]));
    }

    #[test]
    fn push_pull_records_informers_as_parents() {
        let t = csr_cycle(6);
        let out = run_broadcast(
            &t,
            NodeId(0),
            &FailurePlan::none(),
            Protocol::GossipPushPull {
                fanout: 2,
                rounds: 12,
            },
            3,
        );
        assert!(out.full_coverage());
        assert_eq!(out.parents[0], None, "origin has no parent");
        for v in 1..6 {
            assert!(out.parents[v].is_some(), "node {v} knows its informer");
        }
    }

    #[test]
    #[should_panic(expected = "origin must be live")]
    fn crashed_origin_is_rejected() {
        let t = csr_cycle(4);
        let mut plan = FailurePlan::none();
        plan.crash_node(NodeId(0), 0);
        let _ = run_broadcast(&t, NodeId(0), &plan, Protocol::Flood, 0);
    }

    #[test]
    fn single_node_topology() {
        let t = CsrGraph::from_graph(&Graph::with_nodes(1));
        let out = run_broadcast(&t, NodeId(0), &FailurePlan::none(), Protocol::Flood, 0);
        assert!(out.full_coverage());
        assert_eq!(out.messages_sent, 0);
    }
}
