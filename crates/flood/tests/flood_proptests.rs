//! Property tests tying the flooding engine to graph theory on randomly
//! chosen LHG instances.

use proptest::prelude::*;

use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_flood::engine::{run_broadcast, Protocol};
use lhg_flood::failure::{random_node_failures, FailurePlan};
use lhg_flood::workload::origin_sweep;
use lhg_graph::paths::{diameter, eccentricity, radius};
use lhg_graph::{CsrGraph, NodeId};

fn arb_params() -> impl Strategy<Value = (usize, usize)> {
    (3usize..=5).prop_flat_map(|k| ((2 * k)..=(2 * k + 40)).prop_map(move |n| (n, k)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flood_cost_is_2m_minus_n_plus_1((n, k) in arb_params()) {
        for lhg in [build_ktree(n, k).unwrap(), build_kdiamond(n, k).unwrap()] {
            let m = lhg.graph().edge_count() as u64;
            let out = run_broadcast(
                &CsrGraph::from_graph(lhg.graph()),
                NodeId(0),
                &FailurePlan::none(),
                Protocol::Flood,
                0,
            );
            prop_assert!(out.full_coverage());
            prop_assert_eq!(out.messages_sent, 2 * m - n as u64 + 1, "(n={}, k={})", n, k);
        }
    }

    #[test]
    fn flood_rounds_equal_origin_eccentricity(
        (n, k) in arb_params(),
        origin_pick in 0usize..1000,
    ) {
        let lhg = build_kdiamond(n, k).unwrap();
        let origin = NodeId(origin_pick % n);
        let ecc = eccentricity(lhg.graph(), origin).unwrap();
        let out = run_broadcast(
            &CsrGraph::from_graph(lhg.graph()),
            origin,
            &FailurePlan::none(),
            Protocol::Flood,
            0,
        );
        prop_assert_eq!(out.last_informed_round(), ecc, "(n={}, k={}, o={})", n, k, origin);
    }

    #[test]
    fn origin_sweep_extrema_match_radius_and_diameter((n, k) in arb_params()) {
        let lhg = build_ktree(n, k).unwrap();
        let sweep = origin_sweep(lhg.graph(), Protocol::Flood, &FailurePlan::none(), 1, 0);
        prop_assert_eq!(sweep.min_rounds(), radius(lhg.graph()).unwrap());
        prop_assert_eq!(sweep.max_rounds(), diameter(lhg.graph()).unwrap());
        prop_assert_eq!(sweep.fully_covered, n);
    }

    #[test]
    fn coverage_never_decreases_when_failures_decrease(
        (n, k) in arb_params(),
        seed in 0u64..500,
    ) {
        // The *same seeded plan* with one crash removed covers at least as
        // much: monotonicity of flooding in the failure set.
        let lhg = build_ktree(n, k).unwrap();
        let topology = CsrGraph::from_graph(lhg.graph());
        let full_plan = random_node_failures(lhg.graph(), k, NodeId(0), seed);
        let mut crashes: Vec<NodeId> = full_plan.crashes().map(|(v, _)| v).collect();
        crashes.sort();

        let coverage_with = |subset: &[NodeId]| {
            let mut plan = FailurePlan::none();
            for &v in subset {
                plan.crash_node(v, 0);
            }
            run_broadcast(&topology, NodeId(0), &plan, Protocol::Flood, 0).correct_informed
        };
        let all = coverage_with(&crashes);
        let fewer = coverage_with(&crashes[..crashes.len() - 1]);
        // One fewer crash: the survivor set grows by one, and every
        // previously reached node is still reached.
        prop_assert!(fewer >= all, "(n={}, k={}, seed={})", n, k, seed);
    }

    #[test]
    fn gossip_coverage_is_monotone_in_rounds_per_node(
        (n, k) in arb_params(),
        seed in 0u64..200,
    ) {
        // Same seed, more pushing rounds: the infected set's evolution is a
        // superset prefix-wise, so final coverage cannot drop.
        let lhg = build_kdiamond(n, k).unwrap();
        let topology = CsrGraph::from_graph(lhg.graph());
        // Per-seed runs are not strictly comparable (RNG draws differ), so
        // check the coarse property: a generous budget reaches at least as
        // far as a tiny one summed across three seeds.
        let tiny: f64 = (0..3).map(|s| {
            run_broadcast(
                &topology,
                NodeId(0),
                &FailurePlan::none(),
                Protocol::GossipPush { fanout: 1, rounds_per_node: 1 },
                seed + s,
            )
            .coverage()
        }).sum();
        let big: f64 = (0..3).map(|s| {
            run_broadcast(
                &topology,
                NodeId(0),
                &FailurePlan::none(),
                Protocol::GossipPush { fanout: 1, rounds_per_node: 24 },
                seed + s,
            )
            .coverage()
        }).sum();
        prop_assert!(big >= tiny, "(n={}, k={}): {} vs {}", n, k, big, tiny);
    }
}
