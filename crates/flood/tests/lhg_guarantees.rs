//! Cross-crate tests of the paper's headline guarantee: flooding over an
//! LHG reaches every correct node despite up to k−1 failures, in about
//! diameter-many rounds, and a k-regular LHG does so with the minimum
//! message count.

use proptest::prelude::*;

use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_core::util::all_combinations;
use lhg_flood::engine::Protocol;
use lhg_flood::experiment::{run_trials, run_with_plan, FailureMode};
use lhg_flood::failure::{adversarial_link_failures, adversarial_node_failures, FailurePlan};
use lhg_graph::paths::diameter;
use lhg_graph::{Graph, NodeId};

/// Exhaustive check: flooding from node 0 survives *every* crash set of
/// size ≤ k−1 (node 0 protected as the origin).
fn survives_all_crash_sets(g: &Graph, k: usize) -> bool {
    let n = g.node_count();
    for r in 1..k {
        let ok = all_combinations(n - 1, r, |subset| {
            // Map combination indices 0..n-1 to node ids 1..n (skip origin).
            let mut plan = FailurePlan::none();
            for &i in subset {
                plan.crash_node(NodeId(i + 1), 0);
            }
            run_with_plan(g, Protocol::Flood, &plan, 0).full_coverage()
        });
        if !ok {
            return false;
        }
    }
    true
}

#[test]
fn exhaustive_fault_tolerance_small_lhgs() {
    for (n, k) in [(6, 3), (8, 3), (10, 3), (13, 3), (12, 4)] {
        let kt = build_ktree(n, k).unwrap();
        assert!(survives_all_crash_sets(kt.graph(), k), "K-TREE ({n},{k})");
        let kd = build_kdiamond(n, k).unwrap();
        assert!(
            survives_all_crash_sets(kd.graph(), k),
            "K-DIAMOND ({n},{k})"
        );
    }
}

#[test]
fn adversarial_cut_minus_one_never_breaks_flooding() {
    for (n, k) in [(14, 3), (22, 3), (16, 4)] {
        let lhg = build_ktree(n, k).unwrap();
        let plan = adversarial_node_failures(lhg.graph(), k - 1, NodeId(0)).unwrap();
        let out = run_with_plan(lhg.graph(), Protocol::Flood, &plan, 0);
        assert!(out.full_coverage(), "({n},{k}) node cut");

        let plan = adversarial_link_failures(lhg.graph(), k - 1).unwrap();
        let out = run_with_plan(lhg.graph(), Protocol::Flood, &plan, 0);
        assert!(out.full_coverage(), "({n},{k}) link cut");
    }
}

#[test]
fn full_adversarial_cut_breaks_flooding() {
    for (n, k) in [(14, 3), (16, 4)] {
        let lhg = build_ktree(n, k).unwrap();
        let plan = adversarial_node_failures(lhg.graph(), k, NodeId(0)).unwrap();
        if plan.crashed_count() == k {
            let out = run_with_plan(lhg.graph(), Protocol::Flood, &plan, 0);
            assert!(
                !out.full_coverage(),
                "removing a whole min cut must split ({n},{k})"
            );
        }
    }
}

#[test]
fn failure_free_message_cost_is_2m_minus_n_plus_1() {
    // Flood: origin sends deg(origin); every other node sends deg−1.
    // Total = Σdeg − (n−1) = 2m − n + 1.
    for (n, k) in [(10, 3), (14, 3), (16, 4)] {
        let lhg = build_kdiamond(n, k).unwrap();
        let m = lhg.graph().edge_count() as u64;
        let out = run_with_plan(lhg.graph(), Protocol::Flood, &FailurePlan::none(), 0);
        assert_eq!(out.messages_sent, 2 * m - n as u64 + 1, "({n},{k})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_k_minus_1_failures_always_covered(
        k in 3usize..=5,
        extra in 0usize..40,
        seed in 0u64..1000,
    ) {
        let n = 2 * k + extra;
        let lhg = build_ktree(n, k).unwrap();
        let stats = run_trials(
            lhg.graph(),
            Protocol::Flood,
            FailureMode::RandomNodes { count: k - 1 },
            5,
            seed,
        );
        prop_assert_eq!(stats.reliability, 1.0, "(n={}, k={})", n, k);
    }

    #[test]
    fn random_link_failures_always_covered(
        k in 3usize..=5,
        extra in 0usize..40,
        seed in 0u64..1000,
    ) {
        let n = 2 * k + extra;
        let lhg = build_kdiamond(n, k).unwrap();
        let stats = run_trials(
            lhg.graph(),
            Protocol::Flood,
            FailureMode::RandomLinks { count: k - 1 },
            5,
            seed,
        );
        prop_assert_eq!(stats.reliability, 1.0, "(n={}, k={})", n, k);
    }

    #[test]
    fn flooding_rounds_equal_eccentricity_bounded_by_diameter(
        k in 3usize..=5,
        extra in 0usize..50,
    ) {
        let n = 2 * k + extra;
        let lhg = build_ktree(n, k).unwrap();
        let d = diameter(lhg.graph()).unwrap();
        let out = run_with_plan(lhg.graph(), Protocol::Flood, &FailurePlan::none(), 0);
        prop_assert!(out.full_coverage());
        prop_assert!(
            out.last_informed_round() <= d,
            "rounds {} > diameter {} (n={}, k={})",
            out.last_informed_round(), d, n, k
        );
    }
}
