//! Tests of the extended protocol matrix: lossy links, flooding with
//! retransmissions, push–pull gossip, and coverage curves.

use lhg_core::ktree::build_ktree;
use lhg_flood::engine::{run_broadcast, run_broadcast_lossy, Protocol};
use lhg_flood::failure::FailurePlan;
use lhg_graph::{CsrGraph, Graph, NodeId};

fn csr_cycle(n: usize) -> CsrGraph {
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        g.add_edge(NodeId(i), NodeId((i + 1) % n));
    }
    CsrGraph::from_graph(&g)
}

fn lhg_csr(n: usize, k: usize) -> CsrGraph {
    CsrGraph::from_graph(build_ktree(n, k).unwrap().graph())
}

#[test]
fn zero_loss_equals_reliable_run() {
    let t = lhg_csr(22, 3);
    let reliable = run_broadcast(&t, NodeId(0), &FailurePlan::none(), Protocol::Flood, 5);
    let lossy0 = run_broadcast_lossy(&t, NodeId(0), &FailurePlan::none(), Protocol::Flood, 5, 0.0);
    assert_eq!(reliable, lossy0);
}

#[test]
fn full_loss_informs_nobody_else() {
    let t = lhg_csr(14, 3);
    let out = run_broadcast_lossy(&t, NodeId(0), &FailurePlan::none(), Protocol::Flood, 5, 1.0);
    assert_eq!(out.correct_informed, 1, "only the origin");
    assert!(out.messages_sent > 0, "sends still happen, all dropped");
}

#[test]
fn plain_flood_degrades_under_loss_but_retry_recovers() {
    let t = lhg_csr(46, 3);
    let loss = 0.30;
    let trials = 40u64;
    let mut flood_full = 0;
    let mut retry_full = 0;
    for seed in 0..trials {
        let f = run_broadcast_lossy(
            &t,
            NodeId(0),
            &FailurePlan::none(),
            Protocol::Flood,
            seed,
            loss,
        );
        let r = run_broadcast_lossy(
            &t,
            NodeId(0),
            &FailurePlan::none(),
            Protocol::FloodRetry { retries: 4 },
            seed,
            loss,
        );
        flood_full += u64::from(f.full_coverage());
        retry_full += u64::from(r.full_coverage());
    }
    assert!(
        flood_full < trials,
        "30% loss must break single-shot flooding sometimes ({flood_full}/{trials})"
    );
    assert!(
        retry_full > flood_full,
        "retransmissions must improve coverage ({retry_full} vs {flood_full})"
    );
}

#[test]
fn retry_on_reliable_links_changes_nothing_but_cost() {
    let t = lhg_csr(18, 3);
    let plain = run_broadcast(&t, NodeId(0), &FailurePlan::none(), Protocol::Flood, 0);
    let retry = run_broadcast(
        &t,
        NodeId(0),
        &FailurePlan::none(),
        Protocol::FloodRetry { retries: 3 },
        0,
    );
    assert_eq!(plain.informed_at, retry.informed_at, "same delivery rounds");
    assert!(
        retry.messages_sent > 2 * plain.messages_sent,
        "but ~3x the messages"
    );
}

#[test]
fn push_pull_converges_where_push_struggles() {
    // Star graph: push with fanout 1 from the hub informs one leaf per
    // round; pull lets every leaf fetch from the hub in round 1.
    let mut g = Graph::with_nodes(16);
    for i in 1..16 {
        g.add_edge(NodeId(0), NodeId(i));
    }
    let t = CsrGraph::from_graph(&g);
    let push = run_broadcast(
        &t,
        NodeId(0),
        &FailurePlan::none(),
        Protocol::GossipPush {
            fanout: 1,
            rounds_per_node: 4,
        },
        9,
    );
    let pushpull = run_broadcast(
        &t,
        NodeId(0),
        &FailurePlan::none(),
        Protocol::GossipPushPull {
            fanout: 1,
            rounds: 4,
        },
        9,
    );
    assert!(!push.full_coverage(), "4 pushes cannot reach 15 leaves");
    assert!(pushpull.full_coverage(), "every leaf pulls from the hub");
}

#[test]
fn push_pull_respects_crashes() {
    let t = csr_cycle(10);
    let mut plan = FailurePlan::none();
    plan.crash_node(NodeId(2), 0);
    plan.crash_node(NodeId(7), 0);
    let out = run_broadcast(
        &t,
        NodeId(0),
        &plan,
        Protocol::GossipPushPull {
            fanout: 2,
            rounds: 30,
        },
        3,
    );
    // The cycle is split by the two crashes: 3,4,5,6 unreachable.
    assert!(!out.full_coverage());
    assert_eq!(out.correct_informed, 4);
}

#[test]
fn push_pull_message_cost_is_rounds_times_contacts() {
    let t = csr_cycle(8);
    let out = run_broadcast(
        &t,
        NodeId(0),
        &FailurePlan::none(),
        Protocol::GossipPushPull {
            fanout: 1,
            rounds: 5,
        },
        1,
    );
    assert_eq!(
        out.messages_sent,
        5 * 8,
        "every node contacts once per round"
    );
}

#[test]
fn coverage_curve_is_monotone_and_ends_at_coverage() {
    let t = lhg_csr(30, 3);
    let out = run_broadcast(&t, NodeId(0), &FailurePlan::none(), Protocol::Flood, 0);
    let curve = out.coverage_curve();
    assert_eq!(curve[0], 1.0 / 30.0, "round 0: just the origin");
    assert!(
        curve.windows(2).all(|w| w[0] <= w[1]),
        "monotone: {curve:?}"
    );
    assert_eq!(*curve.last().unwrap(), out.coverage());
    assert_eq!(curve.len() as u32, out.last_informed_round() + 1);
}

#[test]
fn coverage_curve_under_failures_plateaus_below_one() {
    let t = csr_cycle(12);
    let mut plan = FailurePlan::none();
    plan.crash_node(NodeId(3), 0);
    plan.crash_node(NodeId(9), 0);
    let out = run_broadcast(&t, NodeId(0), &plan, Protocol::Flood, 0);
    let curve = out.coverage_curve();
    assert!(*curve.last().unwrap() < 1.0);
    assert_eq!(*curve.last().unwrap(), out.coverage());
}

#[test]
fn lossy_runs_are_seed_reproducible() {
    let t = lhg_csr(26, 3);
    let a = run_broadcast_lossy(
        &t,
        NodeId(0),
        &FailurePlan::none(),
        Protocol::Flood,
        11,
        0.2,
    );
    let b = run_broadcast_lossy(
        &t,
        NodeId(0),
        &FailurePlan::none(),
        Protocol::Flood,
        11,
        0.2,
    );
    assert_eq!(a, b);
}

#[test]
#[should_panic(expected = "loss probability")]
fn invalid_loss_probability_rejected() {
    let t = csr_cycle(4);
    let _ = run_broadcast_lossy(&t, NodeId(0), &FailurePlan::none(), Protocol::Flood, 0, 1.5);
}
