//! Causal broadcast tracing: collect per-delivery path records and
//! reconstruct the realized spanning tree of every broadcast.
//!
//! Each transport reports one [`PathRecord`] per application-level
//! delivery: which node delivered, which neighbor the winning copy arrived
//! from (`parent`), how many hops it had travelled, and when. Grouping
//! records by trace id yields a [`BroadcastTrace`] — parent pointers form
//! the realized dissemination tree, which the paper's latency claims are
//! about: its depth must stay within the O(log n) LHG diameter bound even
//! while crashes are being healed around.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

/// One application-level delivery of a traced broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathRecord {
    /// The broadcast's trace id (frames carry it end to end).
    pub trace_id: u64,
    /// The delivering node.
    pub node: u32,
    /// The neighbor the winning copy arrived from; `None` at the origin.
    pub parent: Option<u32>,
    /// Hops the winning copy travelled (0 at the origin).
    pub hops: u32,
    /// Delivery time in µs since the shared epoch (virtual time in
    /// simulators, monotonic wall clock in the TCP runtime).
    pub at_us: u64,
}

impl PathRecord {
    /// Renders the record as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let parent = self
            .parent
            .map_or_else(|| "null".to_owned(), |p| p.to_string());
        format!(
            "{{\"trace_id\":{},\"node\":{},\"parent\":{},\"hops\":{},\"at_us\":{}}}",
            self.trace_id, self.node, parent, self.hops, self.at_us
        )
    }
}

/// Thread-safe sink for [`PathRecord`]s, shared by every node of a run.
///
/// Recording is one short mutex-protected push per *delivery* (not per
/// frame), so contention is negligible next to the socket work around it.
#[derive(Debug, Default)]
pub struct TraceCollector {
    records: Mutex<Vec<PathRecord>>,
}

impl TraceCollector {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Appends one delivery record.
    pub fn record(&self, record: PathRecord) {
        if let Ok(mut guard) = self.records.lock() {
            guard.push(record);
        }
    }

    /// Number of records collected so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.lock().map(|g| g.len()).unwrap_or(0)
    }

    /// `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of every record, in arrival order.
    #[must_use]
    pub fn records(&self) -> Vec<PathRecord> {
        self.records.lock().map(|g| g.clone()).unwrap_or_default()
    }

    /// Groups the records into one [`BroadcastTrace`] per trace id, in
    /// trace-id order. Duplicate records for a node keep the earliest.
    #[must_use]
    pub fn traces(&self) -> Vec<BroadcastTrace> {
        let mut by_id: BTreeMap<u64, BroadcastTrace> = BTreeMap::new();
        for r in self.records() {
            let t = by_id
                .entry(r.trace_id)
                .or_insert_with(|| BroadcastTrace::new(r.trace_id));
            t.add(r);
        }
        by_id.into_values().collect()
    }

    /// The trace with the given id, if any record carried it.
    #[must_use]
    pub fn trace(&self, trace_id: u64) -> Option<BroadcastTrace> {
        self.traces().into_iter().find(|t| t.trace_id == trace_id)
    }
}

/// The realized dissemination tree of one broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastTrace {
    /// The broadcast's trace id.
    pub trace_id: u64,
    /// First delivery per node, keyed by node id.
    deliveries: BTreeMap<u32, PathRecord>,
}

impl BroadcastTrace {
    fn new(trace_id: u64) -> Self {
        BroadcastTrace {
            trace_id,
            deliveries: BTreeMap::new(),
        }
    }

    /// An empty trace (no deliveries recorded). Useful as the placeholder
    /// for a broadcast that produced no records: it reports as non-spanning
    /// against any non-empty expected set.
    #[must_use]
    pub fn empty(trace_id: u64) -> Self {
        BroadcastTrace::new(trace_id)
    }

    fn add(&mut self, r: PathRecord) {
        match self.deliveries.get(&r.node) {
            Some(existing) if existing.at_us <= r.at_us => {}
            _ => {
                self.deliveries.insert(r.node, r);
            }
        }
    }

    /// The origin node (the delivery with no parent), if recorded.
    #[must_use]
    pub fn origin(&self) -> Option<u32> {
        self.deliveries
            .values()
            .find(|r| r.parent.is_none())
            .map(|r| r.node)
    }

    /// Nodes that delivered this broadcast.
    #[must_use]
    pub fn delivered_nodes(&self) -> BTreeSet<u32> {
        self.deliveries.keys().copied().collect()
    }

    /// The delivery record of `node`, if it delivered.
    #[must_use]
    pub fn delivery(&self, node: u32) -> Option<&PathRecord> {
        self.deliveries.get(&node)
    }

    /// Largest hop count over all deliveries (the realized eccentricity of
    /// the origin in hops).
    #[must_use]
    pub fn max_hops(&self) -> u32 {
        self.deliveries.values().map(|r| r.hops).max().unwrap_or(0)
    }

    /// The realized path from the origin to `node`, origin first, following
    /// parent pointers backwards. `None` if `node` did not deliver or its
    /// parent chain does not close at the origin (lost records or a cycle).
    #[must_use]
    pub fn path_from_origin(&self, node: u32) -> Option<Vec<u32>> {
        let mut path = vec![node];
        let mut seen = BTreeSet::from([node]);
        let mut cursor = node;
        loop {
            let record = self.deliveries.get(&cursor)?;
            match record.parent {
                None => {
                    path.reverse();
                    return Some(path);
                }
                Some(parent) => {
                    if !seen.insert(parent) {
                        return None; // cycle: records are inconsistent
                    }
                    path.push(parent);
                    cursor = parent;
                }
            }
        }
    }

    /// Depth of the reconstructed tree: the longest origin→leaf path, in
    /// edges. Unresolvable chains are skipped.
    #[must_use]
    pub fn tree_depth(&self) -> u32 {
        self.deliveries
            .keys()
            .filter_map(|&v| self.path_from_origin(v))
            .map(|p| (p.len() - 1) as u32)
            .max()
            .unwrap_or(0)
    }

    /// `true` when every node in `expected` delivered **and** has a
    /// reconstructable path back to the origin — i.e. the records form a
    /// spanning tree over `expected`.
    #[must_use]
    pub fn is_spanning(&self, expected: &BTreeSet<u32>) -> bool {
        expected.iter().all(|&v| self.path_from_origin(v).is_some())
    }

    /// Per-hop latencies in µs: for every delivery whose parent also
    /// delivered, `child.at_us − parent.at_us`.
    #[must_use]
    pub fn per_hop_latencies_us(&self) -> Vec<u64> {
        self.deliveries
            .values()
            .filter_map(|r| {
                let parent = self.deliveries.get(&r.parent?)?;
                Some(r.at_us.saturating_sub(parent.at_us))
            })
            .collect()
    }

    /// End-to-end latency in µs: last delivery minus origin delivery.
    #[must_use]
    pub fn eccentricity_us(&self) -> u64 {
        let origin_at = self
            .origin()
            .and_then(|o| self.deliveries.get(&o))
            .map_or(0, |r| r.at_us);
        let last = self.deliveries.values().map(|r| r.at_us).max().unwrap_or(0);
        last.saturating_sub(origin_at)
    }

    /// Summarizes the trace against the survivor set it should span and the
    /// theoretical hop bound it should respect.
    #[must_use]
    pub fn report(&self, expected: &BTreeSet<u32>, hop_bound: f64) -> HopReport {
        let latencies = self.per_hop_latencies_us();
        let hop_latency_max_us = latencies.iter().copied().max().unwrap_or(0);
        let hop_latency_mean_us = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
        };
        HopReport {
            trace_id: self.trace_id,
            origin: self.origin(),
            delivered: self.deliveries.len(),
            expected: expected.len(),
            max_hops: self.max_hops(),
            tree_depth: self.tree_depth(),
            hop_bound,
            spanning: self.is_spanning(expected),
            eccentricity_us: self.eccentricity_us(),
            hop_latency_mean_us,
            hop_latency_max_us,
        }
    }
}

/// Per-broadcast summary produced by [`BroadcastTrace::report`].
#[derive(Debug, Clone, PartialEq)]
pub struct HopReport {
    /// The broadcast's trace id.
    pub trace_id: u64,
    /// The origin node, if its record was collected.
    pub origin: Option<u32>,
    /// Nodes that delivered.
    pub delivered: usize,
    /// Nodes that were expected to deliver (the survivor set).
    pub expected: usize,
    /// Largest recorded hop count.
    pub max_hops: u32,
    /// Depth of the reconstructed spanning tree.
    pub tree_depth: u32,
    /// Theoretical hop bound the trace is checked against.
    pub hop_bound: f64,
    /// Whether the records form a spanning tree over the expected nodes.
    pub spanning: bool,
    /// End-to-end µs from origin delivery to last delivery.
    pub eccentricity_us: u64,
    /// Mean per-hop µs over resolvable parent/child pairs.
    pub hop_latency_mean_us: f64,
    /// Max per-hop µs over resolvable parent/child pairs.
    pub hop_latency_max_us: u64,
}

impl HopReport {
    /// `true` when the realized tree spans the survivors within the bound —
    /// the paper's "flooding stays logarithmic under failures" check.
    #[must_use]
    pub fn within_bound(&self) -> bool {
        self.spanning && f64::from(self.max_hops) <= self.hop_bound
    }

    /// Renders the report as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let origin = self
            .origin
            .map_or_else(|| "null".to_owned(), |o| o.to_string());
        format!(
            "{{\"trace_id\":{},\"origin\":{origin},\"delivered\":{},\"expected\":{},\
             \"max_hops\":{},\"tree_depth\":{},\"hop_bound\":{:.2},\"spanning\":{},\
             \"eccentricity_us\":{},\"hop_latency_mean_us\":{:.1},\"hop_latency_max_us\":{}}}",
            self.trace_id,
            self.delivered,
            self.expected,
            self.max_hops,
            self.tree_depth,
            self.hop_bound,
            self.spanning,
            self.eccentricity_us,
            self.hop_latency_mean_us,
            self.hop_latency_max_us
        )
    }

    /// Header row matching [`HopReport::table_row`].
    #[must_use]
    pub fn table_header() -> String {
        format!(
            "{:>18} {:>6} {:>11} {:>8} {:>6} {:>8} {:>12} {:>12}",
            "trace", "origin", "delivered", "maxhops", "bound", "spanning", "e2e µs", "hop µs(max)"
        )
    }

    /// One aligned human-readable table row.
    #[must_use]
    pub fn table_row(&self) -> String {
        format!(
            "{:>#18x} {:>6} {:>5}/{:<5} {:>8} {:>6.1} {:>8} {:>12} {:>12}",
            self.trace_id,
            self.origin
                .map_or_else(|| "?".to_owned(), |o| o.to_string()),
            self.delivered,
            self.expected,
            self.max_hops,
            self.hop_bound,
            self.spanning,
            self.eccentricity_us,
            self.hop_latency_max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace_id: u64, node: u32, parent: Option<u32>, hops: u32, at_us: u64) -> PathRecord {
        PathRecord {
            trace_id,
            node,
            parent,
            hops,
            at_us,
        }
    }

    /// A 4-node star broadcast: 0 → {1, 2}, 1 → 3.
    fn star_trace() -> BroadcastTrace {
        let c = TraceCollector::new();
        c.record(rec(7, 0, None, 0, 0));
        c.record(rec(7, 1, Some(0), 1, 100));
        c.record(rec(7, 2, Some(0), 1, 150));
        c.record(rec(7, 3, Some(1), 2, 260));
        c.trace(7).unwrap()
    }

    #[test]
    fn tree_reconstruction_finds_origin_and_paths() {
        let t = star_trace();
        assert_eq!(t.origin(), Some(0));
        assert_eq!(t.delivered_nodes(), BTreeSet::from([0, 1, 2, 3]));
        assert_eq!(t.path_from_origin(3), Some(vec![0, 1, 3]));
        assert_eq!(t.path_from_origin(2), Some(vec![0, 2]));
        assert_eq!(t.path_from_origin(0), Some(vec![0]));
        assert_eq!(t.path_from_origin(9), None, "node 9 never delivered");
        assert_eq!(t.max_hops(), 2);
        assert_eq!(t.tree_depth(), 2);
    }

    #[test]
    fn spanning_check_tracks_expected_set() {
        let t = star_trace();
        assert!(t.is_spanning(&BTreeSet::from([0, 1, 2, 3])));
        assert!(t.is_spanning(&BTreeSet::from([0, 3])));
        assert!(!t.is_spanning(&BTreeSet::from([0, 1, 4])), "4 missing");
    }

    #[test]
    fn latency_summaries() {
        let t = star_trace();
        let mut hops = t.per_hop_latencies_us();
        hops.sort_unstable();
        assert_eq!(hops, vec![100, 150, 160]);
        assert_eq!(t.eccentricity_us(), 260);
    }

    #[test]
    fn duplicate_records_keep_the_earliest() {
        let c = TraceCollector::new();
        c.record(rec(1, 0, None, 0, 0));
        c.record(rec(1, 1, Some(0), 1, 300));
        c.record(rec(1, 1, Some(0), 4, 100)); // earlier copy wins
        let t = c.trace(1).unwrap();
        assert_eq!(t.delivery(1).unwrap().at_us, 100);
        assert_eq!(t.max_hops(), 4);
    }

    #[test]
    fn cyclic_parent_chains_are_rejected_not_looped() {
        let c = TraceCollector::new();
        c.record(rec(2, 1, Some(2), 1, 10));
        c.record(rec(2, 2, Some(1), 1, 10));
        let t = c.trace(2).unwrap();
        assert_eq!(t.path_from_origin(1), None);
        assert!(!t.is_spanning(&BTreeSet::from([1, 2])));
    }

    #[test]
    fn traces_group_by_id() {
        let c = TraceCollector::new();
        c.record(rec(5, 0, None, 0, 0));
        c.record(rec(9, 3, None, 0, 50));
        c.record(rec(5, 1, Some(0), 1, 90));
        let traces = c.traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].trace_id, 5);
        assert_eq!(traces[0].delivered_nodes().len(), 2);
        assert_eq!(traces[1].trace_id, 9);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn report_flags_bound_violations() {
        let t = star_trace();
        let all = BTreeSet::from([0, 1, 2, 3]);
        let ok = t.report(&all, 3.0);
        assert!(ok.within_bound());
        assert_eq!(ok.delivered, 4);
        assert_eq!(ok.max_hops, 2);
        let tight = t.report(&all, 1.5);
        assert!(!tight.within_bound(), "max_hops 2 exceeds bound 1.5");
        let missing = t.report(&BTreeSet::from([0, 1, 2, 3, 4]), 10.0);
        assert!(!missing.within_bound(), "not spanning");
    }

    #[test]
    fn json_rendering_round_trips_key_fields() {
        let t = star_trace();
        let json = t.report(&BTreeSet::from([0, 1, 2, 3]), 5.0).to_json();
        assert!(json.contains("\"trace_id\":7"));
        assert!(json.contains("\"origin\":0"));
        assert!(json.contains("\"spanning\":true"));
        assert!(json.contains("\"max_hops\":2"));
        let r = rec(7, 1, None, 0, 3);
        assert!(r.to_json().contains("\"parent\":null"));
    }

    #[test]
    fn table_rows_align_with_header() {
        let t = star_trace();
        let header = HopReport::table_header();
        let row = t.report(&BTreeSet::from([0, 1, 2, 3]), 5.0).table_row();
        assert!(!header.is_empty() && !row.is_empty());
        assert!(row.contains("0x7"));
    }
}
