//! Flight recorder and causal broadcast tracing for the LHG runtime.
//!
//! Two complementary observability primitives for the overlays of
//! Jenkins & Demers' *Logarithmic Harary Graphs*:
//!
//! * **Flight recorder** ([`FlightRecorder`]): a per-node, fixed-capacity
//!   ring of structured [`Event`]s — link lifecycle, wire traffic, failure
//!   detection, healing, and broadcast delivery — appended with a single
//!   atomic plus one uncontended per-slot lock, and dumpable as JSONL.
//! * **Causal tracing** ([`TraceCollector`]): every traced broadcast
//!   carries a trace id on the wire; each delivery contributes a
//!   [`PathRecord`] naming the parent the winning copy arrived from. The
//!   collector reconstructs the realized dissemination tree per broadcast
//!   ([`BroadcastTrace`]) and checks it against the paper's guarantees:
//!   spanning over the survivors, hop count within the O(log n) diameter
//!   bound ([`HopReport`]).
//!
//! The crate is deliberately dependency-free so it can sit under every
//! other crate in the workspace (net, runtime, flood, cli) without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod event;
mod recorder;

pub use collector::{BroadcastTrace, HopReport, PathRecord, TraceCollector};
pub use event::{Event, EventKind};
pub use recorder::{merge_timelines, FlightRecorder, DEFAULT_CAPACITY};
