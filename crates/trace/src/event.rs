//! The structured event taxonomy recorded by the flight recorder.
//!
//! Every observable state transition of a runtime node maps to exactly one
//! [`EventKind`]. The taxonomy deliberately mirrors the runtime's layers:
//! link lifecycle (connect/disconnect), wire traffic (frame tx/rx,
//! heartbeat), failure handling (suspicion, crash report, heal begin/end)
//! and the broadcast data plane (accept/forward/deliver). Events are plain
//! `Copy` data — recording one is a couple of word writes, never an
//! allocation.

use std::fmt;

/// What happened. Peer/victim ids are the runtime's member ids narrowed to
/// `u32` (the runtime caps membership far below that).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A TCP link to `peer` came up (either side: dial or accept).
    Connect {
        /// The remote member.
        peer: u32,
    },
    /// The link to `peer` went down (EOF, I/O error, or teardown).
    Disconnect {
        /// The remote member.
        peer: u32,
    },
    /// One frame was written to `peer`.
    FrameTx {
        /// The remote member.
        peer: u32,
        /// Encoded frame size, including the length prefix.
        bytes: u32,
    },
    /// One frame was received from `peer`.
    FrameRx {
        /// The remote member.
        peer: u32,
        /// Encoded frame size, including the length prefix.
        bytes: u32,
    },
    /// A liveness probe from `peer` was received.
    Heartbeat {
        /// The probing member.
        peer: u32,
    },
    /// The local failure detector declared `peer` silent past the timeout.
    Suspicion {
        /// The suspected member.
        peer: u32,
    },
    /// A crash announcement for `victim` was processed; `via` is the member
    /// it was learned from (the node's own id when locally detected).
    CrashReport {
        /// The member reported crashed.
        victim: u32,
        /// Who told us (self id = local detection).
        via: u32,
    },
    /// Healing around `victim` started (overlay rebuild + link churn).
    HealBegin {
        /// The crashed member being healed around.
        victim: u32,
    },
    /// Every desired link is live again; healing took `took_us` µs.
    HealEnd {
        /// Wall-clock healing duration in microseconds.
        took_us: u64,
    },
    /// This node originated (and locally delivered) broadcast `trace_id`.
    BroadcastAccept {
        /// Trace id of the broadcast.
        trace_id: u64,
    },
    /// This node forwarded broadcast `trace_id` to its other neighbors.
    BroadcastForward {
        /// Trace id of the broadcast.
        trace_id: u64,
        /// Hop count of the copy being forwarded.
        hops: u32,
    },
    /// First receipt of broadcast `trace_id`: delivered to the application.
    BroadcastDeliver {
        /// Trace id of the broadcast.
        trace_id: u64,
        /// The neighbor the winning copy arrived from.
        from: u32,
        /// Hops the winning copy travelled.
        hops: u32,
    },
    /// `member` announced itself (back) into the overlay; this node
    /// admitted it and is flooding the join onward.
    JoinAnnounce {
        /// The joining member.
        member: u32,
    },
    /// Suspected failures exceeded k−1: the node stopped healing and
    /// entered degraded mode with `active` suspected crashes outstanding.
    Degraded {
        /// Suspected crash count when degradation began.
        active: u32,
    },
    /// Suspected failures fell back within the k−1 budget; normal healing
    /// resumed.
    DegradedExit,
    /// This node rebuilt its overlay from a membership sync served by
    /// `via` and re-admitted itself (the rejoin handshake).
    SyncRejoin {
        /// The member that served the membership snapshot.
        via: u32,
    },
    /// Fault injection removed an outbound frame to `peer` (chaos runs).
    FaultDrop {
        /// The intended recipient.
        peer: u32,
    },
}

impl EventKind {
    /// Stable snake_case name used in JSONL output and filters.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Connect { .. } => "connect",
            EventKind::Disconnect { .. } => "disconnect",
            EventKind::FrameTx { .. } => "frame_tx",
            EventKind::FrameRx { .. } => "frame_rx",
            EventKind::Heartbeat { .. } => "heartbeat",
            EventKind::Suspicion { .. } => "suspicion",
            EventKind::CrashReport { .. } => "crash_report",
            EventKind::HealBegin { .. } => "heal_begin",
            EventKind::HealEnd { .. } => "heal_end",
            EventKind::BroadcastAccept { .. } => "broadcast_accept",
            EventKind::BroadcastForward { .. } => "broadcast_forward",
            EventKind::BroadcastDeliver { .. } => "broadcast_deliver",
            EventKind::JoinAnnounce { .. } => "join_announce",
            EventKind::Degraded { .. } => "degraded",
            EventKind::DegradedExit => "degraded_exit",
            EventKind::SyncRejoin { .. } => "sync_rejoin",
            EventKind::FaultDrop { .. } => "fault_drop",
        }
    }

    /// `true` for the per-frame traffic events (tx/rx/heartbeat) that
    /// dominate volume; timelines for humans usually filter these out.
    #[must_use]
    pub fn is_traffic(&self) -> bool {
        matches!(
            self,
            EventKind::FrameTx { .. }
                | EventKind::FrameRx { .. }
                | EventKind::Heartbeat { .. }
                | EventKind::FaultDrop { .. }
        )
    }

    /// The event's payload as (field, value) pairs, in JSONL field order.
    #[must_use]
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            EventKind::Connect { peer }
            | EventKind::Disconnect { peer }
            | EventKind::Heartbeat { peer }
            | EventKind::Suspicion { peer } => vec![("peer", u64::from(peer))],
            EventKind::FrameTx { peer, bytes } | EventKind::FrameRx { peer, bytes } => {
                vec![("peer", u64::from(peer)), ("bytes", u64::from(bytes))]
            }
            EventKind::CrashReport { victim, via } => {
                vec![("victim", u64::from(victim)), ("via", u64::from(via))]
            }
            EventKind::HealBegin { victim } => vec![("victim", u64::from(victim))],
            EventKind::HealEnd { took_us } => vec![("took_us", took_us)],
            EventKind::BroadcastAccept { trace_id } => vec![("trace_id", trace_id)],
            EventKind::BroadcastForward { trace_id, hops } => {
                vec![("trace_id", trace_id), ("hops", u64::from(hops))]
            }
            EventKind::BroadcastDeliver {
                trace_id,
                from,
                hops,
            } => vec![
                ("trace_id", trace_id),
                ("from", u64::from(from)),
                ("hops", u64::from(hops)),
            ],
            EventKind::JoinAnnounce { member } => vec![("member", u64::from(member))],
            EventKind::Degraded { active } => vec![("active", u64::from(active))],
            EventKind::DegradedExit => Vec::new(),
            EventKind::SyncRejoin { via } => vec![("via", u64::from(via))],
            EventKind::FaultDrop { peer } => vec![("peer", u64::from(peer))],
        }
    }
}

/// One recorded event: where and when, plus what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Per-recorder append sequence number (gaps mean ring overwrites).
    pub seq: u64,
    /// Microseconds since the recorder's epoch (monotonic clock).
    pub at_us: u64,
    /// The recording node's member id.
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"at_us\":{},\"node\":{},\"event\":\"{}\"",
            self.seq,
            self.at_us,
            self.node,
            self.kind.name()
        );
        for (field, value) in self.kind.fields() {
            s.push_str(&format!(",\"{field}\":{value}"));
        }
        s.push('}');
        s
    }
}

impl fmt::Display for Event {
    /// Human one-liner: `[   1234µs] node  3  broadcast_deliver trace_id=.. `.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}µs] node {:>3}  {:<17}",
            self.at_us,
            self.node,
            self.kind.name()
        )?;
        for (field, value) in self.kind.fields() {
            write!(f, " {field}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_snake_case() {
        let kinds = [
            EventKind::Connect { peer: 1 },
            EventKind::Disconnect { peer: 1 },
            EventKind::FrameTx { peer: 1, bytes: 2 },
            EventKind::FrameRx { peer: 1, bytes: 2 },
            EventKind::Heartbeat { peer: 1 },
            EventKind::Suspicion { peer: 1 },
            EventKind::CrashReport { victim: 1, via: 2 },
            EventKind::HealBegin { victim: 1 },
            EventKind::HealEnd { took_us: 7 },
            EventKind::BroadcastAccept { trace_id: 9 },
            EventKind::BroadcastForward {
                trace_id: 9,
                hops: 1,
            },
            EventKind::BroadcastDeliver {
                trace_id: 9,
                from: 2,
                hops: 3,
            },
            EventKind::JoinAnnounce { member: 4 },
            EventKind::Degraded { active: 3 },
            EventKind::DegradedExit,
            EventKind::SyncRejoin { via: 2 },
            EventKind::FaultDrop { peer: 6 },
        ];
        for k in kinds {
            assert!(!k.name().is_empty());
            assert!(k.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn traffic_classification() {
        assert!(EventKind::FrameTx { peer: 0, bytes: 1 }.is_traffic());
        assert!(EventKind::Heartbeat { peer: 0 }.is_traffic());
        assert!(!EventKind::Suspicion { peer: 0 }.is_traffic());
        assert!(!EventKind::BroadcastAccept { trace_id: 0 }.is_traffic());
        assert!(EventKind::FaultDrop { peer: 0 }.is_traffic());
        assert!(!EventKind::Degraded { active: 2 }.is_traffic());
        assert!(!EventKind::SyncRejoin { via: 1 }.is_traffic());
        assert!(!EventKind::JoinAnnounce { member: 1 }.is_traffic());
    }

    #[test]
    fn json_rendering_is_one_flat_object() {
        let e = Event {
            seq: 5,
            at_us: 1_000,
            node: 2,
            kind: EventKind::BroadcastDeliver {
                trace_id: 42,
                from: 1,
                hops: 3,
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"seq\":5,\"at_us\":1000,\"node\":2,\"event\":\"broadcast_deliver\",\
             \"trace_id\":42,\"from\":1,\"hops\":3}"
        );
    }

    #[test]
    fn display_contains_fields() {
        let e = Event {
            seq: 0,
            at_us: 12,
            node: 1,
            kind: EventKind::CrashReport { victim: 7, via: 1 },
        };
        let line = e.to_string();
        assert!(line.contains("crash_report"));
        assert!(line.contains("victim=7"));
        assert!(line.contains("via=1"));
    }
}
