//! The flight recorder: a fixed-capacity ring buffer of [`Event`]s.
//!
//! Append is the hot path — it runs on every frame a node sends or
//! receives — so it is a single `fetch_add` on the ring head plus one
//! uncontended per-slot mutex write (each slot has its own lock, and two
//! appends only meet on a slot after a full lap of the ring). There is no
//! global lock, no allocation, and no I/O; reading the buffer back is the
//! cold path used by dumps and reports.
//!
//! When the ring is full the oldest events are overwritten — a flight
//! recorder keeps the *recent* past, and [`FlightRecorder::dropped`]
//! reports how much history was lost.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::{Event, EventKind};

/// Default ring capacity: enough for the full lifecycle of the test-sized
/// clusters (heartbeats included) without unbounded growth.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One ring slot: the sequence stamp tells readers whether the slot holds a
/// fresh or an overwritten-generation event.
struct Slot {
    event: Mutex<Option<Event>>,
}

/// A per-node, fixed-capacity, lock-light event ring.
pub struct FlightRecorder {
    node: u32,
    epoch: Instant,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl FlightRecorder {
    /// Creates a recorder for `node` with [`DEFAULT_CAPACITY`] slots; the
    /// epoch (time zero of `at_us`) is `Instant::now()`.
    #[must_use]
    pub fn new(node: u32) -> Self {
        FlightRecorder::with_capacity(node, DEFAULT_CAPACITY, Instant::now())
    }

    /// Creates a recorder with an explicit capacity and epoch. Recorders
    /// that will be merged (one per cluster node) must share the epoch so
    /// their timestamps are comparable.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(node: u32, capacity: usize, epoch: Instant) -> Self {
        assert!(capacity > 0, "flight recorder needs at least one slot");
        let slots = (0..capacity)
            .map(|_| Slot {
                event: Mutex::new(None),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FlightRecorder {
            node,
            epoch,
            head: AtomicU64::new(0),
            slots,
        }
    }

    /// The recording node's member id.
    #[must_use]
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Microseconds elapsed since the recorder's epoch.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records one event, stamped with the current time.
    pub fn record(&self, kind: EventKind) {
        self.record_at(self.now_us(), kind);
    }

    /// Records one event with an explicit timestamp (simulators pass
    /// virtual time).
    pub fn record_at(&self, at_us: u64, kind: EventKind) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // Uncontended except when two appends race a full ring lap apart;
        // a poisoned lock (panicking recorder elsewhere) just drops the event.
        if let Ok(mut guard) = slot.event.lock() {
            *guard = Some(Event {
                seq,
                at_us,
                node: self.node,
                kind,
            });
        }
    }

    /// Total events ever appended (including overwritten ones).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events lost to ring overwrites so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.appended().saturating_sub(self.slots.len() as u64)
    }

    /// The retained events in append order (oldest surviving first).
    ///
    /// Concurrent appends may overwrite slots mid-read; the snapshot is
    /// consistent per event (each slot is read under its lock) and ordered
    /// by sequence number.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let mut out: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|s| s.event.lock().ok().and_then(|g| *g))
            .collect();
        out.sort_unstable_by_key(|e| e.seq);
        out
    }

    /// The retained events as JSONL (one JSON object per line).
    #[must_use]
    pub fn events_jsonl(&self) -> String {
        let mut s = String::new();
        for e in self.events() {
            s.push_str(&e.to_json());
            s.push('\n');
        }
        s
    }

    /// Writes the retained events as JSONL to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file creation and write errors.
    pub fn dump_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.events_jsonl().as_bytes())?;
        f.flush()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("node", &self.node)
            .field("capacity", &self.slots.len())
            .field("appended", &self.appended())
            .finish_non_exhaustive()
    }
}

/// Merges events from several recorders (sharing an epoch) into one
/// timeline, ordered by timestamp with (node, seq) tie-breaks.
#[must_use]
pub fn merge_timelines<'a>(recorders: impl IntoIterator<Item = &'a FlightRecorder>) -> Vec<Event> {
    let mut out: Vec<Event> = recorders.into_iter().flat_map(|r| r.events()).collect();
    out.sort_unstable_by_key(|e| (e.at_us, e.node, e.seq));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let r = FlightRecorder::new(3);
        for peer in 0..5 {
            r.record(EventKind::Connect { peer });
        }
        let events = r.events();
        assert_eq!(events.len(), 5);
        assert_eq!(r.appended(), 5);
        assert_eq!(r.dropped(), 0);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.node, 3);
            assert_eq!(e.kind, EventKind::Connect { peer: i as u32 });
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = FlightRecorder::with_capacity(0, 4, Instant::now());
        for peer in 0..10u32 {
            r.record(EventKind::Heartbeat { peer });
        }
        let events = r.events();
        assert_eq!(events.len(), 4);
        assert_eq!(r.dropped(), 6);
        let peers: Vec<u32> = events
            .iter()
            .map(|e| match e.kind {
                EventKind::Heartbeat { peer } => peer,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(peers, vec![6, 7, 8, 9], "only the newest survive");
    }

    #[test]
    fn timestamps_are_monotone() {
        let r = FlightRecorder::new(0);
        r.record(EventKind::Connect { peer: 1 });
        std::thread::sleep(std::time::Duration::from_millis(2));
        r.record(EventKind::Disconnect { peer: 1 });
        let e = r.events();
        assert!(e[1].at_us >= e[0].at_us + 1_000, "≥1ms apart");
    }

    #[test]
    fn concurrent_appends_lose_nothing_within_capacity() {
        let r = std::sync::Arc::new(FlightRecorder::with_capacity(0, 4096, Instant::now()));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..256u32 {
                        r.record(EventKind::FrameTx { peer: t, bytes: i });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.appended(), 8 * 256);
        assert_eq!(r.events().len(), 8 * 256, "capacity was never exceeded");
        // All sequence numbers distinct.
        let mut seqs: Vec<u64> = r.events().iter().map(|e| e.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 8 * 256);
    }

    #[test]
    fn jsonl_has_one_object_per_line() {
        let r = FlightRecorder::new(1);
        r.record(EventKind::Connect { peer: 2 });
        r.record(EventKind::Suspicion { peer: 2 });
        let jsonl = r.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[1].contains("\"event\":\"suspicion\""));
    }

    #[test]
    fn dump_writes_the_file() {
        let r = FlightRecorder::new(0);
        r.record(EventKind::HealEnd { took_us: 99 });
        let path = std::env::temp_dir().join("lhg_trace_recorder_dump_test.jsonl");
        r.dump_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"took_us\":99"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merged_timeline_is_time_ordered() {
        let epoch = Instant::now();
        let a = FlightRecorder::with_capacity(0, 16, epoch);
        let b = FlightRecorder::with_capacity(1, 16, epoch);
        a.record_at(30, EventKind::Connect { peer: 1 });
        b.record_at(10, EventKind::Connect { peer: 0 });
        a.record_at(20, EventKind::Heartbeat { peer: 1 });
        let merged = merge_timelines([&a, &b]);
        let times: Vec<u64> = merged.iter().map(|e| e.at_us).collect();
        assert_eq!(times, vec![10, 20, 30]);
        assert_eq!(merged[0].node, 1);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_is_rejected() {
        let _ = FlightRecorder::with_capacity(0, 0, Instant::now());
    }
}
