//! # lhg-cli
//!
//! Command-line tools for the LHG library. The `lhg` binary exposes:
//!
//! ```text
//! lhg generate  --constraint ktree|kdiamond|jd|harary --n N --k K [--format dot|edges|summary]
//! lhg validate  --k K [--file PATH]           # reads an edge list
//! lhg plan      --n N --f F                   # topology recommendation
//! lhg flood     --n N --k K [--failures F] [--trials T] [--constraint C]
//! lhg census    --k K [--max-n N]             # EX/REG table
//! ```
//!
//! All logic lives in [`run`], which writes to any `io::Write` — the tests
//! drive it with string buffers; the binary passes stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;

use lhg_baselines::harary::{harary_exists, harary_graph};
use lhg_core::existence::{ex_jd, ex_ktree};
use lhg_core::jd::build_jd;
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_core::planner::plan;
use lhg_core::properties::validate;
use lhg_core::regularity::{reg_kdiamond, reg_ktree};
use lhg_flood::engine::Protocol;
use lhg_flood::experiment::{run_trials, FailureMode};
use lhg_graph::io::{from_edge_list, to_dot, to_edge_list};
use lhg_graph::Graph;

/// A CLI failure: message plus suggested exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
    }
}

/// Parsed `--key value` options plus positional arguments.
#[derive(Debug, Default)]
struct Options {
    flags: BTreeMap<String, String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, CliError> {
        let mut flags = BTreeMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(err(format!("unexpected positional argument {arg:?}")));
            };
            let value = it
                .next()
                .ok_or_else(|| err(format!("--{key} requires a value")))?;
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Options { flags })
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        let raw = self
            .flags
            .get(key)
            .ok_or_else(|| err(format!("missing required option --{key}")))?;
        raw.parse()
            .map_err(|_| err(format!("invalid value {raw:?} for --{key}")))
    }

    fn optional<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| err(format!("invalid value {raw:?} for --{key}"))),
        }
    }

    fn string(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

fn build_topology(constraint: &str, n: usize, k: usize) -> Result<Graph, CliError> {
    match constraint {
        "ktree" => Ok(build_ktree(n, k)
            .map_err(|e| err(e.to_string()))?
            .into_graph()),
        "kdiamond" => Ok(build_kdiamond(n, k)
            .map_err(|e| err(e.to_string()))?
            .into_graph()),
        "jd" => Ok(build_jd(n, k).map_err(|e| err(e.to_string()))?.into_graph()),
        "harary" => {
            if !harary_exists(n, k) {
                return Err(err(format!("H({k},{n}) is not defined")));
            }
            Ok(harary_graph(n, k))
        }
        other => Err(err(format!(
            "unknown constraint {other:?} (expected ktree, kdiamond, jd or harary)"
        ))),
    }
}

/// The usage text printed by `lhg help`.
pub const USAGE: &str = "\
lhg — Logarithmic Harary Graph tools

USAGE:
  lhg generate --constraint ktree|kdiamond|jd|harary --n N --k K [--format dot|edges|summary]
  lhg validate --k K [--file PATH]    (omit --file to read stdin)
  lhg plan     --n N --f F
  lhg flood    --n N --k K [--failures F] [--trials T] [--constraint C] [--seed S]
  lhg census   --k K [--max-n N]
  lhg help
";

/// Executes one CLI invocation (`args` excludes the program name), writing
/// results to `out`.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands, malformed options, or
/// out-of-domain parameters; the binary prints it to stderr and exits 1.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(err(format!("no command given\n{USAGE}")));
    };
    let io_err = |e: std::io::Error| err(format!("write failed: {e}"));
    match command.as_str() {
        "help" | "--help" | "-h" => {
            out.write_all(USAGE.as_bytes()).map_err(io_err)?;
            Ok(())
        }
        "generate" => {
            let opts = Options::parse(rest)?;
            let n: usize = opts.required("n")?;
            let k: usize = opts.required("k")?;
            let constraint = opts.string("constraint", "kdiamond");
            let g = build_topology(&constraint, n, k)?;
            match opts.string("format", "edges").as_str() {
                "dot" => {
                    write!(out, "{}", to_dot(&g, &format!("{constraint}_{n}_{k}"))).map_err(io_err)
                }
                "edges" => write!(out, "{}", to_edge_list(&g)).map_err(io_err),
                "summary" => {
                    let report = validate(&g, k);
                    writeln!(
                        out,
                        "{constraint} (n={n}, k={k}): {} edges (bound {}), diameter {:?}, \
                         LHG={}, regular={}",
                        report.edge_count,
                        report.edge_lower_bound,
                        report.diameter,
                        report.is_lhg(),
                        report.regular
                    )
                    .map_err(io_err)
                }
                other => Err(err(format!("unknown format {other:?}"))),
            }
        }
        "validate" => {
            let opts = Options::parse(rest)?;
            let k: usize = opts.required("k")?;
            let text = match opts.flags.get("file") {
                Some(path) => std::fs::read_to_string(path)
                    .map_err(|e| err(format!("cannot read {path}: {e}")))?,
                None => {
                    let mut buf = String::new();
                    std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                        .map_err(|e| err(format!("cannot read stdin: {e}")))?;
                    buf
                }
            };
            let g = from_edge_list(&text).map_err(|e| err(e.to_string()))?;
            let report = validate(&g, k);
            writeln!(
                out,
                "n={} edges={} | P1 node-connectivity: {} | P2 link-connectivity: {} | \
                 P3 minimality: {} | P4 log-diameter: {} (d={:?} bound={:.1}) | \
                 P5 regular: {} | LHG: {}",
                report.n,
                report.edge_count,
                report.node_connectivity_ok,
                report.link_connectivity_ok,
                report.link_minimal,
                report.logarithmic_diameter,
                report.diameter,
                report.diameter_bound,
                report.regular,
                report.is_lhg()
            )
            .map_err(io_err)
        }
        "plan" => {
            let opts = Options::parse(rest)?;
            let n: usize = opts.required("n")?;
            let f: usize = opts.required("f")?;
            let (p, _) = plan(n, f).map_err(|e| err(e.to_string()))?;
            writeln!(
                out,
                "plan for n={n}, f={f}: use {} at k={} — {} edges ({} over the ⌈kn/2⌉ bound), \
                 regular={}; nearest regular sizes: {} and {}",
                p.constraint,
                p.k,
                p.edges,
                p.edge_overhead(),
                p.regular,
                p.nearest_regular.0,
                p.nearest_regular.1
            )
            .map_err(io_err)
        }
        "flood" => {
            let opts = Options::parse(rest)?;
            let n: usize = opts.required("n")?;
            let k: usize = opts.required("k")?;
            let failures: usize = opts.optional("failures", k - 1)?;
            let trials: usize = opts.optional("trials", 50)?;
            let seed: u64 = opts.optional("seed", 42)?;
            let constraint = opts.string("constraint", "kdiamond");
            let g = build_topology(&constraint, n, k)?;
            let mode = if failures == 0 {
                FailureMode::None
            } else {
                FailureMode::RandomNodes { count: failures }
            };
            let stats = run_trials(&g, Protocol::Flood, mode, trials, seed);
            writeln!(
                out,
                "flooding {constraint} (n={n}, k={k}) with {failures} random crashes, \
                 {trials} trials: reliability {:.3}, mean rounds {:.2}, mean messages {:.1}",
                stats.reliability, stats.mean_rounds, stats.mean_messages
            )
            .map_err(io_err)
        }
        "census" => {
            let opts = Options::parse(rest)?;
            let k: usize = opts.required("k")?;
            let max_n: usize = opts.optional("max-n", 4 * k + 10)?;
            writeln!(
                out,
                "n: EX(JD) EX(K-TREE/K-DIAMOND) REG(K-TREE) REG(K-DIAMOND)"
            )
            .map_err(io_err)?;
            for n in (k + 1)..=max_n {
                writeln!(
                    out,
                    "{n:>4}: {:>6} {:>21} {:>11} {:>14}",
                    ex_jd(n, k),
                    ex_ktree(n, k),
                    reg_ktree(n, k),
                    reg_kdiamond(n, k)
                )
                .map_err(io_err)?;
            }
            Ok(())
        }
        other => Err(err(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let out = run_to_string(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("generate"));
    }

    #[test]
    fn generate_edges_round_trips() {
        let out =
            run_to_string(&["generate", "--constraint", "ktree", "--n", "10", "--k", "3"]).unwrap();
        let g = from_edge_list(&out).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
    }

    #[test]
    fn generate_dot_and_summary() {
        let dot = run_to_string(&[
            "generate",
            "--constraint",
            "kdiamond",
            "--n",
            "8",
            "--k",
            "3",
            "--format",
            "dot",
        ])
        .unwrap();
        assert!(dot.starts_with("graph kdiamond_8_3"));

        let sum = run_to_string(&[
            "generate",
            "--constraint",
            "kdiamond",
            "--n",
            "8",
            "--k",
            "3",
            "--format",
            "summary",
        ])
        .unwrap();
        assert!(sum.contains("LHG=true"), "{sum}");
        assert!(sum.contains("regular=true"), "{sum}");
    }

    #[test]
    fn generate_harary_works() {
        let out = run_to_string(&[
            "generate",
            "--constraint",
            "harary",
            "--n",
            "9",
            "--k",
            "3",
            "--format",
            "summary",
        ])
        .unwrap();
        assert!(out.contains("14 edges"), "{out}");
    }

    #[test]
    fn generate_rejects_bad_inputs() {
        assert!(run_to_string(&["generate", "--n", "10"]).is_err());
        assert!(run_to_string(&["generate", "--n", "x", "--k", "3"]).is_err());
        assert!(
            run_to_string(&["generate", "--constraint", "nope", "--n", "10", "--k", "3"]).is_err()
        );
        assert!(
            run_to_string(&["generate", "--n", "5", "--k", "3"]).is_err(),
            "below 2k"
        );
    }

    #[test]
    fn validate_reads_a_file() {
        let g = build_ktree(10, 3).unwrap().into_graph();
        let path = std::env::temp_dir().join("lhg_cli_validate_test.edges");
        std::fs::write(&path, to_edge_list(&g)).unwrap();
        let out =
            run_to_string(&["validate", "--k", "3", "--file", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("LHG: true"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plan_recommends_kdiamond() {
        let out = run_to_string(&["plan", "--n", "30", "--f", "2"]).unwrap();
        assert!(out.contains("K-DIAMOND"), "{out}");
        assert!(out.contains("regular=true"), "{out}");
        assert!(run_to_string(&["plan", "--n", "5", "--f", "2"]).is_err());
    }

    #[test]
    fn flood_reports_full_reliability_at_k_minus_1() {
        let out = run_to_string(&[
            "flood",
            "--n",
            "20",
            "--k",
            "3",
            "--failures",
            "2",
            "--trials",
            "10",
        ])
        .unwrap();
        assert!(out.contains("reliability 1.000"), "{out}");
    }

    #[test]
    fn census_prints_the_table() {
        let out = run_to_string(&["census", "--k", "3", "--max-n", "12"]).unwrap();
        assert!(out.lines().count() >= 9);
        assert!(out.contains("REG(K-DIAMOND)"));
    }

    #[test]
    fn unknown_command_fails_with_usage() {
        let e = run_to_string(&["frobnicate"]).unwrap_err();
        assert!(e.message.contains("USAGE"));
        let e = run_to_string(&[]).unwrap_err();
        assert!(e.message.contains("no command"));
    }

    #[test]
    fn option_parser_rejects_positional_and_dangling() {
        assert!(run_to_string(&["generate", "positional"]).is_err());
        assert!(run_to_string(&["generate", "--n"]).is_err());
    }
}
