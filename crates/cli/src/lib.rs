//! # lhg-cli
//!
//! Command-line tools for the LHG library. The `lhg` binary exposes:
//!
//! ```text
//! lhg generate  --constraint ktree|kdiamond|jd|harary --n N --k K [--format dot|edges|summary]
//! lhg validate  --k K [--file PATH]           # reads an edge list
//! lhg plan      --n N --f F                   # topology recommendation
//! lhg flood     --n N --k K [--failures F] [--trials T] [--constraint C]
//! lhg census    --k K [--max-n N]             # EX/REG table
//! lhg cluster   --nodes N --k K [--kill F]    # real-socket self-healing run
//! lhg observe   --nodes N --k K [--kill F]    # traced run: timeline + hop report
//! lhg chaos     --seeds N [--engine E]        # seeded fault-injection sweep
//! lhg byzantine --nodes N --k K [--traitor B] # Bracha broadcast vs. a live traitor
//! lhg top       --nodes N --k K [--json]      # live cluster telemetry by message class
//! lhg bench     --compare FILE                # perf-regression gate vs a recorded baseline
//! ```
//!
//! All logic lives in [`run`], which writes to any `io::Write` — the tests
//! drive it with string buffers; the binary passes stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;

use lhg_baselines::harary::{harary_exists, harary_graph};
use lhg_core::existence::{ex_jd, ex_ktree};
use lhg_core::jd::build_jd;
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_core::planner::plan;
use lhg_core::properties::validate;
use lhg_core::regularity::{reg_kdiamond, reg_ktree};
use lhg_core::Constraint;
use lhg_flood::engine::Protocol;
use lhg_flood::experiment::{run_trials, FailureMode};
use lhg_graph::io::{from_edge_list, to_dot, to_edge_list};
use lhg_graph::Graph;

/// A CLI failure: message plus suggested exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
    }
}

/// Parsed `--key value` options plus positional arguments.
#[derive(Debug, Default)]
struct Options {
    flags: BTreeMap<String, String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, CliError> {
        Options::parse_with_switches(args, &[])
    }

    /// Like [`Options::parse`], but keys listed in `switches` are bare
    /// boolean flags (`--quick`) that take no value and parse as `true`.
    fn parse_with_switches(args: &[String], switches: &[&str]) -> Result<Options, CliError> {
        let mut flags = BTreeMap::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            // `--key value` canonically; a single-dash short form (`-k 3`)
            // is accepted as the same key.
            let Some(key) = arg.strip_prefix("--").or_else(|| arg.strip_prefix('-')) else {
                return Err(err(format!("unexpected positional argument {arg:?}")));
            };
            if switches.contains(&key) {
                flags.insert(key.to_string(), "true".to_string());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| err(format!("--{key} requires a value")))?;
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Options { flags })
    }

    fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        let raw = self
            .flags
            .get(key)
            .ok_or_else(|| err(format!("missing required option --{key}")))?;
        raw.parse()
            .map_err(|_| err(format!("invalid value {raw:?} for --{key}")))
    }

    fn optional<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| err(format!("invalid value {raw:?} for --{key}"))),
        }
    }

    fn string(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

fn build_topology(constraint: &str, n: usize, k: usize) -> Result<Graph, CliError> {
    match constraint {
        "ktree" => Ok(build_ktree(n, k)
            .map_err(|e| err(e.to_string()))?
            .into_graph()),
        "kdiamond" => Ok(build_kdiamond(n, k)
            .map_err(|e| err(e.to_string()))?
            .into_graph()),
        "jd" => Ok(build_jd(n, k).map_err(|e| err(e.to_string()))?.into_graph()),
        "harary" => {
            if !harary_exists(n, k) {
                return Err(err(format!("H({k},{n}) is not defined")));
            }
            Ok(harary_graph(n, k))
        }
        other => Err(err(format!(
            "unknown constraint {other:?} (expected ktree, kdiamond, jd or harary)"
        ))),
    }
}

/// The usage text printed by `lhg help`.
pub const USAGE: &str = "\
lhg — Logarithmic Harary Graph tools

USAGE:
  lhg generate --constraint ktree|kdiamond|jd|harary --n N --k K [--format dot|edges|summary]
  lhg validate --k K [--file PATH]    (omit --file to read stdin)
  lhg plan     --n N --f F
  lhg flood    --n N --k K [--failures F] [--trials T] [--constraint C] [--seed S]
  lhg census   --k K [--max-n N]
  lhg cluster  --nodes N --k K [--kill F] [--constraint ktree|kdiamond|jd] [--metrics full|summary|off]
  lhg observe  --nodes N --k K [--kill F] [--broadcasts B] [--constraint C] [--format human|json] [--events PATH]
  lhg chaos    [--seeds N] [--seed BASE] [--engine sim|tcp|both]
               [--family crash|partition|lossy|byzantine|mixed] [--k 3..5] [--traitors T]
               [--quick] [--events PATH] [--json PATH]
  lhg byzantine --nodes N --k K [--traitor none|equivocate|forge|silent|replay|frame_crash|suppress_heartbeat]
               [--seed S] [--constraint C]
  lhg top      --nodes N --k K [--broadcasts B] [--duration-ms D] [--interval-ms I] [--constraint C] [--json]
  lhg bench    --compare FILE [--sizes N,N,..] [--threshold T] [--json]
  lhg help
";

/// Executes one CLI invocation (`args` excludes the program name), writing
/// results to `out`.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands, malformed options, or
/// out-of-domain parameters; the binary prints it to stderr and exits 1.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(err(format!("no command given\n{USAGE}")));
    };
    let io_err = |e: std::io::Error| err(format!("write failed: {e}"));
    match command.as_str() {
        "help" | "--help" | "-h" => {
            out.write_all(USAGE.as_bytes()).map_err(io_err)?;
            Ok(())
        }
        "generate" => {
            let opts = Options::parse(rest)?;
            let n: usize = opts.required("n")?;
            let k: usize = opts.required("k")?;
            let constraint = opts.string("constraint", "kdiamond");
            let g = build_topology(&constraint, n, k)?;
            match opts.string("format", "edges").as_str() {
                "dot" => {
                    write!(out, "{}", to_dot(&g, &format!("{constraint}_{n}_{k}"))).map_err(io_err)
                }
                "edges" => write!(out, "{}", to_edge_list(&g)).map_err(io_err),
                "summary" => {
                    let report = validate(&g, k);
                    writeln!(
                        out,
                        "{constraint} (n={n}, k={k}): {} edges (bound {}), diameter {:?}, \
                         LHG={}, regular={}",
                        report.edge_count,
                        report.edge_lower_bound,
                        report.diameter,
                        report.is_lhg(),
                        report.regular
                    )
                    .map_err(io_err)
                }
                other => Err(err(format!("unknown format {other:?}"))),
            }
        }
        "validate" => {
            let opts = Options::parse(rest)?;
            let k: usize = opts.required("k")?;
            let text = match opts.flags.get("file") {
                Some(path) => std::fs::read_to_string(path)
                    .map_err(|e| err(format!("cannot read {path}: {e}")))?,
                None => {
                    let mut buf = String::new();
                    std::io::Read::read_to_string(&mut std::io::stdin(), &mut buf)
                        .map_err(|e| err(format!("cannot read stdin: {e}")))?;
                    buf
                }
            };
            let g = from_edge_list(&text).map_err(|e| err(e.to_string()))?;
            let report = validate(&g, k);
            writeln!(
                out,
                "n={} edges={} | P1 node-connectivity: {} | P2 link-connectivity: {} | \
                 P3 minimality: {} | P4 log-diameter: {} (d={:?} bound={:.1}) | \
                 P5 regular: {} | LHG: {}",
                report.n,
                report.edge_count,
                report.node_connectivity_ok,
                report.link_connectivity_ok,
                report.link_minimal,
                report.logarithmic_diameter,
                report.diameter,
                report.diameter_bound,
                report.regular,
                report.is_lhg()
            )
            .map_err(io_err)
        }
        "plan" => {
            let opts = Options::parse(rest)?;
            let n: usize = opts.required("n")?;
            let f: usize = opts.required("f")?;
            let (p, _) = plan(n, f).map_err(|e| err(e.to_string()))?;
            writeln!(
                out,
                "plan for n={n}, f={f}: use {} at k={} — {} edges ({} over the ⌈kn/2⌉ bound), \
                 regular={}; nearest regular sizes: {} and {}",
                p.constraint,
                p.k,
                p.edges,
                p.edge_overhead(),
                p.regular,
                p.nearest_regular.0,
                p.nearest_regular.1
            )
            .map_err(io_err)
        }
        "flood" => {
            let opts = Options::parse(rest)?;
            let n: usize = opts.required("n")?;
            let k: usize = opts.required("k")?;
            let failures: usize = opts.optional("failures", k - 1)?;
            let trials: usize = opts.optional("trials", 50)?;
            let seed: u64 = opts.optional("seed", 42)?;
            let constraint = opts.string("constraint", "kdiamond");
            let g = build_topology(&constraint, n, k)?;
            let mode = if failures == 0 {
                FailureMode::None
            } else {
                FailureMode::RandomNodes { count: failures }
            };
            let stats = run_trials(&g, Protocol::Flood, mode, trials, seed);
            writeln!(
                out,
                "flooding {constraint} (n={n}, k={k}) with {failures} random crashes, \
                 {trials} trials: reliability {:.3}, mean rounds {:.2}, mean messages {:.1}",
                stats.reliability, stats.mean_rounds, stats.mean_messages
            )
            .map_err(io_err)
        }
        "census" => {
            let opts = Options::parse(rest)?;
            let k: usize = opts.required("k")?;
            let max_n: usize = opts.optional("max-n", 4 * k + 10)?;
            writeln!(
                out,
                "n: EX(JD) EX(K-TREE/K-DIAMOND) REG(K-TREE) REG(K-DIAMOND)"
            )
            .map_err(io_err)?;
            for n in (k + 1)..=max_n {
                writeln!(
                    out,
                    "{n:>4}: {:>6} {:>21} {:>11} {:>14}",
                    ex_jd(n, k),
                    ex_ktree(n, k),
                    reg_ktree(n, k),
                    reg_kdiamond(n, k)
                )
                .map_err(io_err)?;
            }
            Ok(())
        }
        "cluster" => {
            let opts = Options::parse(rest)?;
            let n: usize = opts.required("nodes")?;
            let k: usize = opts.required("k")?;
            let kill: usize = opts.optional("kill", 0)?;
            let constraint = runtime_constraint(&opts.string("constraint", "kdiamond"))?;
            check_failure_model(n, k, kill)?;
            let metrics_mode = opts.string("metrics", "full");
            run_cluster(n, k, kill, constraint, &metrics_mode, out)
        }
        "observe" => {
            let opts = Options::parse(rest)?;
            let n: usize = opts.required("nodes")?;
            let k: usize = opts.required("k")?;
            let kill: usize = opts.optional("kill", 0)?;
            let broadcasts: usize = opts.optional("broadcasts", 1)?;
            let constraint = runtime_constraint(&opts.string("constraint", "kdiamond"))?;
            check_failure_model(n, k, kill)?;
            if broadcasts == 0 {
                return Err(err("--broadcasts must be at least 1"));
            }
            let format = opts.string("format", "human");
            if !matches!(format.as_str(), "human" | "json") {
                return Err(err(format!(
                    "unknown format {format:?} (expected human or json)"
                )));
            }
            let events_path = opts.flags.get("events").cloned();
            run_observe(
                n,
                k,
                kill,
                broadcasts,
                constraint,
                &format,
                events_path.as_deref(),
                out,
            )
        }
        "chaos" => {
            let opts = Options::parse_with_switches(rest, &["quick"])?;
            let seeds: u64 = opts.optional("seeds", 10)?;
            let base_seed: u64 = opts.optional("seed", 0)?;
            let quick: bool = opts.optional("quick", false)?;
            if seeds == 0 {
                return Err(err("--seeds must be at least 1"));
            }
            let engines: Vec<lhg_chaos::Engine> = match opts.string("engine", "both").as_str() {
                "sim" => vec![lhg_chaos::Engine::Sim],
                "tcp" => vec![lhg_chaos::Engine::Tcp],
                "both" => vec![lhg_chaos::Engine::Sim, lhg_chaos::Engine::Tcp],
                other => {
                    return Err(err(format!(
                        "unknown engine {other:?} (expected sim, tcp or both)"
                    )))
                }
            };
            let family = match opts.flags.get("family").map(String::as_str) {
                None => None,
                Some("crash") => Some(lhg_chaos::Family::Crash),
                Some("partition") => Some(lhg_chaos::Family::Partition),
                Some("lossy") => Some(lhg_chaos::Family::Lossy),
                Some("byzantine") => Some(lhg_chaos::Family::Byzantine),
                Some("mixed") => Some(lhg_chaos::Family::Mixed),
                Some(other) => {
                    return Err(err(format!(
                        "unknown family {other:?} \
                         (expected crash, partition, lossy, byzantine or mixed)"
                    )))
                }
            };
            // Sweep-shape overrides, read by the byzantine/mixed plan
            // generators: pin k (and thus the f budget) and the planted
            // traitor count, e.g. `--family mixed --k 5 --traitors 2`.
            let mut overrides = lhg_chaos::PlanOverrides::default();
            if opts.flags.contains_key("k") {
                let k: usize = opts.required("k")?;
                if !(3..=5).contains(&k) {
                    return Err(err(
                        "--k must be in 3..=5 (below 3 the traitor budget is zero, \
                         above 5 cluster sizes get slow)",
                    ));
                }
                overrides.k = Some(k);
            }
            if opts.flags.contains_key("traitors") {
                let t: usize = opts.required("traitors")?;
                if t == 0 {
                    return Err(err("--traitors must be at least 1"));
                }
                overrides.traitors = Some(t);
            }
            let events_path = opts.flags.get("events").cloned();
            let json_path = opts.flags.get("json").cloned();
            run_chaos(
                &engines,
                base_seed,
                seeds,
                quick,
                family,
                &overrides,
                events_path.as_deref(),
                json_path.as_deref(),
                out,
            )
        }
        "byzantine" => {
            let opts = Options::parse(rest)?;
            let n: usize = opts.required("nodes")?;
            let k: usize = opts.required("k")?;
            let seed: u64 = opts.optional("seed", 42)?;
            let traitor = opts.string("traitor", "forge");
            let constraint = opts.string("constraint", "kdiamond");
            run_byzantine_demo(n, k, &traitor, seed, &constraint, out)
        }
        "top" => {
            let opts = Options::parse_with_switches(rest, &["json"])?;
            let n: usize = opts.required("nodes")?;
            let k: usize = opts.required("k")?;
            let broadcasts: usize = opts.optional("broadcasts", 4)?;
            let duration_ms: u64 = opts.optional("duration-ms", 500)?;
            let interval_ms: u64 = opts.optional("interval-ms", 100)?;
            let constraint = runtime_constraint(&opts.string("constraint", "kdiamond"))?;
            let json: bool = opts.optional("json", false)?;
            check_failure_model(n, k, 0)?;
            if interval_ms == 0 {
                return Err(err("--interval-ms must be at least 1"));
            }
            run_top(
                n,
                k,
                broadcasts,
                duration_ms,
                interval_ms,
                constraint,
                json,
                out,
            )
        }
        "bench" => {
            let opts = Options::parse_with_switches(rest, &["json"])?;
            let Some(baseline_path) = opts.flags.get("compare").cloned() else {
                return Err(err(
                    "lhg bench requires --compare FILE (a recorded BENCH_<pr>.json)",
                ));
            };
            let sizes: Option<Vec<usize>> = match opts.flags.get("sizes") {
                None => None,
                Some(raw) => Some(
                    raw.split(',')
                        .map(|s| {
                            s.trim()
                                .parse()
                                .map_err(|_| err(format!("invalid size {s:?} in --sizes")))
                        })
                        .collect::<Result<_, _>>()?,
                ),
            };
            let threshold: f64 =
                opts.optional("threshold", lhg_bench::compare::DEFAULT_THRESHOLD)?;
            if !(0.0..1.0).contains(&threshold) {
                return Err(err("--threshold must be in [0, 1)"));
            }
            let json: bool = opts.optional("json", false)?;
            run_bench_compare(&baseline_path, sizes.as_deref(), threshold, json, out)
        }
        other => Err(err(format!("unknown command {other:?}\n{USAGE}"))),
    }
}

/// Drives one `lhg chaos` sweep: `seeds` fault plans starting at
/// `base_seed` (consecutive, or — with `--family` — scanning upward for
/// seeds of that family), each executed on every requested engine under
/// the invariant oracle. Prints one summary line per run; `--json PATH`
/// additionally writes one machine-readable JSON object per run (JSONL),
/// appended and flushed as each run finishes — so an oracle-violation
/// abort or a killed process still leaves every completed run's record
/// on disk, never a truncated object. On any violation it lists the
/// details, dumps the captured event timeline to `--events` (when given),
/// and fails with the exact command line that reproduces the first
/// failing run.
#[allow(clippy::too_many_arguments)]
fn run_chaos(
    engines: &[lhg_chaos::Engine],
    base_seed: u64,
    seeds: u64,
    quick: bool,
    family: Option<lhg_chaos::Family>,
    overrides: &lhg_chaos::PlanOverrides,
    events_path: Option<&str>,
    json_path: Option<&str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let io_err = |e: std::io::Error| err(format!("write failed: {e}"));
    let mut write_err: Option<std::io::Error> = None;
    let mut json_err: Option<std::io::Error> = None;
    let mut json_file = match json_path {
        Some(path) => Some(
            std::fs::File::create(path).map_err(|e| err(format!("cannot write {path}: {e}")))?,
        ),
        None => None,
    };
    let outcome = lhg_chaos::run_suite_with(
        engines,
        base_seed,
        seeds,
        quick,
        family,
        overrides,
        |report| {
            // One complete object + newline per run, flushed immediately:
            // a later abort can cut the sweep short, never a JSON line.
            if let Some(f) = json_file.as_mut() {
                if json_err.is_none() {
                    json_err = writeln!(f, "{}", report.to_json_line())
                        .and_then(|()| f.flush())
                        .err();
                }
            }
            if write_err.is_none() {
                if let Err(e) = writeln!(out, "{}", report.summary()) {
                    write_err = Some(e);
                }
            }
        },
    );
    if let Some(e) = write_err {
        return Err(io_err(e));
    }
    if let Some(path) = json_path {
        if let Some(e) = json_err {
            return Err(err(format!("cannot write {path}: {e}")));
        }
        writeln!(out, "per-run JSON summaries written to {path}").map_err(io_err)?;
    }

    if outcome.passed() {
        writeln!(
            out,
            "chaos: all {} run(s) over {} seed(s) passed",
            outcome.reports.len(),
            seeds
        )
        .map_err(io_err)?;
        return Ok(());
    }

    for failure in outcome.failures() {
        writeln!(
            out,
            "chaos violation at seed={} engine={} family={}:",
            failure.seed,
            failure.engine,
            failure.family.name()
        )
        .map_err(io_err)?;
        for v in &failure.violations {
            writeln!(out, "  - {v}").map_err(io_err)?;
        }
    }
    if let Some(path) = events_path {
        if let Some(dump) = outcome.failures().find_map(|f| f.events_jsonl.as_ref()) {
            std::fs::write(path, dump).map_err(|e| err(format!("cannot write {path}: {e}")))?;
            writeln!(out, "event timeline of the failing run written to {path}").map_err(io_err)?;
        }
    }
    let first = outcome
        .failures()
        .next()
        .expect("failures is non-empty when the outcome did not pass");
    Err(err(format!(
        "{} of {} chaos run(s) violated an invariant; reproduce with: \
         lhg chaos --seed {} --seeds 1 --engine {}{}{}{}",
        outcome.failures().count(),
        outcome.reports.len(),
        first.seed,
        first.engine,
        if quick { " --quick" } else { "" },
        overrides.k.map(|k| format!(" --k {k}")).unwrap_or_default(),
        overrides
            .traitors
            .map(|t| format!(" --traitors {t}"))
            .unwrap_or_default(),
    )))
}

/// Parses a runtime-capable constraint name. kdiamond is the recommended
/// default (like generate/flood): it exists at every n ≥ 2k, so healing
/// never lands on a non-constructible size — JD sizes have gaps.
fn runtime_constraint(name: &str) -> Result<Constraint, CliError> {
    match name {
        "jd" => Ok(Constraint::Jd),
        "ktree" => Ok(Constraint::KTree),
        "kdiamond" => Ok(Constraint::KDiamond),
        other => Err(err(format!(
            "unknown constraint {other:?} (expected ktree, kdiamond or jd)"
        ))),
    }
}

/// Rejects runs outside the paper's fail-stop model: at most k−1 crashes,
/// and enough membership left for the overlay to heal.
fn check_failure_model(n: usize, k: usize, kill: usize) -> Result<(), CliError> {
    if k >= 2 && kill >= k {
        return Err(err(format!(
            "--kill {kill} violates the fail-stop model: an LHG at k={k} \
             tolerates at most k-1 = {} crashes",
            k - 1
        )));
    }
    if n < 2 * k + kill {
        return Err(err(format!(
            "--nodes {n} too small: healing after {kill} crashes needs \
             n - {kill} ≥ 2k = {}",
            2 * k
        )));
    }
    Ok(())
}

/// Drives one `lhg cluster` run: boot a real-socket cluster, broadcast,
/// fail-stop `kill` nodes, await detection + self-healing, verify the healed
/// topology, broadcast again, and dump metrics.
fn run_cluster(
    n: usize,
    k: usize,
    kill: usize,
    constraint: Constraint,
    metrics_mode: &str,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use std::time::Duration;

    use lhg_graph::connectivity::is_k_vertex_connected;
    use lhg_runtime::{Cluster, RuntimeConfig};

    if !matches!(metrics_mode, "full" | "summary" | "off") {
        return Err(err(format!(
            "unknown metrics mode {metrics_mode:?} (expected full, summary or off)"
        )));
    }
    let io_err = |e: std::io::Error| err(format!("write failed: {e}"));
    let delivery_window = Duration::from_secs(15);
    let heal_window = Duration::from_secs(30);

    writeln!(
        out,
        "launching {n}-node {constraint} cluster at k={k} on loopback TCP"
    )
    .map_err(io_err)?;
    let mut c = Cluster::launch(constraint, n, k, RuntimeConfig::default())
        .map_err(|e| err(format!("launch failed: {e}")))?;
    writeln!(out, "mesh up: every overlay link has a live TCP connection").map_err(io_err)?;

    let id = c
        .broadcast(0, bytes::Bytes::from_static(b"cluster payload #1"))
        .map_err(|e| err(e.to_string()))?;
    if !c.await_delivery(id, delivery_window) {
        return Err(err("initial broadcast was not delivered everywhere"));
    }
    writeln!(out, "broadcast {id:#x}: delivered by all {n} nodes").map_err(io_err)?;

    // Fail-stop the highest member ids (never 0, the broadcast origin).
    let victims: Vec<_> = c.members().into_iter().rev().take(kill).collect();
    for &v in &victims {
        c.kill(v).map_err(|e| err(e.to_string()))?;
        writeln!(out, "killed node {v} (fail-stop, no goodbye)").map_err(io_err)?;
    }

    if kill > 0 {
        if !c.await_heal(heal_window) {
            return Err(err(
                "survivors did not converge on a healed overlay in time",
            ));
        }
        let survivors = c.survivors();
        let all_flagged = survivors.iter().all(|&s| {
            let applied = c.node(s).map(|h| h.crashes_applied()).unwrap_or_default();
            victims.iter().all(|v| applied.contains(v))
        });
        if !all_flagged {
            return Err(err("failure detector missed a crash on some survivor"));
        }
        writeln!(
            out,
            "failure detector: all {} survivors flagged crashed nodes {victims:?}",
            survivors.len()
        )
        .map_err(io_err)?;
        if !c.overlays_agree() {
            return Err(err("survivor overlay replicas diverged"));
        }
        let g = c
            .survivor_graph()
            .ok_or_else(|| err("no survivors left to inspect"))?;
        if !is_k_vertex_connected(&g, k) {
            return Err(err(format!(
                "healed overlay is NOT {k}-node-connected (n={})",
                g.node_count()
            )));
        }
        writeln!(
            out,
            "healed overlay: n={}, agreed by all survivors, {k}-node-connected: true",
            g.node_count()
        )
        .map_err(io_err)?;

        let id2 = c
            .broadcast(0, bytes::Bytes::from_static(b"cluster payload #2"))
            .map_err(|e| err(e.to_string()))?;
        if !c.await_delivery(id2, delivery_window) {
            return Err(err(
                "post-heal broadcast was not delivered to every survivor",
            ));
        }
        writeln!(
            out,
            "broadcast {id2:#x}: delivered by all {} survivors",
            survivors.len()
        )
        .map_err(io_err)?;
    }

    match metrics_mode {
        "off" => {}
        "full" => writeln!(out, "{}", c.metrics_json()).map_err(io_err)?,
        _ => {
            let lat = c
                .metrics()
                .histogram("runtime.delivery_latency_us")
                .summary();
            let rec = c.metrics().histogram("runtime.reconnect_time_us").summary();
            writeln!(
                out,
                "metrics: deliveries={} messages={} bytes={} suspects={} heals={} \
                 dials={} | delivery latency µs p50≈{} p99≈{} | reconnect µs p50≈{} max≈{}",
                c.metrics().counter("runtime.deliveries").get(),
                c.metrics().counter("runtime.messages_sent").get(),
                c.metrics().counter("runtime.bytes_sent").get(),
                c.metrics().counter("runtime.suspects").get(),
                c.metrics().counter("runtime.heals").get(),
                c.metrics().counter("runtime.dials").get(),
                lat.p50,
                lat.p99,
                rec.p50,
                rec.max
            )
            .map_err(io_err)?;
        }
    }
    c.shutdown();
    Ok(())
}

/// Drives one `lhg observe` run: a traced real-socket cluster lifecycle
/// (broadcasts, fail-stop crashes, healing, a post-heal broadcast), then
/// renders the flight-recorder timeline and the per-broadcast hop report.
/// Fails — the binary exits 1 — when any broadcast's realized dissemination
/// tree does not span the survivors or exceeds the theoretical hop bound.
#[allow(clippy::too_many_arguments)]
fn run_observe(
    n: usize,
    k: usize,
    kill: usize,
    broadcasts: usize,
    constraint: Constraint,
    format: &str,
    events_path: Option<&str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use std::collections::BTreeSet;
    use std::time::Duration;

    use lhg_core::properties::p4_diameter_bound;
    use lhg_runtime::{Cluster, RuntimeConfig};

    let io_err = |e: std::io::Error| err(format!("write failed: {e}"));
    let delivery_window = Duration::from_secs(15);
    let heal_window = Duration::from_secs(30);

    let mut c = Cluster::launch(constraint, n, k, RuntimeConfig::default())
        .map_err(|e| err(format!("launch failed: {e}")))?;
    let members = c.members();

    // Pre-crash broadcasts rotate origins so traces exercise distinct trees;
    // each must span the full membership within the n-node bound.
    let mut expectations: Vec<(u64, BTreeSet<u32>, f64)> = Vec::new();
    let all: BTreeSet<u32> = members.iter().map(|&m| m as u32).collect();
    for b in 0..broadcasts {
        let origin = members[b % members.len()];
        let id = c
            .broadcast(origin, bytes::Bytes::from(format!("observe #{b}")))
            .map_err(|e| err(e.to_string()))?;
        if !c.await_delivery(id, delivery_window) {
            return Err(err(format!(
                "broadcast {id:#x} was not delivered everywhere"
            )));
        }
        expectations.push((id, all.clone(), p4_diameter_bound(n, k)));
    }

    // Fail-stop the highest member ids (never 0, the post-heal origin).
    let victims: Vec<_> = members.iter().rev().copied().take(kill).collect();
    for &v in &victims {
        c.kill(v).map_err(|e| err(e.to_string()))?;
    }
    if kill > 0 {
        if !c.await_heal(heal_window) {
            return Err(err(
                "survivors did not converge on a healed overlay in time",
            ));
        }
        // The post-heal broadcast must span exactly the survivors, within
        // the bound at the smaller membership.
        let survivors: BTreeSet<u32> = c.survivors().iter().map(|&m| m as u32).collect();
        let id = c
            .broadcast(0, bytes::Bytes::from_static(b"observe post-heal"))
            .map_err(|e| err(e.to_string()))?;
        if !c.await_delivery(id, delivery_window) {
            return Err(err(
                "post-heal broadcast was not delivered to every survivor",
            ));
        }
        expectations.push((id, survivors, p4_diameter_bound(n - kill, k)));
    }

    let events = c.events();
    let reports: Vec<lhg_trace::HopReport> = expectations
        .iter()
        .map(|(id, expected, bound)| {
            c.tracer().trace(*id).map_or_else(
                || lhg_trace::BroadcastTrace::empty(*id).report(expected, *bound),
                |t| t.report(expected, *bound),
            )
        })
        .collect();

    if let Some(path) = events_path {
        c.dump_events(std::path::Path::new(path))
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
    }

    match format {
        "json" => {
            let events_json: Vec<String> = events.iter().map(|e| e.to_json()).collect();
            let reports_json: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
            // Per-broadcast wire cost from the codec-level accountant:
            // how many data frames (and bytes) each broadcast actually
            // put on the cluster's links, fan-out retransmits included.
            let wire_json: Vec<String> = c
                .metrics()
                .wire()
                .broadcast_costs()
                .into_iter()
                .map(|(id, frames, bytes)| {
                    format!("{{\"id\":{id},\"frames\":{frames},\"bytes\":{bytes}}}")
                })
                .collect();
            writeln!(
                out,
                "{{\"nodes\":{n},\"k\":{k},\"killed\":[{}],\"events\":[{}],\"reports\":[{}],\
                 \"wire\":[{}]}}",
                victims
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                events_json.join(","),
                reports_json.join(","),
                wire_json.join(",")
            )
            .map_err(io_err)?;
        }
        _ => {
            writeln!(
                out,
                "timeline ({} events recorded; frame/heartbeat traffic hidden):",
                events.len()
            )
            .map_err(io_err)?;
            for e in events.iter().filter(|e| !e.kind.is_traffic()) {
                writeln!(out, "{e}").map_err(io_err)?;
            }
            writeln!(out, "\nper-broadcast hop report:").map_err(io_err)?;
            writeln!(out, "{}", lhg_trace::HopReport::table_header()).map_err(io_err)?;
            for r in &reports {
                writeln!(out, "{}", r.table_row()).map_err(io_err)?;
            }
        }
    }
    c.shutdown();

    let violations: Vec<u64> = reports
        .iter()
        .filter(|r| !r.within_bound())
        .map(|r| r.trace_id)
        .collect();
    if violations.is_empty() {
        Ok(())
    } else {
        Err(err(format!(
            "{} broadcast(s) violated the spanning/hop-bound check: {violations:#x?}",
            violations.len()
        )))
    }
}

/// Drives one `lhg byzantine` demo on the discrete-event simulator: build
/// the overlay, print the Bracha quorum parameters at the full traitor
/// budget f = ⌊(k−1)/2⌋, plant one traitor (unless `--traitor none`), run
/// a broadcast from a correct origin, and report what every correct node
/// delivered. Exits non-zero if the run itself violates agreement,
/// validity, integrity or exactly-once — the demo doubles as a smoke
/// check of the protocol.
fn run_byzantine_demo(
    n: usize,
    k: usize,
    traitor: &str,
    seed: u64,
    constraint: &str,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use std::collections::BTreeSet;

    use lhg_byzantine::{
        max_traitors, run_sim_byzantine, BrachaConfig, ScheduledByzBroadcast, TraitorBehavior,
        EQUIVOCATE_NONCE_BASE, FORGE_NONCE_BASE,
    };
    use lhg_graph::NodeId;
    use lhg_net::sim::LinkModel;

    let io_err = |e: std::io::Error| err(format!("write failed: {e}"));
    let behavior = match traitor {
        "none" => None,
        "equivocate" => Some(TraitorBehavior::Equivocate),
        "forge" => Some(TraitorBehavior::Forge),
        "silent" => Some(TraitorBehavior::Silent),
        "replay" => Some(TraitorBehavior::Replay),
        // The failure-detector attacks. On the sim demo they reduce to
        // vote-withholding (there is no heartbeat plane to lie to); their
        // forged crash waves and heartbeat suppression bite on the TCP
        // runtime, where the mixed chaos family exercises them.
        "frame_crash" => Some(TraitorBehavior::FrameCrash),
        "suppress_heartbeat" => Some(TraitorBehavior::SuppressHeartbeat),
        other => {
            return Err(err(format!(
                "unknown traitor behavior {other:?} (expected none, equivocate, \
                 forge, silent, replay, frame_crash or suppress_heartbeat)"
            )))
        }
    };
    let f = max_traitors(k);
    if behavior.is_some() && f == 0 {
        return Err(err(format!(
            "k={k} tolerates no traitors (f = ⌊(k−1)/2⌋ = 0); \
             raise --k to 3 or pass --traitor none"
        )));
    }
    let g = build_topology(constraint, n, k)?;
    let cfg = BrachaConfig::for_overlay(n, k).map_err(|e| err(e.to_string()))?;
    writeln!(
        out,
        "bracha broadcast over a {constraint} overlay: n={n} k={k} f={f} | \
         echo quorum {} | ready amplify {} | delivery quorum {}",
        cfg.echo_quorum(),
        cfg.ready_amplify(),
        cfg.delivery_quorum()
    )
    .map_err(io_err)?;

    // The traitor is the highest node id; the origin is node 0.
    let traitors: Vec<(NodeId, TraitorBehavior)> =
        behavior.iter().map(|&b| (NodeId(n - 1), b)).collect();
    if let Some(b) = behavior {
        writeln!(out, "traitor: node {} plays {}", n - 1, b.name()).map_err(io_err)?;
    }
    const NONCE: u64 = 1;
    let schedules = vec![(
        NodeId(0),
        vec![ScheduledByzBroadcast {
            nonce: NONCE,
            payload: bytes::Bytes::from_static(b"byzantine demo payload"),
            at_us: 10_000,
        }],
    )];
    let report = run_sim_byzantine(
        &g,
        k,
        &schedules,
        &traitors,
        LinkModel::default(),
        seed,
        2_000_000,
    );

    // Group correct-node deliveries by instance nonce; `trace` carries the
    // certified payload digest.
    let is_correct = |v: usize| behavior.is_none() || v != n - 1;
    let mut per_instance: BTreeMap<u64, Vec<(u32, Option<u64>)>> = BTreeMap::new();
    for d in &report.deliveries {
        if is_correct(d.node.index()) {
            per_instance
                .entry(d.broadcast_id)
                .or_default()
                .push((d.node.index() as u32, d.trace));
        }
    }
    for (nonce, recs) in &per_instance {
        let nodes: BTreeSet<u32> = recs.iter().map(|&(v, _)| v).collect();
        if nodes.len() != recs.len() {
            return Err(err(format!(
                "exactly-once broken: a node delivered instance {nonce:#x} twice"
            )));
        }
    }

    let correct_total = n - traitors.len();
    let delivered = per_instance.get(&NONCE).map_or(0, Vec::len);
    writeln!(
        out,
        "instance {NONCE:#x} from correct origin 0: delivered by {delivered} of \
         {correct_total} correct nodes"
    )
    .map_err(io_err)?;
    if delivered < correct_total {
        return Err(err(format!(
            "validity broken: {} correct node(s) never delivered instance {NONCE:#x}",
            correct_total - delivered
        )));
    }

    match behavior {
        Some(TraitorBehavior::Equivocate) => {
            let nonce = EQUIVOCATE_NONCE_BASE + (n - 1) as u64;
            match per_instance.get(&nonce) {
                None => writeln!(
                    out,
                    "equivocated instance {nonce:#x}: no face reached a delivery quorum"
                )
                .map_err(io_err)?,
                Some(recs) => {
                    let digests: BTreeSet<Option<u64>> = recs.iter().map(|&(_, d)| d).collect();
                    if digests.len() > 1 {
                        return Err(err(format!(
                            "agreement broken: correct nodes certified both faces of \
                             instance {nonce:#x}"
                        )));
                    }
                    writeln!(
                        out,
                        "equivocated instance {nonce:#x}: {} correct node(s) certified \
                         the same single face — agreement holds",
                        recs.len()
                    )
                    .map_err(io_err)?;
                }
            }
        }
        Some(TraitorBehavior::Forge) => {
            let nonce = FORGE_NONCE_BASE + (n - 1) as u64;
            if per_instance.contains_key(&nonce) {
                return Err(err(format!(
                    "integrity broken: a correct node delivered forged instance {nonce:#x}"
                )));
            }
            writeln!(
                out,
                "forged instance {nonce:#x}: rejected by every correct node \
                 (echo quorum unreachable on one traitor's word)"
            )
            .map_err(io_err)?;
        }
        _ => {}
    }

    writeln!(
        out,
        "byzantine broadcast ok: agreement, validity, integrity and exactly-once all hold \
         ({} messages, {} µs virtual time)",
        report.messages_sent, report.end_time
    )
    .map_err(io_err)
}

/// Drives one `lhg top` run: launch a TCP cluster, start the background
/// telemetry sampler, rotate a few broadcasts through it for
/// `duration_ms`, then render one screenful of cluster telemetry — wire
/// cost decomposed by message class (frames, bytes, per-second rates),
/// delivery latency percentiles, and gauge levels. Totals are read
/// *after* shutdown, when no node thread can still bump a counter, so
/// the per-class sums reconcile exactly with the engine counters
/// (`runtime.messages_sent` / `runtime.bytes_sent`).
#[allow(clippy::too_many_arguments)]
fn run_top(
    n: usize,
    k: usize,
    broadcasts: usize,
    duration_ms: u64,
    interval_ms: u64,
    constraint: Constraint,
    json: bool,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    use std::time::{Duration, Instant};

    use lhg_runtime::{Cluster, RuntimeConfig};

    let io_err = |e: std::io::Error| err(format!("write failed: {e}"));
    // A telemetry viewer should never perturb what it watches: keep the
    // suspicion timeout generous so scheduler stalls on a loaded machine
    // (big debug clusters, parallel test suites) can't excommunicate a
    // healthy node mid-observation.
    let config = RuntimeConfig {
        heartbeat_timeout: Duration::from_secs(5),
        ..RuntimeConfig::default()
    };
    let mut c = Cluster::launch(constraint, n, k, config)
        .map_err(|e| err(format!("launch failed: {e}")))?;
    c.start_telemetry(Duration::from_millis(interval_ms));
    let started = Instant::now();
    let members = c.members();
    for b in 0..broadcasts {
        let origin = members[b % members.len()];
        let id = c
            .broadcast(origin, bytes::Bytes::from(format!("top #{b}")))
            .map_err(|e| err(e.to_string()))?;
        // Generous window: `top` runs on live clusters of any size, and a
        // loaded machine should cost latency, never a spurious abort.
        if !c.await_delivery(id, Duration::from_secs(60)) {
            return Err(err(format!(
                "broadcast {id:#x} was not delivered everywhere"
            )));
        }
    }
    let window = Duration::from_millis(duration_ms);
    while started.elapsed() < window {
        std::thread::sleep(Duration::from_millis(10));
    }
    let metrics = c.shared_metrics();
    let timeline = c
        .stop_telemetry()
        .ok_or_else(|| err("telemetry sampler vanished"))?;
    c.shutdown();

    let wire = metrics.wire();
    let span_us = started.elapsed().as_micros() as u64;
    let span_secs = span_us as f64 / 1e6;
    let totals = wire.class_totals();
    let lat = metrics.histogram("runtime.delivery_latency_us").summary();

    if json {
        let per_sec = |v: u64| {
            if span_secs > 0.0 {
                v as f64 / span_secs
            } else {
                0.0
            }
        };
        let classes: Vec<(String, serde::Value)> = totals
            .iter()
            .filter(|t| t.frames > 0)
            .map(|t| {
                (
                    t.class.name().to_owned(),
                    serde::Value::Obj(vec![
                        ("frames".to_owned(), serde::Value::U64(t.frames)),
                        ("bytes".to_owned(), serde::Value::U64(t.bytes)),
                        (
                            "frames_per_sec".to_owned(),
                            serde::Value::F64(per_sec(t.frames)),
                        ),
                        (
                            "bytes_per_sec".to_owned(),
                            serde::Value::F64(per_sec(t.bytes)),
                        ),
                    ]),
                )
            })
            .collect();
        let counters: Vec<(String, serde::Value)> = metrics
            .counters()
            .into_iter()
            .map(|(name, ctr)| (name, serde::Value::U64(ctr.get())))
            .collect();
        let gauges: Vec<(String, serde::Value)> = metrics
            .gauges()
            .into_iter()
            .map(|(name, g)| (name, serde::Value::I64(g.get())))
            .collect();
        let doc = serde::Value::Obj(vec![
            ("nodes".to_owned(), serde::Value::U64(n as u64)),
            ("k".to_owned(), serde::Value::U64(k as u64)),
            ("span_us".to_owned(), serde::Value::U64(span_us)),
            (
                "samples".to_owned(),
                serde::Value::U64(timeline.samples().len() as u64),
            ),
            (
                "total_frames".to_owned(),
                serde::Value::U64(wire.total_frames()),
            ),
            (
                "total_bytes".to_owned(),
                serde::Value::U64(wire.total_bytes()),
            ),
            ("classes".to_owned(), serde::Value::Obj(classes)),
            (
                "delivery_latency_us".to_owned(),
                serde::Value::Obj(vec![
                    ("p50".to_owned(), serde::Value::U64(lat.p50)),
                    ("p99".to_owned(), serde::Value::U64(lat.p99)),
                ]),
            ),
            ("counters".to_owned(), serde::Value::Obj(counters)),
            ("gauges".to_owned(), serde::Value::Obj(gauges)),
        ]);
        writeln!(
            out,
            "{}",
            serde_json::to_string(&doc).expect("Value serialization is infallible")
        )
        .map_err(io_err)?;
        return Ok(());
    }

    writeln!(
        out,
        "cluster n={n} k={k} | span {:.2}s | {} samples | {} broadcasts",
        span_secs,
        timeline.samples().len(),
        broadcasts
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "{:<10} {:>10} {:>12} {:>12} {:>14}",
        "CLASS", "FRAMES", "BYTES", "FRAMES/S", "BYTES/S"
    )
    .map_err(io_err)?;
    for t in totals.iter().filter(|t| t.frames > 0) {
        writeln!(
            out,
            "{:<10} {:>10} {:>12} {:>12.1} {:>14.1}",
            t.class.name(),
            t.frames,
            t.bytes,
            t.frames as f64 / span_secs.max(1e-9),
            t.bytes as f64 / span_secs.max(1e-9)
        )
        .map_err(io_err)?;
    }
    writeln!(
        out,
        "{:<10} {:>10} {:>12}",
        "total",
        wire.total_frames(),
        wire.total_bytes()
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "delivery latency µs: p50≈{} p99≈{} | suspects={} heals={} links={}",
        lat.p50,
        lat.p99,
        metrics.counter("runtime.suspects").get(),
        metrics.counter("runtime.heals").get(),
        wire.link_totals().len()
    )
    .map_err(io_err)?;
    // The rejoin-under-fire ledger: how often the SYNC handshake and byz
    // catch-up had to re-arm, and whether any schedule ran dry. All zeros
    // on a calm cluster; nonzero retries with zero exhaustion is the
    // designed degradation under loss.
    writeln!(
        out,
        "rejoin: sync_retries={} catchup_solicits={} catchup_retries={} \
         catchup_ingests={} exhausted={}",
        metrics.counter("runtime.sync_retries").get(),
        metrics.counter("runtime.catchup_solicits").get(),
        metrics.counter("runtime.catchup_retries").get(),
        metrics.counter("runtime.catchup_ingests").get(),
        metrics.counter("runtime.sync_retry_exhausted").get()
            + metrics.counter("runtime.catchup_exhausted").get(),
    )
    .map_err(io_err)
}

/// Drives `lhg bench --compare`: parse the recorded baseline, re-measure
/// every `(mode, n)` row on this machine (optionally restricted by
/// `--sizes`), and exit non-zero when throughput regressed beyond the
/// threshold. Seed-deterministic drift (message counts, virtual-time
/// percentiles) is reported but only throughput gates.
fn run_bench_compare(
    baseline_path: &str,
    sizes: Option<&[usize]>,
    threshold: f64,
    json: bool,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let io_err = |e: std::io::Error| err(format!("write failed: {e}"));
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| err(format!("cannot read {baseline_path}: {e}")))?;
    let report = lhg_bench::compare::compare_against(&text, sizes, threshold)
        .map_err(|e| err(format!("{baseline_path}: {e}")))?;
    if json {
        writeln!(
            out,
            "{}",
            serde_json::to_string(&report.to_value()).expect("Value serialization is infallible")
        )
        .map_err(io_err)?;
    } else {
        write!(out, "{}", report.render_text()).map_err(io_err)?;
    }
    if report.regressed() {
        return Err(err(format!(
            "throughput regressed more than {:.0}% below {baseline_path} — see report above",
            threshold * 100.0
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let out = run_to_string(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(out.contains("generate"));
    }

    #[test]
    fn generate_edges_round_trips() {
        let out =
            run_to_string(&["generate", "--constraint", "ktree", "--n", "10", "--k", "3"]).unwrap();
        let g = from_edge_list(&out).unwrap();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
    }

    #[test]
    fn generate_dot_and_summary() {
        let dot = run_to_string(&[
            "generate",
            "--constraint",
            "kdiamond",
            "--n",
            "8",
            "--k",
            "3",
            "--format",
            "dot",
        ])
        .unwrap();
        assert!(dot.starts_with("graph kdiamond_8_3"));

        let sum = run_to_string(&[
            "generate",
            "--constraint",
            "kdiamond",
            "--n",
            "8",
            "--k",
            "3",
            "--format",
            "summary",
        ])
        .unwrap();
        assert!(sum.contains("LHG=true"), "{sum}");
        assert!(sum.contains("regular=true"), "{sum}");
    }

    #[test]
    fn generate_harary_works() {
        let out = run_to_string(&[
            "generate",
            "--constraint",
            "harary",
            "--n",
            "9",
            "--k",
            "3",
            "--format",
            "summary",
        ])
        .unwrap();
        assert!(out.contains("14 edges"), "{out}");
    }

    #[test]
    fn generate_rejects_bad_inputs() {
        assert!(run_to_string(&["generate", "--n", "10"]).is_err());
        assert!(run_to_string(&["generate", "--n", "x", "--k", "3"]).is_err());
        assert!(
            run_to_string(&["generate", "--constraint", "nope", "--n", "10", "--k", "3"]).is_err()
        );
        assert!(
            run_to_string(&["generate", "--n", "5", "--k", "3"]).is_err(),
            "below 2k"
        );
    }

    #[test]
    fn validate_reads_a_file() {
        let g = build_ktree(10, 3).unwrap().into_graph();
        let path = std::env::temp_dir().join("lhg_cli_validate_test.edges");
        std::fs::write(&path, to_edge_list(&g)).unwrap();
        let out =
            run_to_string(&["validate", "--k", "3", "--file", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("LHG: true"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn plan_recommends_kdiamond() {
        let out = run_to_string(&["plan", "--n", "30", "--f", "2"]).unwrap();
        assert!(out.contains("K-DIAMOND"), "{out}");
        assert!(out.contains("regular=true"), "{out}");
        assert!(run_to_string(&["plan", "--n", "5", "--f", "2"]).is_err());
    }

    #[test]
    fn flood_reports_full_reliability_at_k_minus_1() {
        let out = run_to_string(&[
            "flood",
            "--n",
            "20",
            "--k",
            "3",
            "--failures",
            "2",
            "--trials",
            "10",
        ])
        .unwrap();
        assert!(out.contains("reliability 1.000"), "{out}");
    }

    #[test]
    fn census_prints_the_table() {
        let out = run_to_string(&["census", "--k", "3", "--max-n", "12"]).unwrap();
        assert!(out.lines().count() >= 9);
        assert!(out.contains("REG(K-DIAMOND)"));
    }

    #[test]
    fn cluster_runs_end_to_end_with_one_crash() {
        let out = run_to_string(&[
            "cluster",
            "--nodes",
            "7",
            "-k",
            "2",
            "--kill",
            "1",
            "--metrics",
            "summary",
        ])
        .unwrap();
        assert!(out.contains("delivered by all 7 nodes"), "{out}");
        assert!(out.contains("killed node 6"), "{out}");
        assert!(out.contains("2-node-connected: true"), "{out}");
        assert!(out.contains("delivered by all 6 survivors"), "{out}");
        assert!(out.contains("metrics:"), "{out}");
    }

    #[test]
    fn observe_reports_spanning_broadcasts_with_one_crash() {
        let events = std::env::temp_dir().join("lhg_cli_observe_test.jsonl");
        let out = run_to_string(&[
            "observe",
            "--nodes",
            "7",
            "-k",
            "2",
            "--kill",
            "1",
            "--events",
            events.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("timeline"), "{out}");
        assert!(out.contains("broadcast_accept"), "{out}");
        assert!(out.contains("suspicion"), "{out}");
        assert!(out.contains("heal_end"), "{out}");
        assert!(out.contains("per-broadcast hop report"), "{out}");
        // Two report rows: one pre-crash, one post-heal; both spanning.
        let rows = out
            .lines()
            .filter(|l| l.trim_start().starts_with("0x"))
            .count();
        assert_eq!(rows, 2, "{out}");
        assert!(!out.contains("false"), "no spanning violations: {out}");
        // The --events dump holds the full unfiltered timeline.
        let dump = std::fs::read_to_string(&events).unwrap();
        assert!(dump.lines().count() > 50, "traffic included");
        assert!(dump.contains("\"event\":\"heartbeat\""));
        std::fs::remove_file(&events).ok();
    }

    #[test]
    fn observe_json_emits_events_and_reports() {
        let out = run_to_string(&[
            "observe",
            "--nodes",
            "6",
            "-k",
            "2",
            "--format",
            "json",
            "--broadcasts",
            "2",
        ])
        .unwrap();
        assert!(
            out.starts_with("{\"nodes\":6,\"k\":2,\"killed\":[]"),
            "{out}"
        );
        assert!(out.contains("\"events\":[{"), "{out}");
        assert!(out.contains("\"reports\":[{"), "{out}");
        assert_eq!(out.matches("\"max_hops\"").count(), 2, "{out}");
        assert!(out.contains("\"spanning\":true"), "{out}");
        assert!(!out.contains("\"spanning\":false"), "{out}");
        // Per-broadcast wire accounting: one cost record per broadcast,
        // each with a positive frame count.
        assert!(out.contains("\"wire\":[{"), "{out}");
        assert_eq!(out.matches("\"frames\":").count(), 2, "{out}");
        assert!(!out.contains("\"frames\":0"), "{out}");
    }

    #[test]
    fn observe_rejects_bad_options() {
        let e = run_to_string(&["observe", "--nodes", "8", "-k", "2", "--kill", "2"]).unwrap_err();
        assert!(e.message.contains("fail-stop model"), "{e}");
        let e =
            run_to_string(&["observe", "--nodes", "6", "-k", "2", "--format", "xml"]).unwrap_err();
        assert!(e.message.contains("unknown format"), "{e}");
        let e = run_to_string(&["observe", "--nodes", "6", "-k", "2", "--broadcasts", "0"])
            .unwrap_err();
        assert!(e.message.contains("at least 1"), "{e}");
    }

    #[test]
    fn cluster_rejects_model_violations() {
        let e = run_to_string(&["cluster", "--nodes", "8", "-k", "2", "--kill", "2"]).unwrap_err();
        assert!(e.message.contains("fail-stop model"), "{e}");
        let e = run_to_string(&["cluster", "--nodes", "5", "-k", "3"]).unwrap_err();
        assert!(e.message.contains("too small"), "{e}");
    }

    #[test]
    fn chaos_sim_sweep_passes_and_prints_summaries() {
        let out = run_to_string(&["chaos", "--seeds", "3", "--engine", "sim", "--quick"]).unwrap();
        assert_eq!(out.matches("engine=sim").count(), 3, "{out}");
        assert_eq!(out.matches(" ok").count(), 3, "{out}");
        assert!(out.contains("all 3 run(s) over 3 seed(s) passed"), "{out}");
    }

    #[test]
    fn chaos_both_engines_run_one_seed() {
        let out = run_to_string(&["chaos", "--seeds", "1", "--quick"]).unwrap();
        assert!(out.contains("engine=sim"), "{out}");
        assert!(out.contains("engine=tcp"), "{out}");
        assert!(out.contains("all 2 run(s) over 1 seed(s) passed"), "{out}");
    }

    #[test]
    fn chaos_rejects_bad_options() {
        let e = run_to_string(&["chaos", "--engine", "quantum"]).unwrap_err();
        assert!(e.message.contains("unknown engine"), "{e}");
        let e = run_to_string(&["chaos", "--seeds", "0"]).unwrap_err();
        assert!(e.message.contains("at least 1"), "{e}");
        let e = run_to_string(&["chaos", "--family", "cosmic-rays"]).unwrap_err();
        assert!(e.message.contains("unknown family"), "{e}");
        assert!(e.message.contains("byzantine"), "{e}");
    }

    #[test]
    fn chaos_family_filter_runs_only_that_family() {
        let out = run_to_string(&[
            "chaos", "--seeds", "2", "--engine", "sim", "--family", "lossy", "--quick",
        ])
        .unwrap();
        assert_eq!(out.matches("family=lossy").count(), 2, "{out}");
        assert!(!out.contains("family=crash"), "{out}");
        assert!(!out.contains("family=partition"), "{out}");
        assert!(out.contains("all 2 run(s) over 2 seed(s) passed"), "{out}");
    }

    #[test]
    fn chaos_byzantine_family_filter_runs_on_sim() {
        let out = run_to_string(&[
            "chaos",
            "--seeds",
            "2",
            "--engine",
            "sim",
            "--family",
            "byzantine",
            "--quick",
        ])
        .unwrap();
        assert_eq!(out.matches("family=byzantine").count(), 2, "{out}");
        assert!(out.contains("all 2 run(s) over 2 seed(s) passed"), "{out}");
    }

    #[test]
    fn chaos_mixed_family_with_overrides_runs_on_sim() {
        let out = run_to_string(&[
            "chaos",
            "--seeds",
            "1",
            "--engine",
            "sim",
            "--family",
            "mixed",
            "--k",
            "5",
            "--traitors",
            "2",
            "--quick",
        ])
        .unwrap();
        assert!(out.contains("family=mixed"), "{out}");
        assert!(out.contains("k=5"), "{out}");
        assert!(out.contains("all 1 run(s) over 1 seed(s) passed"), "{out}");
    }

    #[test]
    fn chaos_rejects_bad_overrides() {
        let e = run_to_string(&["chaos", "--family", "mixed", "--k", "2"]).unwrap_err();
        assert!(e.message.contains("--k must be in 3..=5"), "{e}");
        let e = run_to_string(&["chaos", "--family", "mixed", "--traitors", "0"]).unwrap_err();
        assert!(e.message.contains("at least 1"), "{e}");
    }

    #[test]
    fn byzantine_demo_survives_every_traitor_behavior() {
        for traitor in [
            "none",
            "equivocate",
            "forge",
            "silent",
            "replay",
            "frame_crash",
            "suppress_heartbeat",
        ] {
            let out = run_to_string(&[
                "byzantine",
                "--nodes",
                "8",
                "--k",
                "3",
                "--traitor",
                traitor,
            ])
            .unwrap_or_else(|e| panic!("traitor {traitor}: {e}"));
            assert!(out.contains("n=8 k=3 f=1"), "{traitor}: {out}");
            assert!(
                out.contains("delivered by 7 of 7 correct nodes")
                    || out.contains("delivered by 8 of 8 correct nodes"),
                "{traitor}: {out}"
            );
            assert!(out.contains("byzantine broadcast ok"), "{traitor}: {out}");
        }
    }

    #[test]
    fn byzantine_demo_rejects_bad_options() {
        let e = run_to_string(&["byzantine", "--nodes", "8", "--k", "2"]).unwrap_err();
        assert!(e.message.contains("tolerates no traitors"), "{e}");
        let e = run_to_string(&[
            "byzantine",
            "--nodes",
            "8",
            "--k",
            "3",
            "--traitor",
            "gremlin",
        ])
        .unwrap_err();
        assert!(e.message.contains("unknown traitor behavior"), "{e}");
        // k=2 with no traitor is legal: f=0, plain quorum broadcast.
        let out =
            run_to_string(&["byzantine", "--nodes", "6", "--k", "2", "--traitor", "none"]).unwrap();
        assert!(out.contains("f=0"), "{out}");
    }

    #[test]
    fn chaos_json_writes_one_object_per_run() {
        let path =
            std::env::temp_dir().join(format!("lhg-chaos-json-{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let out = run_to_string(&[
            "chaos", "--seeds", "2", "--engine", "sim", "--quick", "--json", &path_str,
        ])
        .unwrap();
        assert!(out.contains("JSON summaries written"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2, "{body}");
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"engine\":\"sim\""), "{line}");
            assert!(line.contains("\"passed\":true"), "{line}");
            assert!(line.contains("\"violations\":[]"), "{line}");
            // Each record embeds the run's telemetry summary with the
            // per-class wire decomposition.
            assert!(line.contains("\"telemetry\":{"), "{line}");
            assert!(line.contains("\"wire\":{"), "{line}");
        }
    }

    /// The acceptance check for wire-cost accounting: every frame the TCP
    /// engine writes is classified, and the per-class totals reconcile
    /// with the codec-level counters *exactly* — not approximately.
    #[test]
    fn top_json_per_class_totals_match_engine_counters_exactly() {
        let out = run_to_string(&[
            "top",
            "--nodes",
            "64",
            "-k",
            "3",
            "--broadcasts",
            "3",
            "--duration-ms",
            "400",
            "--json",
        ])
        .unwrap();
        let doc: serde::Value = serde_json::from_str(&out).unwrap();
        let get_u64 = |v: &serde::Value, name: &str| {
            v.field(name)
                .and_then(serde::Value::as_u64)
                .unwrap_or_else(|| panic!("missing {name}: {out}"))
        };
        let serde::Value::Obj(classes) = doc.field("classes").expect("classes") else {
            panic!("classes is not an object: {out}");
        };
        let mut frames = 0u64;
        let mut bytes = 0u64;
        for (_, v) in classes {
            frames += get_u64(v, "frames");
            bytes += get_u64(v, "bytes");
        }
        // A live cluster speaks more than one dialect: data floods plus
        // at least heartbeats and hello handshakes.
        assert!(classes.len() >= 3, "classes seen: {out}");
        assert!(classes.iter().any(|(name, _)| name == "data"), "{out}");
        assert!(classes.iter().any(|(name, _)| name == "heartbeat"), "{out}");
        let counters = doc.field("counters").expect("counters");
        assert_eq!(frames, get_u64(counters, "runtime.messages_sent"), "{out}");
        assert_eq!(bytes, get_u64(counters, "runtime.bytes_sent"), "{out}");
        assert_eq!(frames, get_u64(&doc, "total_frames"), "{out}");
        assert_eq!(bytes, get_u64(&doc, "total_bytes"), "{out}");
        assert!(get_u64(&doc, "samples") >= 2, "{out}");
    }

    #[test]
    fn top_human_renders_the_class_table() {
        let out = run_to_string(&[
            "top",
            "--nodes",
            "6",
            "-k",
            "2",
            "--broadcasts",
            "2",
            "--duration-ms",
            "250",
            "--interval-ms",
            "50",
        ])
        .unwrap();
        assert!(out.contains("cluster n=6 k=2"), "{out}");
        assert!(out.contains("CLASS"), "{out}");
        assert!(out.contains("data"), "{out}");
        assert!(out.contains("heartbeat"), "{out}");
        assert!(out.contains("delivery latency"), "{out}");
    }

    #[test]
    fn top_rejects_bad_options() {
        let e =
            run_to_string(&["top", "--nodes", "6", "-k", "2", "--interval-ms", "0"]).unwrap_err();
        assert!(e.message.contains("interval"), "{e}");
    }

    #[test]
    fn bench_compare_green_on_a_fresh_recording() {
        use lhg_bench::baseline::{render_baseline_json, run_mode_baseline};
        let rows = vec![run_mode_baseline("flood", 16)];
        let path =
            std::env::temp_dir().join(format!("lhg-bench-green-{}.json", std::process::id()));
        std::fs::write(&path, render_baseline_json(&rows)).unwrap();
        // n=16 wall times are sub-millisecond, so when the suite's other
        // tests saturate the machine the re-measurement can swing far
        // beyond any sane production threshold. A wide one still proves
        // the green path end to end; thresholds themselves are exercised
        // deterministically in lhg_bench::compare's unit tests.
        let out = run_to_string(&[
            "bench",
            "--compare",
            path.to_str().unwrap(),
            "--threshold",
            "0.95",
        ])
        .unwrap();
        assert!(out.contains("PASS"), "{out}");
        let out = run_to_string(&[
            "bench",
            "--compare",
            path.to_str().unwrap(),
            "--threshold",
            "0.95",
            "--json",
        ])
        .unwrap();
        assert!(out.contains("\"regressed\":false"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    /// The acceptance check for the regression gate: a recording whose
    /// throughput the current tree cannot possibly match (doubled) must
    /// exit non-zero.
    #[test]
    fn bench_compare_fails_on_synthetic_regression() {
        use lhg_bench::baseline::{render_baseline_json, run_mode_baseline};
        let doc = render_baseline_json(&[run_mode_baseline("flood", 16)]);
        // Doctor the recorded throughput: 20× it, simulating a tree that
        // has since become far slower than the recording — wide enough
        // that parallel-suite scheduling noise can't mask the regression.
        let marker = "\"throughput_msgs_per_sec\": ";
        let pos = doc.find(marker).unwrap() + marker.len();
        let end = pos + doc[pos..].find(',').unwrap();
        let recorded: f64 = doc[pos..end].parse().unwrap();
        let doctored = format!("{}{:.0}{}", &doc[..pos], recorded * 20.0, &doc[end..]);
        let path =
            std::env::temp_dir().join(format!("lhg-bench-regressed-{}.json", std::process::id()));
        std::fs::write(&path, doctored).unwrap();
        let e = run_to_string(&["bench", "--compare", path.to_str().unwrap()]).unwrap_err();
        assert!(e.message.contains("regressed"), "{e}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_rejects_bad_options() {
        let e = run_to_string(&["bench"]).unwrap_err();
        assert!(e.message.contains("--compare"), "{e}");
        let e = run_to_string(&["bench", "--compare", "/nonexistent/base.json"]).unwrap_err();
        assert!(e.message.contains("cannot read"), "{e}");
    }

    #[test]
    fn unknown_command_fails_with_usage() {
        let e = run_to_string(&["frobnicate"]).unwrap_err();
        assert!(e.message.contains("USAGE"));
        let e = run_to_string(&[]).unwrap_err();
        assert!(e.message.contains("no command"));
    }

    #[test]
    fn option_parser_rejects_positional_and_dangling() {
        assert!(run_to_string(&["generate", "positional"]).is_err());
        assert!(run_to_string(&["generate", "--n"]).is_err());
    }
}
