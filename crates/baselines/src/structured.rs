//! Structured topologies: hypercube, de Bruijn, butterfly, torus, and the
//! elementary graphs (path, cycle, star, complete, balanced trees).
//!
//! These are the "specific subsets of LHGs" the papers cite (hypercubes and
//! de Bruijn graphs are logarithmic-diameter and k-connected, but exist only
//! for very particular (n, k) pairs — the motivation for general-purpose
//! constraints like K-TREE). Experiment E14 measures exactly how sparse
//! their existence sets are.

use lhg_graph::{Graph, NodeId};

/// Path P_n: 0 − 1 − … − n−1.
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId(i - 1), NodeId(i));
    }
    g
}

/// Cycle C_n (`n ≥ 3`).
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut g = path(n);
    g.add_edge(NodeId(n - 1), NodeId(0));
    g
}

/// Star S_n: node 0 adjacent to all others.
#[must_use]
pub fn star(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId(0), NodeId(i));
    }
    g
}

/// Complete graph K_n.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId(i), NodeId(j));
        }
    }
    g
}

/// Balanced b-ary tree with the given number of nodes (heap layout: node i's
/// children are `b·i + 1 … b·i + b`).
///
/// # Panics
///
/// Panics if `b == 0`.
#[must_use]
pub fn balanced_tree(n: usize, b: usize) -> Graph {
    assert!(b >= 1, "branching factor must be positive");
    let mut g = Graph::with_nodes(n);
    for i in 1..n {
        g.add_edge(NodeId((i - 1) / b), NodeId(i));
    }
    g
}

/// Hypercube Q_d: 2^d nodes, edges between words at Hamming distance 1.
/// d-regular, d-connected, diameter d — an LHG that exists only at
/// `n = 2^k`.
#[must_use]
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::with_nodes(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1usize << bit);
            if v < w {
                g.add_edge(NodeId(v), NodeId(w));
            }
        }
    }
    g
}

/// Returns `Some(d)` if a d-dimensional hypercube has exactly `n` nodes and
/// connectivity `k` (requires `n = 2^k`, `d = k`).
#[must_use]
pub fn hypercube_params(n: usize, k: usize) -> Option<u32> {
    (k >= 1 && n == 1usize.checked_shl(k as u32)?).then_some(k as u32)
}

/// Undirected de Bruijn graph B(d, m): `d^m` nodes (words of length `m` over
/// a `d`-symbol alphabet), an edge between `w` and every left/right shift of
/// `w`. Self-loops and parallel edges of the directed de Bruijn graph are
/// dropped, so degrees are ≤ 2d. Diameter is exactly `m = log_d n`.
///
/// # Panics
///
/// Panics if `d < 2` or `m < 1`.
#[must_use]
pub fn de_bruijn(d: usize, m: u32) -> Graph {
    assert!(
        d >= 2 && m >= 1,
        "de Bruijn needs alphabet >= 2 and length >= 1"
    );
    let n = d.pow(m);
    let mut g = Graph::with_nodes(n);
    for v in 0..n {
        // Right shifts: v = (v_1 … v_m) -> (v_2 … v_m, s) for each symbol s.
        let shifted = (v % d.pow(m - 1)) * d;
        for s in 0..d {
            let w = shifted + s;
            if w != v {
                g.add_edge(NodeId(v), NodeId(w));
            }
        }
    }
    g
}

/// Returns `Some((d, m))` if an undirected de Bruijn graph with alphabet `k`
/// matches `n = k^m` nodes (the papers' "k-connected De Bruijn graphs are
/// k-regular graphs with k^m nodes" existence set).
#[must_use]
pub fn de_bruijn_params(n: usize, k: usize) -> Option<(usize, u32)> {
    if k < 2 || n < k {
        return None;
    }
    let mut m = 0u32;
    let mut acc = 1usize;
    while acc < n {
        acc = acc.checked_mul(k)?;
        m += 1;
    }
    (acc == n && m >= 1).then_some((k, m))
}

/// Wrapped butterfly BF(d): `d · 2^d` nodes `(level, row)`, edges from
/// `(l, r)` to `(l+1 mod d, r)` and `(l+1 mod d, r ^ 2^l)`. 4-regular with
/// logarithmic diameter.
///
/// # Panics
///
/// Panics if `d < 2`.
#[must_use]
pub fn butterfly(d: u32) -> Graph {
    assert!(d >= 2, "butterfly needs dimension >= 2");
    let rows = 1usize << d;
    let n = d as usize * rows;
    let id = |level: u32, row: usize| NodeId(level as usize * rows + row);
    let mut g = Graph::with_nodes(n);
    for level in 0..d {
        let next = (level + 1) % d;
        for row in 0..rows {
            g.add_edge(id(level, row), id(next, row));
            g.add_edge(id(level, row), id(next, row ^ (1usize << level)));
        }
    }
    g
}

/// 2-D torus (wraparound grid) with `rows × cols` nodes; 4-regular for
/// `rows, cols ≥ 3`.
///
/// # Panics
///
/// Panics if either dimension is smaller than 3.
#[must_use]
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
    let id = |r: usize, c: usize| NodeId(r * cols + c);
    let mut g = Graph::with_nodes(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(id(r, c), id((r + 1) % rows, c));
            g.add_edge(id(r, c), id(r, (c + 1) % cols));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_graph::components::is_connected;
    use lhg_graph::connectivity::{edge_connectivity, vertex_connectivity};
    use lhg_graph::degree::{degree_stats, is_k_regular};
    use lhg_graph::paths::diameter;

    #[test]
    fn elementary_graphs() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(complete(5).edge_count(), 10);
        assert!(is_connected(&balanced_tree(13, 3)));
        assert_eq!(balanced_tree(13, 3).edge_count(), 12);
    }

    #[test]
    fn balanced_tree_depth_is_logarithmic() {
        let g = balanced_tree(40, 3);
        assert!(diameter(&g).unwrap() <= 8);
    }

    #[test]
    fn hypercube_q4_properties() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert!(is_k_regular(&g, 4));
        assert_eq!(vertex_connectivity(&g), 4);
        assert_eq!(edge_connectivity(&g), 4);
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn hypercube_params_only_at_powers_of_two() {
        assert_eq!(hypercube_params(16, 4), Some(4));
        assert_eq!(hypercube_params(8, 3), Some(3));
        assert_eq!(hypercube_params(12, 3), None);
        assert_eq!(hypercube_params(16, 3), None);
        assert_eq!(hypercube_params(16, 0), None);
    }

    #[test]
    fn de_bruijn_2_3_is_connected_logarithmic() {
        let g = de_bruijn(2, 3);
        assert_eq!(g.node_count(), 8);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(3), "diameter = word length");
        let s = degree_stats(&g);
        assert!(s.max <= 4, "undirected degree at most 2d");
    }

    #[test]
    fn de_bruijn_3_2_nine_nodes() {
        let g = de_bruijn(3, 2);
        assert_eq!(g.node_count(), 9);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(2));
    }

    #[test]
    fn de_bruijn_params_only_at_powers() {
        assert_eq!(de_bruijn_params(8, 2), Some((2, 3)));
        assert_eq!(de_bruijn_params(9, 3), Some((3, 2)));
        assert_eq!(de_bruijn_params(10, 3), None);
        assert_eq!(de_bruijn_params(4, 1), None);
    }

    #[test]
    fn butterfly_is_4_regular_connected() {
        let g = butterfly(3);
        assert_eq!(g.node_count(), 24);
        assert!(is_k_regular(&g, 4));
        assert!(is_connected(&g));
        assert_eq!(vertex_connectivity(&g), 4);
    }

    #[test]
    fn torus_is_4_regular_4_connected() {
        let g = torus(4, 5);
        assert_eq!(g.node_count(), 20);
        assert!(is_k_regular(&g, 4));
        assert_eq!(vertex_connectivity(&g), 4);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_rejects_tiny() {
        let _ = cycle(2);
    }

    #[test]
    #[should_panic(expected = ">= 3")]
    fn torus_rejects_thin_dimensions() {
        let _ = torus(2, 5);
    }
}
