//! Law–Siu-style random expanders: the union of `d` independent random
//! Hamiltonian cycles on the same node set.
//!
//! The follow-up study's related work (\[12\], Law & Siu, INFOCOM 2003) builds
//! overlay expanders this way: 2d-regular, logarithmic diameter and
//! connectivity 2d *with high probability* (not deterministically — the
//! contrast with LHGs the experiments quantify).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use lhg_graph::{Graph, NodeId};

/// Union of `d` random Hamiltonian cycles on `n` nodes (seeded). The result
/// is 2d-regular unless cycles collide on an edge (increasingly unlikely for
/// large n); collisions merely lower a degree by sharing the edge.
///
/// # Panics
///
/// Panics if `n < 3` or `d == 0`.
#[must_use]
pub fn hamiltonian_expander(n: usize, d: usize, seed: u64) -> Graph {
    assert!(n >= 3, "a Hamiltonian cycle needs at least 3 nodes");
    assert!(d >= 1, "need at least one cycle");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(n);
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..d {
        order.shuffle(&mut rng);
        for i in 0..n {
            g.add_edge(NodeId(order[i]), NodeId(order[(i + 1) % n]));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_graph::components::is_connected;
    use lhg_graph::connectivity::vertex_connectivity;
    use lhg_graph::degree::degree_stats;
    use lhg_graph::paths::diameter;

    #[test]
    fn single_cycle_is_a_cycle() {
        let g = hamiltonian_expander(12, 1, 5);
        assert_eq!(g.edge_count(), 12);
        let s = degree_stats(&g);
        assert_eq!((s.min, s.max), (2, 2));
        assert!(is_connected(&g));
    }

    #[test]
    fn two_cycles_give_near_4_regular() {
        let g = hamiltonian_expander(40, 2, 7);
        let s = degree_stats(&g);
        assert!(s.max <= 4);
        assert!(s.min >= 2, "shared cycle edges can lower a degree");
        assert!(s.mean() > 3.5, "almost all nodes keep degree 4");
        assert!(is_connected(&g));
    }

    #[test]
    fn expander_has_small_diameter() {
        let g = hamiltonian_expander(200, 3, 11);
        let d = diameter(&g).unwrap();
        assert!(d <= 10, "expander diameter {d} should be logarithmic");
    }

    #[test]
    fn expander_is_highly_connected_whp() {
        let g = hamiltonian_expander(50, 2, 13);
        assert!(
            vertex_connectivity(&g) >= 3,
            "2 cycles are ≥3-connected w.h.p."
        );
    }

    #[test]
    fn reproducible_and_seed_sensitive() {
        let a = hamiltonian_expander(30, 2, 1);
        let b = hamiltonian_expander(30, 2, 1);
        let c = hamiltonian_expander(30, 2, 2);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rejects_tiny_n() {
        let _ = hamiltonian_expander(2, 1, 0);
    }
}
