//! # lhg-baselines
//!
//! Every comparison topology the LHG experiments need, generated from
//! scratch with deterministic seeds:
//!
//! * [`harary`] — classic Harary graphs H(k, n): k-connected with the
//!   minimum ⌈kn/2⌉ edges but Θ(n/k) diameter (the baseline LHGs improve
//!   on);
//! * [`structured`] — hypercubes, de Bruijn graphs, butterflies, tori,
//!   paths/cycles/stars/complete graphs and balanced trees;
//! * [`random`] — Erdős–Rényi G(n, p), random k-regular graphs
//!   (configuration model), random connected tree-plus-chords graphs;
//! * [`expander`] — Law–Siu-style unions of random Hamiltonian cycles;
//! * [`catalog`] — a uniform family view with existence predicates, used to
//!   measure how sparsely each family covers the (n, k) plane.
//!
//! # Example
//!
//! ```
//! use lhg_baselines::harary::harary_graph;
//! use lhg_graph::paths::diameter;
//!
//! // The motivating deficiency: H(3, 60) is edge-optimal but its diameter
//! // grows linearly with n (~ n/4 here; an LHG’s is logarithmic).
//! let h = harary_graph(60, 3);
//! assert!(diameter(&h).unwrap() >= 14);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod expander;
pub mod harary;
pub mod random;
pub mod structured;
