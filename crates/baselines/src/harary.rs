//! Classic Harary graphs H(k, n) — the k-connected graphs with the minimum
//! possible number of edges, ⌈kn/2⌉ (Harary 1962).
//!
//! These are the baseline the LHG paper improves on: H(k, n) is optimal in
//! edges but its diameter is Θ(n/k), so flooding over it needs linearly many
//! rounds. Experiment E7 plots exactly that contrast.
//!
//! Construction over nodes `0..n` on a circle:
//!
//! * `k = 2r` even — the circulant C_n⟨1, …, r⟩;
//! * `k = 2r+1` odd, `n` even — C_n⟨1, …, r⟩ plus all diameters
//!   `i ↔ i + n/2`;
//! * `k = 2r+1` odd, `n` odd — C_n⟨1, …, r⟩ plus the ⌈n/2⌉ "near-diameter"
//!   chords `i ↔ i + (n−1)/2` for `0 ≤ i ≤ (n−1)/2` (nodes 0, (n−1)/2 and
//!   n−1 get one extra edge; node 0 ends with degree k+1).

use lhg_graph::{Graph, NodeId};

/// Returns `true` if H(k, n) is defined: `1 ≤ k < n` (k = 1 yields a path
/// for n ≥ 2 by convention; the classic construction needs k ≥ 2).
#[must_use]
pub fn harary_exists(n: usize, k: usize) -> bool {
    k >= 1 && k < n
}

/// Builds the classic Harary graph H(k, n).
///
/// # Panics
///
/// Panics if `k == 0` or `k >= n`; check with [`harary_exists`] first.
///
/// # Example
///
/// ```
/// use lhg_baselines::harary::harary_graph;
/// use lhg_graph::connectivity::vertex_connectivity;
///
/// let h = harary_graph(8, 3);
/// assert_eq!(h.edge_count(), 12); // ⌈3·8/2⌉
/// assert_eq!(vertex_connectivity(&h), 3);
/// ```
#[must_use]
pub fn harary_graph(n: usize, k: usize) -> Graph {
    assert!(
        harary_exists(n, k),
        "H(k={k}, n={n}) is not defined (need 1 <= k < n)"
    );
    let mut g = Graph::with_nodes(n);
    if k == 1 {
        for i in 1..n {
            g.add_edge(NodeId(i - 1), NodeId(i));
        }
        return g;
    }
    let r = k / 2;
    for i in 0..n {
        for off in 1..=r {
            g.add_edge(NodeId(i), NodeId((i + off) % n));
        }
    }
    if k % 2 == 1 {
        if n.is_multiple_of(2) {
            for i in 0..n / 2 {
                g.add_edge(NodeId(i), NodeId(i + n / 2));
            }
        } else {
            let half = (n - 1) / 2;
            for i in 0..=half {
                g.add_edge(NodeId(i), NodeId((i + half) % n));
            }
        }
    }
    g
}

/// Number of edges of H(k, n): ⌈kn/2⌉ for `k ≥ 2` (Harary's theorem), and
/// `n − 1` for `k = 1` (a connected graph needs a spanning tree, which
/// exceeds ⌈n/2⌉).
#[must_use]
pub fn harary_edge_count(n: usize, k: usize) -> usize {
    if k == 1 {
        n.saturating_sub(1)
    } else {
        (k * n).div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_graph::connectivity::{edge_connectivity, vertex_connectivity};
    use lhg_graph::degree::degree_stats;
    use lhg_graph::paths::diameter;

    #[test]
    fn edge_counts_meet_the_lower_bound() {
        for k in 1..=6 {
            for n in (k + 1)..=(k + 14) {
                let g = harary_graph(n, k);
                assert_eq!(g.edge_count(), harary_edge_count(n, k), "H({k},{n})");
            }
        }
    }

    #[test]
    fn connectivity_is_exactly_k() {
        for k in 2..=5 {
            for n in (k + 1)..=(k + 12) {
                let g = harary_graph(n, k);
                assert_eq!(vertex_connectivity(&g), k, "κ of H({k},{n})");
                assert_eq!(edge_connectivity(&g), k, "λ of H({k},{n})");
            }
        }
    }

    #[test]
    fn even_k_is_regular() {
        for n in [7, 10, 13] {
            let g = harary_graph(n, 4);
            let s = degree_stats(&g);
            assert_eq!((s.min, s.max), (4, 4), "H(4,{n})");
        }
    }

    #[test]
    fn odd_k_even_n_is_regular() {
        let g = harary_graph(10, 3);
        let s = degree_stats(&g);
        assert_eq!((s.min, s.max), (3, 3));
    }

    #[test]
    fn odd_k_odd_n_has_one_heavier_node() {
        let g = harary_graph(9, 3);
        let s = degree_stats(&g);
        assert_eq!(s.min, 3);
        assert_eq!(s.max, 4);
        assert_eq!(s.sum, 2 * harary_edge_count(9, 3));
    }

    #[test]
    fn k1_is_a_path() {
        let g = harary_graph(5, 1);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(vertex_connectivity(&g), 1);
    }

    #[test]
    fn k2_is_a_cycle() {
        let g = harary_graph(7, 2);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(vertex_connectivity(&g), 2);
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn diameter_grows_linearly_with_n() {
        // The motivating deficiency: H(4, n) has diameter ~ n/4.
        let d1 = diameter(&harary_graph(40, 4)).unwrap();
        let d2 = diameter(&harary_graph(80, 4)).unwrap();
        assert!(d2 >= 2 * d1 - 2, "H(4,40) d={d1}, H(4,80) d={d2}");
        assert!(d1 >= 40 / 4 - 1);
    }

    #[test]
    #[should_panic(expected = "not defined")]
    fn rejects_k_equal_n() {
        let _ = harary_graph(4, 4);
    }

    #[test]
    fn exists_predicate() {
        assert!(harary_exists(5, 4));
        assert!(!harary_exists(5, 5));
        assert!(!harary_exists(5, 0));
    }
}
