//! Random topologies with seeded, reproducible generation: Erdős–Rényi
//! G(n, p), random k-regular graphs (configuration model), and random
//! spanning-tree-plus-chords graphs.
//!
//! The gossip literature the LHG paper contrasts with (\[5\], \[12\], \[17\] in
//! the follow-up's bibliography) floods over random graphs whose
//! connectivity holds only *with high probability*; these generators provide
//! that comparison arm for experiments E9–E11.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use lhg_graph::{Graph, NodeId};

/// Erdős–Rényi G(n, p): each pair independently an edge with probability
/// `p`, drawn from the seeded RNG.
///
/// # Panics
///
/// Panics if `p` is not within `0.0..=1.0`.
#[must_use]
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random_bool(p) {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
    }
    g
}

/// G(n, p) with `p` chosen so the expected mean degree is `d`
/// (`p = d / (n−1)`).
#[must_use]
pub fn gnp_with_mean_degree(n: usize, d: f64, seed: u64) -> Graph {
    if n <= 1 {
        return Graph::with_nodes(n);
    }
    gnp(n, (d / (n as f64 - 1.0)).clamp(0.0, 1.0), seed)
}

/// Random k-regular graph by the configuration (pairing) model with
/// pair-swap repair: k·n stubs are shuffled and paired; self-loops and
/// duplicate edges are then repaired by random pair swaps (the standard
/// fix-up, which converges quickly for k ≪ n). Returns `None` if `k·n` is
/// odd, `k ≥ n`, or no simple pairing emerged within `max_tries` attempts.
#[must_use]
pub fn random_regular(n: usize, k: usize, seed: u64, max_tries: usize) -> Option<Graph> {
    if k >= n || (k * n) % 2 == 1 {
        return None;
    }
    if k == 0 {
        return Some(Graph::with_nodes(n));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..max_tries).find_map(|_| pairing_attempt(n, k, &mut rng))
}

/// One shuffled pairing plus a bounded repair phase.
fn pairing_attempt(n: usize, k: usize, rng: &mut StdRng) -> Option<Graph> {
    let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, k)).collect();
    stubs.shuffle(rng);
    let mut pairs: Vec<(usize, usize)> = stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();
    let budget = 100 * pairs.len();
    for _ in 0..budget {
        // Locate the first violating pair (self-loop or duplicate edge).
        let mut seen = std::collections::HashSet::with_capacity(pairs.len());
        let mut bad = None;
        for (i, &(a, b)) in pairs.iter().enumerate() {
            if a == b || !seen.insert((a.min(b), a.max(b))) {
                bad = Some(i);
                break;
            }
        }
        let Some(i) = bad else {
            let mut g = Graph::with_nodes(n);
            for &(a, b) in &pairs {
                g.add_edge(NodeId(a), NodeId(b));
            }
            return Some(g);
        };
        // Swap its second stub with a random other pair's.
        let j = rng.random_range(0..pairs.len());
        if i != j {
            let (a, b) = pairs[i];
            let (c, d) = pairs[j];
            pairs[i] = (a, d);
            pairs[j] = (c, b);
        }
    }
    None
}

/// A connected random graph: a uniform random spanning tree (random Prüfer
/// sequence) plus `extra_edges` random chords. Mean degree ≈ 2 + 2·extra/n.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn random_connected(n: usize, extra_edges: usize, seed: u64) -> Graph {
    assert!(n >= 1, "need at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(n);
    if n == 1 {
        return g;
    }
    if n == 2 {
        g.add_edge(NodeId(0), NodeId(1));
        return g;
    }
    // Random Prüfer sequence -> uniform random labelled tree.
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in &prufer {
        let std::cmp::Reverse(leaf) = heap.pop().expect("prufer invariant");
        g.add_edge(NodeId(leaf), NodeId(v));
        degree[leaf] -= 1;
        degree[v] -= 1;
        if degree[v] == 1 {
            heap.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(a) = heap.pop().expect("two leaves remain");
    let std::cmp::Reverse(b) = heap.pop().expect("two leaves remain");
    g.add_edge(NodeId(a), NodeId(b));

    // Random chords.
    let mut added = 0;
    let mut guard = 0;
    while added < extra_edges && guard < 100 * (extra_edges + 1) {
        guard += 1;
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b && g.add_edge(NodeId(a), NodeId(b)) {
            added += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_graph::components::is_connected;
    use lhg_graph::degree::{degree_stats, is_k_regular};

    #[test]
    fn gnp_extremes() {
        let empty = gnp(10, 0.0, 1);
        assert_eq!(empty.edge_count(), 0);
        let full = gnp(10, 1.0, 1);
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn gnp_is_reproducible_and_seed_sensitive() {
        let a = gnp(30, 0.2, 42);
        let b = gnp(30, 0.2, 42);
        let c = gnp(30, 0.2, 43);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn gnp_mean_degree_is_close() {
        let g = gnp_with_mean_degree(400, 6.0, 7);
        let mean = degree_stats(&g).mean();
        assert!((mean - 6.0).abs() < 1.0, "mean degree {mean}");
    }

    #[test]
    fn random_regular_is_regular() {
        for (n, k) in [(10, 3), (12, 4), (20, 5)] {
            let g = random_regular(n, k, 1, 50).unwrap();
            assert!(is_k_regular(&g, k), "({n},{k})");
        }
    }

    #[test]
    fn random_regular_rejects_impossible() {
        assert!(random_regular(5, 3, 1, 50).is_none(), "odd kn");
        assert!(random_regular(4, 4, 1, 50).is_none(), "k >= n");
        assert!(random_regular(6, 0, 1, 50).is_some());
    }

    #[test]
    fn random_regular_is_reproducible() {
        let a = random_regular(16, 3, 9, 100).unwrap();
        let b = random_regular(16, 3, 9, 100).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let g = random_connected(50, 10, seed);
            assert!(is_connected(&g), "seed {seed}");
            assert_eq!(g.node_count(), 50);
            assert!(g.edge_count() >= 49);
        }
    }

    #[test]
    fn random_connected_tree_has_n_minus_1_edges() {
        let g = random_connected(40, 0, 3);
        assert_eq!(g.edge_count(), 39);
        assert!(is_connected(&g));
    }

    #[test]
    fn random_connected_small_cases() {
        assert_eq!(random_connected(1, 5, 0).edge_count(), 0);
        assert_eq!(random_connected(2, 0, 0).edge_count(), 1);
        let g = random_connected(3, 0, 0);
        assert!(is_connected(&g));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gnp_rejects_bad_probability() {
        let _ = gnp(5, 1.5, 0);
    }
}
