//! Family catalog: a uniform view over every topology family, used by the
//! applicability experiments (E14) and the flooding comparisons (E9–E11).
//!
//! Each [`Family`] can answer "does a member exist for (n, k)?" and build
//! the member when it does. This quantifies the papers' motivating point:
//! hypercubes and de Bruijn graphs are fine LHGs but exist for a vanishing
//! fraction of (n, k) pairs, while K-TREE/K-DIAMOND cover every `n ≥ 2k`.

use lhg_graph::Graph;

use crate::harary::{harary_exists, harary_graph};
use crate::structured::{de_bruijn, de_bruijn_params, hypercube, hypercube_params};

/// A named topology family with an existence predicate and a builder.
#[derive(Clone, Copy)]
pub struct Family {
    /// Display name.
    pub name: &'static str,
    /// Returns `true` if a member with `n` nodes and connectivity ≥ `k`
    /// exists in this family.
    pub exists: fn(n: usize, k: usize) -> bool,
    /// Builds the member, or `None` when it does not exist.
    pub build: fn(n: usize, k: usize) -> Option<Graph>,
}

impl core::fmt::Debug for Family {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Family").field("name", &self.name).finish()
    }
}

fn harary_family_exists(n: usize, k: usize) -> bool {
    harary_exists(n, k)
}

fn harary_family_build(n: usize, k: usize) -> Option<Graph> {
    harary_exists(n, k).then(|| harary_graph(n, k))
}

fn hypercube_family_exists(n: usize, k: usize) -> bool {
    hypercube_params(n, k).is_some()
}

fn hypercube_family_build(n: usize, k: usize) -> Option<Graph> {
    hypercube_params(n, k).map(hypercube)
}

fn de_bruijn_family_exists(n: usize, k: usize) -> bool {
    de_bruijn_params(n, k).is_some()
}

fn de_bruijn_family_build(n: usize, k: usize) -> Option<Graph> {
    de_bruijn_params(n, k).map(|(d, m)| de_bruijn(d, m))
}

/// The classic Harary family H(k, n): exists for every `1 ≤ k < n`.
pub const HARARY: Family = Family {
    name: "Harary H(k,n)",
    exists: harary_family_exists,
    build: harary_family_build,
};

/// Hypercubes: exist only at `n = 2^k`.
pub const HYPERCUBE: Family = Family {
    name: "Hypercube",
    exists: hypercube_family_exists,
    build: hypercube_family_build,
};

/// De Bruijn graphs: exist only at `n = k^m`.
pub const DE_BRUIJN: Family = Family {
    name: "De Bruijn",
    exists: de_bruijn_family_exists,
    build: de_bruijn_family_build,
};

/// All baseline families, in display order.
pub const ALL_FAMILIES: &[Family] = &[HARARY, HYPERCUBE, DE_BRUIJN];

/// Fraction of `n ∈ k+1 ..= max_n` for which the family has a member at
/// connectivity `k`.
#[must_use]
pub fn existence_density(family: &Family, k: usize, max_n: usize) -> f64 {
    if max_n <= k {
        return 0.0;
    }
    let total = max_n - k;
    let hits = ((k + 1)..=max_n).filter(|&n| (family.exists)(n, k)).count();
    hits as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harary_is_dense_hypercube_sparse() {
        let h = existence_density(&HARARY, 3, 200);
        let q = existence_density(&HYPERCUBE, 3, 200);
        let b = existence_density(&DE_BRUIJN, 3, 200);
        assert!(h > 0.99, "Harary density {h}");
        assert!(q < 0.02, "hypercube density {q}");
        assert!(b < 0.03, "de Bruijn density {b}");
    }

    #[test]
    fn build_agrees_with_exists() {
        for family in ALL_FAMILIES {
            for k in 2..=4 {
                for n in 2..40 {
                    let exists = (family.exists)(n, k);
                    let built = (family.build)(n, k);
                    assert_eq!(exists, built.is_some(), "{} (n={n},k={k})", family.name);
                    if let Some(g) = built {
                        assert_eq!(g.node_count(), n, "{} (n={n},k={k})", family.name);
                    }
                }
            }
        }
    }

    #[test]
    fn debug_prints_name() {
        assert!(format!("{HARARY:?}").contains("Harary"));
    }

    #[test]
    fn density_edge_case() {
        assert_eq!(existence_density(&HARARY, 5, 3), 0.0);
    }
}
