//! Property-based tests for the LHG constructions.
//!
//! Random (n, k) pairs from the valid domain; every built graph must be a
//! genuine LHG, satisfy its constraint rule-by-rule, and match the
//! regularity closed form.

use proptest::prelude::*;

use lhg_core::checker::check_constraint;
use lhg_core::jd::{build_jd, is_jd_constructible};
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_core::properties::{p4_diameter_bound, validate};
use lhg_core::regularity::{reg_kdiamond, reg_ktree};
use lhg_graph::connectivity::{edge_connectivity, vertex_connectivity};
use lhg_graph::degree::{degree_stats, is_k_regular};
use lhg_graph::paths::diameter;

/// Valid (n, k) domain with k >= 3 (the non-degenerate diameter regime).
fn arb_params() -> impl Strategy<Value = (usize, usize)> {
    (3usize..=6).prop_flat_map(|k| ((2 * k)..=(2 * k + 60)).prop_map(move |n| (n, k)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ktree_builds_are_lhgs((n, k) in arb_params()) {
        let lhg = build_ktree(n, k).unwrap();
        prop_assert_eq!(lhg.n(), n);
        let report = validate(lhg.graph(), k);
        prop_assert!(report.is_lhg(), "(n={}, k={}): {:?}", n, k, report);
        prop_assert_eq!(report.regular, reg_ktree(n, k));
    }

    #[test]
    fn kdiamond_builds_are_lhgs((n, k) in arb_params()) {
        let lhg = build_kdiamond(n, k).unwrap();
        prop_assert_eq!(lhg.n(), n);
        let report = validate(lhg.graph(), k);
        prop_assert!(report.is_lhg(), "(n={}, k={}): {:?}", n, k, report);
        prop_assert_eq!(report.regular, reg_kdiamond(n, k));
    }

    #[test]
    fn jd_builds_are_lhgs((n, k) in arb_params()) {
        if is_jd_constructible(n, k) {
            let lhg = build_jd(n, k).unwrap();
            let report = validate(lhg.graph(), k);
            prop_assert!(report.is_lhg(), "(n={}, k={}): {:?}", n, k, report);
        } else {
            prop_assert!(build_jd(n, k).is_err());
        }
    }

    #[test]
    fn connectivity_is_exactly_k((n, k) in arb_params()) {
        for lhg in [build_ktree(n, k).unwrap(), build_kdiamond(n, k).unwrap()] {
            prop_assert_eq!(vertex_connectivity(lhg.graph()), k);
            prop_assert_eq!(edge_connectivity(lhg.graph()), k);
            prop_assert_eq!(degree_stats(lhg.graph()).min, k);
        }
    }

    #[test]
    fn constraint_checker_accepts_all_builds((n, k) in arb_params()) {
        for lhg in [build_ktree(n, k).unwrap(), build_kdiamond(n, k).unwrap()] {
            let violations = check_constraint(&lhg);
            prop_assert!(violations.is_empty(), "(n={}, k={}): {:?}", n, k, violations);
        }
        if is_jd_constructible(n, k) {
            let lhg = build_jd(n, k).unwrap();
            prop_assert!(check_constraint(&lhg).is_empty());
        }
    }

    #[test]
    fn diameter_within_logarithmic_bound((n, k) in arb_params()) {
        for lhg in [build_ktree(n, k).unwrap(), build_kdiamond(n, k).unwrap()] {
            let d = diameter(lhg.graph()).expect("LHGs are connected");
            prop_assert!(
                f64::from(d) <= p4_diameter_bound(n, k),
                "(n={}, k={}): diameter {} > bound {}",
                n, k, d, p4_diameter_bound(n, k)
            );
        }
    }

    #[test]
    fn builds_are_deterministic((n, k) in arb_params()) {
        let a = build_ktree(n, k).unwrap();
        let b = build_ktree(n, k).unwrap();
        prop_assert_eq!(a.graph().fingerprint(), b.graph().fingerprint());
        let a = build_kdiamond(n, k).unwrap();
        let b = build_kdiamond(n, k).unwrap();
        prop_assert_eq!(a.graph().fingerprint(), b.graph().fingerprint());
    }

    #[test]
    fn regular_points_hit_edge_lower_bound((n, k) in arb_params()) {
        let lhg = build_kdiamond(n, k).unwrap();
        if reg_kdiamond(n, k) {
            prop_assert!(is_k_regular(lhg.graph(), k));
            prop_assert_eq!(lhg.graph().edge_count(), (k * n).div_ceil(2));
        } else {
            prop_assert!(lhg.graph().edge_count() > (k * n).div_ceil(2));
        }
    }

    #[test]
    fn leaf_roles_have_degree_k((n, k) in arb_params()) {
        let lhg = build_kdiamond(n, k).unwrap();
        for v in lhg.graph().nodes() {
            if lhg.role(v).is_leaf() {
                prop_assert_eq!(lhg.graph().degree(v), k, "leaf {}", v);
            }
        }
    }
}
