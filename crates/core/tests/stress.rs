//! Heavyweight sweeps, ignored by default. Run with:
//! `cargo test -p lhg-core --release --test stress -- --ignored`

use lhg_core::checker::check_constraint;
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_core::properties::{
    exhaustive_link_fault_tolerance, exhaustive_node_fault_tolerance, validate,
};
use lhg_core::theory::run_all;

#[test]
#[ignore = "minutes-long sweep; run explicitly in release"]
fn theorem_suite_holds_on_wide_grid() {
    for check in run_all(&[3, 4, 5, 6, 7, 8], 40) {
        assert!(
            check.holds(),
            "{} failed on {:?} ({} cases)",
            check.name,
            check.failures,
            check.cases
        );
    }
}

#[test]
#[ignore = "full LHG validation over hundreds of graphs"]
fn every_construction_validates_up_to_n_120() {
    for k in 3..=5usize {
        for n in (2 * k)..=120 {
            for lhg in [build_ktree(n, k).unwrap(), build_kdiamond(n, k).unwrap()] {
                let report = validate(lhg.graph(), k);
                assert!(report.is_lhg(), "(n={n},k={k}): {report:?}");
                let violations = check_constraint(&lhg);
                assert!(violations.is_empty(), "(n={n},k={k}): {violations:?}");
            }
        }
    }
}

#[test]
#[ignore = "exhaustive subset removal at k = 5 (hundreds of thousands of cases)"]
fn exhaustive_fault_injection_at_k5() {
    for n in [10usize, 12, 14] {
        let lhg = build_kdiamond(n, 5).unwrap();
        assert!(exhaustive_node_fault_tolerance(lhg.graph(), 5), "n={n}");
        assert!(exhaustive_link_fault_tolerance(lhg.graph(), 5), "n={n}");
    }
}
