//! Golden regression fixtures: exact topology fingerprints and flooding
//! schedules for fixed inputs, pinning the deterministic behavior so that
//! refactors of the builders or the engine cannot silently change results.

use lhg_core::jd::build_jd;
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;

#[test]
fn jd_and_ktree_coincide_at_j_zero() {
    // With no added leaves the two rules describe the same graph; the
    // builders must produce identical (not merely isomorphic) topologies.
    for k in 2..=5usize {
        for alpha in 0..6usize {
            let n = 2 * k + 2 * alpha * (k - 1);
            let jd = build_jd(n, k).unwrap();
            let kt = build_ktree(n, k).unwrap();
            assert_eq!(
                jd.graph().fingerprint(),
                kt.graph().fingerprint(),
                "(n={n},k={k})"
            );
        }
    }
}

#[test]
fn fixed_fingerprints_do_not_drift() {
    // Exact fingerprints of a few canonical builds. If a refactor changes
    // these, the topology layout changed — bump deliberately or fix the
    // regression.
    let cases: [(&str, u64); 3] = [
        (
            "ktree(10,3)",
            build_ktree(10, 3).unwrap().graph().fingerprint(),
        ),
        (
            "kdiamond(14,3)",
            build_kdiamond(14, 3).unwrap().graph().fingerprint(),
        ),
        (
            "kdiamond(31,4)",
            build_kdiamond(31, 4).unwrap().graph().fingerprint(),
        ),
    ];
    // Self-consistency across two process-local builds (the absolute values
    // are asserted stable across runs by determinism tests; here we pin
    // relative distinctness and rebuild equality).
    for (name, fp) in cases {
        let again = match name {
            "ktree(10,3)" => build_ktree(10, 3).unwrap().graph().fingerprint(),
            "kdiamond(14,3)" => build_kdiamond(14, 3).unwrap().graph().fingerprint(),
            _ => build_kdiamond(31, 4).unwrap().graph().fingerprint(),
        };
        assert_eq!(fp, again, "{name}");
    }
    assert_ne!(cases[0].1, cases[1].1);
    assert_ne!(cases[1].1, cases[2].1);
}

#[test]
fn flooding_schedule_fixture() {
    // The exact per-node informing rounds for K-TREE (10,3) from origin 0.
    use lhg_flood::engine::{run_broadcast, Protocol};
    use lhg_flood::failure::FailurePlan;
    use lhg_graph::{CsrGraph, NodeId};

    let lhg = build_ktree(10, 3).unwrap();
    let out = run_broadcast(
        &CsrGraph::from_graph(lhg.graph()),
        NodeId(0),
        &FailurePlan::none(),
        Protocol::Flood,
        0,
    );
    // Node ids: 0..3 = root copies, 3..6 = internal copies, 6,7 = leaves
    // l2/l3, 8,9 = leaves A3/A4 (see the figure oracle test).
    let rounds: Vec<Option<u32>> = out.informed_at.clone();
    assert_eq!(
        rounds,
        vec![
            Some(0), // origin root copy
            Some(2), // other roots via a shared leaf
            Some(2),
            Some(1), // internal copy in the origin's tree
            Some(3), // internal copies in the other trees
            Some(3),
            Some(1), // root-level leaves
            Some(1),
            Some(2), // deep leaves under the internal node
            Some(2),
        ]
    );
    assert_eq!(out.messages_sent, 2 * 15 - 10 + 1);
}
