//! Golden-figure oracles: the papers' example graphs, hand-transcribed
//! edge-by-edge from their figures, compared against our builders up to
//! isomorphism. These tests pin the constructions to the *published*
//! topologies, not merely to "some graph with the right properties".

use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_graph::isomorphism::are_isomorphic;
use lhg_graph::{Graph, NodeId};

fn n(i: usize) -> NodeId {
    NodeId(i)
}

/// Fig. 2(a): the (6,3) K-TREE graph — three roots R1..R3 each adjacent to
/// the three shared leaves l1..l3 (that is, K_{3,3}).
#[test]
fn fig2a_is_k33() {
    // 0,1,2 = roots; 3,4,5 = leaves.
    let mut fig = Graph::with_nodes(6);
    for root in 0..3 {
        for leaf in 3..6 {
            fig.add_edge(n(root), n(leaf));
        }
    }
    let built = build_ktree(6, 3).unwrap();
    assert!(are_isomorphic(built.graph(), &fig));
}

/// The smallest K-TREE graph at any k is K_{k,k}.
#[test]
fn smallest_ktree_is_complete_bipartite() {
    for k in 2..=5 {
        let mut fig = Graph::with_nodes(2 * k);
        for root in 0..k {
            for leaf in k..(2 * k) {
                fig.add_edge(n(root), n(leaf));
            }
        }
        let built = build_ktree(2 * k, k).unwrap();
        assert!(are_isomorphic(built.graph(), &fig), "k={k}");
    }
}

/// Fig. 2(b): the (9,3) K-TREE graph — K_{3,3} plus 2k−3 = 3 added shared
/// leaves l4..l6, each also adjacent to all three roots (i.e. K_{3,6}).
#[test]
fn fig2b_is_k36() {
    let mut fig = Graph::with_nodes(9);
    for root in 0..3 {
        for leaf in 3..9 {
            fig.add_edge(n(root), n(leaf));
        }
    }
    let built = build_ktree(9, 3).unwrap();
    assert!(are_isomorphic(built.graph(), &fig));
}

/// Fig. 2(c): the (10,3) K-TREE graph — roots R1..R3 with shared leaves
/// l2, l3; l1 converted to an internal node (copies A1, A2) whose children
/// A3, A4 are shared leaves of all three trees.
#[test]
fn fig2c_matches_the_paper_drawing() {
    // 0,1,2 = roots R1..R3; 3,4,5 = internal copies (l1, A1, A2);
    // 6,7 = leaves l2, l3; 8,9 = leaves A3, A4.
    let mut fig = Graph::with_nodes(10);
    for (i, root) in (0..3).enumerate() {
        // Root i's children in its tree copy: internal copy i, l2, l3.
        fig.add_edge(n(root), n(3 + i));
        fig.add_edge(n(root), n(6));
        fig.add_edge(n(root), n(7));
    }
    for internal in 3..6 {
        fig.add_edge(n(internal), n(8));
        fig.add_edge(n(internal), n(9));
    }
    let built = build_ktree(10, 3).unwrap();
    assert!(are_isomorphic(built.graph(), &fig));
}

/// Fig. 3(a): the (7,3) K-DIAMOND graph — K_{3,3} plus one added shared
/// leaf L4 adjacent to all roots (K_{3,4}).
#[test]
fn fig3a_is_k34() {
    let mut fig = Graph::with_nodes(7);
    for root in 0..3 {
        for leaf in 3..7 {
            fig.add_edge(n(root), n(leaf));
        }
    }
    let built = build_kdiamond(7, 3).unwrap();
    assert!(are_isomorphic(built.graph(), &fig));
}

/// Fig. 3(b): the (8,3) K-DIAMOND graph — roots R1..R3, shared leaves
/// L1, L2, and one unshared leaf {L3, L4, L5} forming a triangle with one
/// edge to each root.
#[test]
fn fig3b_matches_the_paper_drawing() {
    // 0,1,2 = roots; 3,4 = shared leaves; 5,6,7 = unshared clique.
    let mut fig = Graph::with_nodes(8);
    for root in 0..3 {
        fig.add_edge(n(root), n(3));
        fig.add_edge(n(root), n(4));
        fig.add_edge(n(root), n(5 + root)); // member `root` of the clique
    }
    for i in 5..8 {
        for j in (i + 1)..8 {
            fig.add_edge(n(i), n(j));
        }
    }
    let built = build_kdiamond(8, 3).unwrap();
    assert!(are_isomorphic(built.graph(), &fig));
}

/// Fig. 3(c): the (13,3) K-DIAMOND graph — three unshared leaves (cliques)
/// plus one added shared leaf L10.
#[test]
fn fig3c_matches_the_paper_drawing() {
    // 0,1,2 = roots; 3 = added shared leaf; cliques {4,5,6}, {7,8,9},
    // {10,11,12}; member m of clique c attaches to root m.
    let mut fig = Graph::with_nodes(13);
    for root in 0..3 {
        fig.add_edge(n(root), n(3));
    }
    for c in 0..3 {
        let base = 4 + 3 * c;
        for m in 0..3 {
            fig.add_edge(n(m), n(base + m));
            for m2 in (m + 1)..3 {
                fig.add_edge(n(base + m), n(base + m2));
            }
        }
    }
    let built = build_kdiamond(13, 3).unwrap();
    assert!(are_isomorphic(built.graph(), &fig));
}

/// Fig. 3(d): the (14,3) K-DIAMOND graph — two unshared leaves stay at
/// depth 1; the third became an internal node (copies at depth 1) with two
/// shared-leaf children.
#[test]
fn fig3d_matches_the_paper_drawing() {
    // 0,1,2 = roots; 3,4,5 = internal copies; cliques {6,7,8} and {9,10,11};
    // 12,13 = shared leaves under the internal node.
    let mut fig = Graph::with_nodes(14);
    for root in 0..3 {
        fig.add_edge(n(root), n(3 + root)); // internal copy
        fig.add_edge(n(root), n(6 + root)); // member of clique 1
        fig.add_edge(n(root), n(9 + root)); // member of clique 2
    }
    for base in [6, 9] {
        for i in 0..3 {
            for j in (i + 1)..3 {
                fig.add_edge(n(base + i), n(base + j));
            }
        }
    }
    for internal in 3..6 {
        fig.add_edge(n(internal), n(12));
        fig.add_edge(n(internal), n(13));
    }
    let built = build_kdiamond(14, 3).unwrap();
    assert!(are_isomorphic(built.graph(), &fig));
}

/// k = 2 sanity: both constructions degenerate to cycles at regular points.
#[test]
fn k2_regular_points_are_cycles() {
    for nn in [4usize, 6, 8, 10] {
        let mut cycle = Graph::with_nodes(nn);
        for i in 0..nn {
            cycle.add_edge(n(i), n((i + 1) % nn));
        }
        assert!(
            are_isomorphic(build_ktree(nn, 2).unwrap().graph(), &cycle),
            "K-TREE ({nn},2)"
        );
        assert!(
            are_isomorphic(build_kdiamond(nn, 2).unwrap().graph(), &cycle),
            "K-DIAMOND ({nn},2)"
        );
    }
    // K-DIAMOND covers odd n too (Theorem 6 with k−1 = 1).
    for nn in [5usize, 7, 9] {
        let mut cycle = Graph::with_nodes(nn);
        for i in 0..nn {
            cycle.add_edge(n(i), n((i + 1) % nn));
        }
        assert!(
            are_isomorphic(build_kdiamond(nn, 2).unwrap().graph(), &cycle),
            "K-DIAMOND ({nn},2)"
        );
    }
}
