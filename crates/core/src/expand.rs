//! Expansion of a template tree into the final pasted-trees graph.
//!
//! Given the template `T` and the connectivity `k`, the expansion materializes
//! the "k copies of a tree, pasted together at the leaves" (see
//! [`crate::template`]): every branch becomes `k` vertices (one per copy),
//! every shared leaf one vertex adjacent to its parent's copy in *every*
//! tree, and every unshared group a `k`-clique with one member per tree.
//!
//! Vertex ids are assigned deterministically in template-id order, copies
//! consecutive, so repeated builds of the same (n, k) produce identical
//! graphs (same [`Graph::fingerprint`](lhg_graph::Graph::fingerprint)).

use lhg_graph::{Graph, NodeId};

use crate::template::{TemplateTree, TplId, TplKind};

/// The role a graph vertex plays in the pasted-trees structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Copy `copy` of a branch template node (`tpl == 0` is the root).
    Branch {
        /// Template node this vertex expands.
        tpl: TplId,
        /// Which tree copy (`0..k`) this vertex belongs to.
        copy: usize,
    },
    /// The single vertex of a shared leaf — a leaf of all `k` trees.
    SharedLeaf {
        /// Template node this vertex expands.
        tpl: TplId,
        /// Whether the leaf was attached as an "added" leaf.
        added: bool,
    },
    /// Member `member` of an unshared-leaf clique (K-DIAMOND rule 4).
    UnsharedMember {
        /// Template node this vertex expands.
        tpl: TplId,
        /// Which tree copy this member is attached to.
        member: usize,
    },
}

impl NodeRole {
    /// Returns `true` if the vertex is a leaf of the pasted trees (shared or
    /// unshared).
    #[must_use]
    pub fn is_leaf(self) -> bool {
        !matches!(self, NodeRole::Branch { .. })
    }

    /// Template node this vertex expands.
    #[must_use]
    pub fn tpl(self) -> TplId {
        match self {
            NodeRole::Branch { tpl, .. }
            | NodeRole::SharedLeaf { tpl, .. }
            | NodeRole::UnsharedMember { tpl, .. } => tpl,
        }
    }
}

// Externally tagged: every variant has fields, so each serializes as a
// single-key object wrapping a field map.
#[cfg(feature = "serde")]
impl serde::Serialize for NodeRole {
    fn to_value(&self) -> serde::Value {
        let (tag, fields) = match *self {
            NodeRole::Branch { tpl, copy } => (
                "Branch",
                vec![
                    ("tpl".to_owned(), serde::Value::U64(tpl as u64)),
                    ("copy".to_owned(), serde::Value::U64(copy as u64)),
                ],
            ),
            NodeRole::SharedLeaf { tpl, added } => (
                "SharedLeaf",
                vec![
                    ("tpl".to_owned(), serde::Value::U64(tpl as u64)),
                    ("added".to_owned(), serde::Value::Bool(added)),
                ],
            ),
            NodeRole::UnsharedMember { tpl, member } => (
                "UnsharedMember",
                vec![
                    ("tpl".to_owned(), serde::Value::U64(tpl as u64)),
                    ("member".to_owned(), serde::Value::U64(member as u64)),
                ],
            ),
        };
        serde::Value::Obj(vec![(tag.to_owned(), serde::Value::Obj(fields))])
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for NodeRole {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn get<T: serde::Deserialize>(body: &serde::Value, name: &str) -> Result<T, serde::Error> {
            let field = body
                .field(name)
                .ok_or_else(|| serde::Error::new(format!("missing field `{name}`")))?;
            T::from_value(field)
        }
        if let Some(body) = value.field("Branch") {
            return Ok(NodeRole::Branch {
                tpl: get(body, "tpl")?,
                copy: get(body, "copy")?,
            });
        }
        if let Some(body) = value.field("SharedLeaf") {
            return Ok(NodeRole::SharedLeaf {
                tpl: get(body, "tpl")?,
                added: get(body, "added")?,
            });
        }
        if let Some(body) = value.field("UnsharedMember") {
            return Ok(NodeRole::UnsharedMember {
                tpl: get(body, "tpl")?,
                member: get(body, "member")?,
            });
        }
        Err(serde::Error::expected("NodeRole variant", value))
    }
}

/// Result of expanding a template: the graph plus per-vertex roles.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// The expanded graph.
    pub graph: Graph,
    /// `roles[v]` describes vertex `v`.
    pub roles: Vec<NodeRole>,
    /// `base_ids[t]` is the first vertex id expanding template node `t`
    /// (branches and groups occupy `base..base + k`, shared leaves `base`).
    pub base_ids: Vec<usize>,
}

impl Expansion {
    /// The vertices of tree copy `copy`: copy-`copy` branch vertices, every
    /// shared leaf, and member `copy` of every unshared group.
    ///
    /// By construction each copy's induced subgraph is a tree — the
    /// structural verifier in [`crate::properties`] checks exactly that.
    #[must_use]
    pub fn tree_copy_members(&self, template: &TemplateTree, copy: usize) -> Vec<NodeId> {
        let mut members = Vec::new();
        for (t, node) in template.iter() {
            let base = self.base_ids[t];
            match node.kind {
                TplKind::Branch | TplKind::UnsharedGroup => members.push(NodeId(base + copy)),
                TplKind::SharedLeaf { .. } => members.push(NodeId(base)),
            }
        }
        members
    }
}

/// Expands `template` for connectivity `k`.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn expand(template: &TemplateTree, k: usize) -> Expansion {
    assert!(k >= 1, "connectivity must be at least 1");
    let mut graph = Graph::with_nodes(template.expanded_node_count(k));
    let mut roles = Vec::with_capacity(graph.node_count());
    let mut base_ids = Vec::with_capacity(template.len());

    // First pass: assign vertex ids and roles.
    let mut next = 0usize;
    for (t, node) in template.iter() {
        base_ids.push(next);
        match node.kind {
            TplKind::Branch => {
                for copy in 0..k {
                    roles.push(NodeRole::Branch { tpl: t, copy });
                }
                next += k;
            }
            TplKind::SharedLeaf { added } => {
                roles.push(NodeRole::SharedLeaf { tpl: t, added });
                next += 1;
            }
            TplKind::UnsharedGroup => {
                for member in 0..k {
                    roles.push(NodeRole::UnsharedMember { tpl: t, member });
                }
                next += k;
            }
        }
    }

    // Second pass: parent edges (per copy) and unshared cliques.
    for (t, node) in template.iter() {
        let base = base_ids[t];
        if let Some(p) = node.parent {
            let pbase = base_ids[p];
            match node.kind {
                TplKind::Branch | TplKind::UnsharedGroup => {
                    for copy in 0..k {
                        graph.add_edge(NodeId(pbase + copy), NodeId(base + copy));
                    }
                }
                TplKind::SharedLeaf { .. } => {
                    for copy in 0..k {
                        graph.add_edge(NodeId(pbase + copy), NodeId(base));
                    }
                }
            }
        }
        if matches!(node.kind, TplKind::UnsharedGroup) {
            for i in 0..k {
                for j in (i + 1)..k {
                    graph.add_edge(NodeId(base + i), NodeId(base + j));
                }
            }
        }
    }

    Expansion {
        graph,
        roles,
        base_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_graph::connectivity::vertex_connectivity;
    use lhg_graph::degree::is_k_regular;

    fn leaf() -> TplKind {
        TplKind::SharedLeaf { added: false }
    }

    /// Smallest K-TREE template: root + k shared leaves -> the (2k, k) graph.
    fn smallest(k: usize) -> TemplateTree {
        let mut t = TemplateTree::new();
        for _ in 0..k {
            t.add_child(t.root(), leaf());
        }
        t
    }

    #[test]
    fn smallest_graph_has_2k_nodes_and_is_k_regular() {
        for k in 2..=5 {
            let e = expand(&smallest(k), k);
            assert_eq!(e.graph.node_count(), 2 * k, "k={k}");
            // Roots have k children-edges; each shared leaf has k parents.
            assert!(is_k_regular(&e.graph, k), "k={k}");
            assert_eq!(vertex_connectivity(&e.graph), k, "k={k}");
        }
    }

    #[test]
    fn smallest_graph_matches_paper_fig_2a() {
        // (6,3): 3 roots R1..R3, 3 shared leaves l1..l3; every root adjacent
        // to every leaf (K_{3,3}).
        let e = expand(&smallest(3), 3);
        assert_eq!(e.graph.node_count(), 6);
        assert_eq!(e.graph.edge_count(), 9);
        for root in 0..3 {
            for l in 3..6 {
                assert!(e.graph.has_edge(NodeId(root), NodeId(l)));
            }
        }
    }

    #[test]
    fn roles_and_base_ids_are_consistent() {
        let mut t = smallest(3);
        let extra = t.add_child(t.root(), TplKind::UnsharedGroup);
        let e = expand(&t, 3);
        assert_eq!(e.roles.len(), e.graph.node_count());
        assert_eq!(e.roles[0], NodeRole::Branch { tpl: 0, copy: 0 });
        assert_eq!(
            e.roles[3],
            NodeRole::SharedLeaf {
                tpl: 1,
                added: false
            }
        );
        let gbase = e.base_ids[extra];
        assert_eq!(
            e.roles[gbase],
            NodeRole::UnsharedMember {
                tpl: extra,
                member: 0
            }
        );
    }

    #[test]
    fn unshared_group_forms_clique_with_one_parent_edge_each() {
        let mut t = TemplateTree::new();
        for _ in 0..2 {
            t.add_child(t.root(), leaf());
        }
        let g_id = t.add_child(t.root(), TplKind::UnsharedGroup);
        let k = 3;
        let e = expand(&t, k);
        let base = e.base_ids[g_id];
        // Clique among members.
        for i in 0..k {
            for j in (i + 1)..k {
                assert!(e.graph.has_edge(NodeId(base + i), NodeId(base + j)));
            }
        }
        // Member i adjacent to root copy i only.
        for i in 0..k {
            assert!(e.graph.has_edge(NodeId(i), NodeId(base + i)));
            for other in 0..k {
                if other != i {
                    assert!(!e.graph.has_edge(NodeId(other), NodeId(base + i)));
                }
            }
        }
        // Each member has degree k: (k-1)-clique + parent.
        for i in 0..k {
            assert_eq!(e.graph.degree(NodeId(base + i)), k);
        }
    }

    #[test]
    fn tree_copy_members_induce_trees() {
        use lhg_graph::components::is_connected;
        // Template: root, one internal with 2 leaves, one shared leaf, one group.
        let mut t = TemplateTree::new();
        let a = t.add_child(t.root(), leaf());
        t.add_child(t.root(), leaf());
        t.add_child(t.root(), TplKind::UnsharedGroup);
        t.convert_to_branch(a);
        t.add_child(a, leaf());
        t.add_child(a, leaf());
        let k = 3;
        let e = expand(&t, k);
        for copy in 0..k {
            let members = e.tree_copy_members(&t, copy);
            assert_eq!(members.len(), t.len());
            // Induced subgraph on members must be a tree: connected with
            // |V| - 1 edges.
            let mut sub = Graph::with_nodes(members.len());
            for (i, &u) in members.iter().enumerate() {
                for (j, &v) in members.iter().enumerate().skip(i + 1) {
                    if e.graph.has_edge(u, v) {
                        sub.add_edge(NodeId(i), NodeId(j));
                    }
                }
            }
            assert!(is_connected(&sub), "copy {copy} connected");
            assert_eq!(sub.edge_count(), members.len() - 1, "copy {copy} is a tree");
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        let t = smallest(4);
        let a = expand(&t, 4);
        let b = expand(&t, 4);
        assert_eq!(a.graph.fingerprint(), b.graph.fingerprint());
    }
}
