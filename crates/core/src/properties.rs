//! The five LHG properties (P1–P5) as executable validators.
//!
//! * **P1 k-node connectivity** — removing any ≤ k−1 nodes never
//!   disconnects the graph (checked exactly by flow: κ(G) ≥ k);
//! * **P2 k-link connectivity** — removing any ≤ k−1 links never
//!   disconnects the graph (λ(G) ≥ k);
//! * **P3 link minimality** — removing any single link reduces the node or
//!   link connectivity;
//! * **P4 logarithmic diameter** — diameter is O(log n); checked against
//!   the explicit bound from the follow-up's Lemma 3 (see
//!   [`p4_diameter_bound`]);
//! * **P5 k-regularity** — every node has degree exactly k (optional:
//!   marks edge-minimal LHGs).
//!
//! Besides the flow-based exact checks, [`exhaustive_node_fault_tolerance`]
//! and [`exhaustive_link_fault_tolerance`] brute-force every removal set of
//! size ≤ k−1 — exponential, but feasible for the paper-scale examples and
//! used by experiment E12 to cross-validate the flow results.

use lhg_graph::connectivity::{
    edge_connectivity, is_k_edge_connected, is_k_vertex_connected, vertex_connectivity,
};
use lhg_graph::degree::{harary_edge_lower_bound, is_k_regular};
use lhg_graph::paths::diameter;
use lhg_graph::subgraph::SubgraphView;
use lhg_graph::{Edge, Graph, NodeId};

use crate::util::all_combinations;

/// Validation outcome for one graph against the LHG definition.
#[derive(Debug, Clone, PartialEq)]
pub struct LhgReport {
    /// Number of nodes.
    pub n: usize,
    /// Target connectivity.
    pub k: usize,
    /// P1: κ(G) ≥ k.
    pub node_connectivity_ok: bool,
    /// P2: λ(G) ≥ k.
    pub link_connectivity_ok: bool,
    /// P3: every single link removal reduces node or link connectivity.
    pub link_minimal: bool,
    /// Measured diameter (`None` if disconnected).
    pub diameter: Option<u32>,
    /// The O(log n) bound the diameter is compared against.
    pub diameter_bound: f64,
    /// P4: diameter ≤ bound.
    pub logarithmic_diameter: bool,
    /// P5: every node has degree exactly k.
    pub regular: bool,
    /// Number of edges in the graph.
    pub edge_count: usize,
    /// ⌈kn/2⌉, the minimum edges any k-connected graph needs.
    pub edge_lower_bound: usize,
}

impl LhgReport {
    /// `true` if the graph satisfies P1–P4 (the LHG definition; P5 is the
    /// optional optimality property).
    #[must_use]
    pub fn is_lhg(&self) -> bool {
        self.node_connectivity_ok
            && self.link_connectivity_ok
            && self.link_minimal
            && self.logarithmic_diameter
    }

    /// `true` if additionally k-regular (edge-minimal LHG).
    #[must_use]
    pub fn is_regular_lhg(&self) -> bool {
        self.is_lhg() && self.regular
    }
}

/// The explicit diameter bound used for P4, from the follow-up's Lemma 3:
/// any two nodes are within `2·log_{k−1}(n)` hops plus a small constant for
/// the bridging leaf. For `k ≤ 3` the log base is clamped to 2.
///
/// Note that for `k = 2` the constructions degenerate to cycles, whose
/// diameter is Θ(n); P4 genuinely fails there, matching the papers' implicit
/// assumption `k ≥ 3`.
#[must_use]
pub fn p4_diameter_bound(n: usize, k: usize) -> f64 {
    let base = (k.saturating_sub(1)).max(2) as f64;
    2.0 * (n.max(2) as f64).ln() / base.ln() + 4.0
}

/// Returns `true` if removing any single link reduces node or link
/// connectivity (LHG property P3).
///
/// Fast path: if an endpoint of the link has degree equal to λ(G), removing
/// the link forces λ below its old value. Otherwise the connectivities of
/// `G − e` are recomputed exactly.
#[must_use]
pub fn is_link_minimal(g: &Graph) -> bool {
    let kappa = vertex_connectivity(g);
    let lambda = edge_connectivity(g);
    if lambda == 0 {
        // A disconnected (or trivial) graph cannot lose connectivity.
        return false;
    }
    for e in g.edges() {
        let min_deg = g.degree(e.a).min(g.degree(e.b));
        if min_deg == lambda {
            continue; // λ(G−e) ≤ min_deg − 1 < λ(G)
        }
        let mut reduced = Graph::with_nodes(g.node_count());
        for f in g.edges() {
            if f != e {
                reduced.add_edge(f.a, f.b);
            }
        }
        let still_node = is_k_vertex_connected(&reduced, kappa);
        let still_link = is_k_edge_connected(&reduced, lambda);
        if still_node && still_link {
            return false;
        }
    }
    true
}

/// Validates `g` against the full LHG definition for connectivity `k`.
///
/// # Example
///
/// ```
/// use lhg_core::ktree::build_ktree;
/// use lhg_core::properties::validate;
///
/// let lhg = build_ktree(10, 3)?;
/// let report = validate(lhg.graph(), 3);
/// assert!(report.is_regular_lhg());
/// # Ok::<(), lhg_core::LhgError>(())
/// ```
#[must_use]
pub fn validate(g: &Graph, k: usize) -> LhgReport {
    let n = g.node_count();
    let d = diameter(g);
    let bound = p4_diameter_bound(n, k);
    LhgReport {
        n,
        k,
        node_connectivity_ok: is_k_vertex_connected(g, k),
        link_connectivity_ok: is_k_edge_connected(g, k),
        link_minimal: is_link_minimal(g),
        diameter: d,
        diameter_bound: bound,
        logarithmic_diameter: d.is_some_and(|d| f64::from(d) <= bound),
        regular: is_k_regular(g, k),
        edge_count: g.edge_count(),
        edge_lower_bound: harary_edge_lower_bound(n, k),
    }
}

/// Brute-force P1: removes **every** node subset of size 1..=k−1 and checks
/// the survivors stay connected. Exponential — use only for small graphs
/// (the experiments keep `C(n, k−1)` under a few million).
#[must_use]
pub fn exhaustive_node_fault_tolerance(g: &Graph, k: usize) -> bool {
    let n = g.node_count();
    for r in 1..k {
        let ok = all_combinations(n, r, |subset| {
            let view = SubgraphView::without_nodes(g, subset.iter().map(|&i| NodeId(i)));
            view.is_live_connected()
        });
        if !ok {
            return false;
        }
    }
    true
}

/// Brute-force P2: removes **every** link subset of size 1..=k−1 and checks
/// connectivity. Exponential in the same way as
/// [`exhaustive_node_fault_tolerance`].
#[must_use]
pub fn exhaustive_link_fault_tolerance(g: &Graph, k: usize) -> bool {
    let edges: Vec<Edge> = g.edges().collect();
    for r in 1..k {
        let ok = all_combinations(edges.len(), r, |subset| {
            let view = SubgraphView::without_edges(g, subset.iter().map(|&i| edges[i]));
            view.is_live_connected()
        });
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdiamond::build_kdiamond;
    use crate::ktree::build_ktree;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    #[test]
    fn ktree_10_3_is_a_regular_lhg() {
        let lhg = build_ktree(10, 3).unwrap();
        let r = validate(lhg.graph(), 3);
        assert!(r.node_connectivity_ok, "{r:?}");
        assert!(r.link_connectivity_ok, "{r:?}");
        assert!(r.link_minimal, "{r:?}");
        assert!(r.logarithmic_diameter, "{r:?}");
        assert!(r.regular, "{r:?}");
        assert!(r.is_regular_lhg());
        assert_eq!(r.edge_count, r.edge_lower_bound);
    }

    #[test]
    fn ktree_9_3_is_lhg_but_not_regular() {
        let lhg = build_ktree(9, 3).unwrap();
        let r = validate(lhg.graph(), 3);
        assert!(r.is_lhg(), "{r:?}");
        assert!(!r.regular);
        assert!(r.edge_count > r.edge_lower_bound);
    }

    #[test]
    fn kdiamond_8_3_is_regular_lhg() {
        let lhg = build_kdiamond(8, 3).unwrap();
        let r = validate(lhg.graph(), 3);
        assert!(r.is_regular_lhg(), "{r:?}");
        assert_eq!(r.edge_count, 12);
    }

    #[test]
    fn small_cycle_is_lhg_for_k2() {
        // Cycles are 2-connected, link-minimal and (for small n) within the
        // diameter bound.
        let g = cycle(6);
        let r = validate(&g, 2);
        assert!(r.node_connectivity_ok && r.link_connectivity_ok && r.link_minimal);
        assert!(r.regular);
    }

    #[test]
    fn large_cycle_fails_p4() {
        // Θ(n) diameter: the k=2 degenerate case documented in the papers.
        let g = cycle(200);
        let r = validate(&g, 2);
        assert!(r.node_connectivity_ok && r.link_connectivity_ok);
        assert!(
            !r.logarithmic_diameter,
            "diameter {:?} vs bound {}",
            r.diameter, r.diameter_bound
        );
        assert!(!r.is_lhg());
    }

    #[test]
    fn complete_graph_is_not_link_minimal_for_small_k() {
        // K_5 stays 4-connected after removing... actually removing any edge
        // of K_5 drops both connectivities (λ = κ = 4 = min degree), so K_5
        // IS link-minimal for its own connectivity. Use a graph with genuine
        // slack instead: K_4 checked at k = 2.
        let mut g = Graph::with_nodes(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        let r = validate(&g, 2);
        assert!(r.node_connectivity_ok && r.link_connectivity_ok);
        // κ = λ = 3: removing one edge leaves κ = λ = 2 — still *reduces*
        // its connectivity, so K_4 is link-minimal in the P3 sense.
        assert!(r.link_minimal);
    }

    #[test]
    fn graph_with_redundant_edge_is_not_link_minimal() {
        // A 4-cycle plus chord: removing the chord keeps κ = λ = 2.
        let mut g = cycle(4);
        g.add_edge(NodeId(0), NodeId(2));
        assert!(!is_link_minimal(&g));
        let r = validate(&g, 2);
        assert!(!r.is_lhg());
    }

    #[test]
    fn disconnected_graph_fails_everything() {
        let g = Graph::with_nodes(4);
        let r = validate(&g, 2);
        assert!(!r.node_connectivity_ok);
        assert!(!r.link_connectivity_ok);
        assert!(!r.link_minimal);
        assert_eq!(r.diameter, None);
        assert!(!r.logarithmic_diameter);
        assert!(!r.is_lhg());
    }

    #[test]
    fn exhaustive_checks_agree_with_flow_on_lhgs() {
        for (n, k) in [(6, 3), (8, 3), (10, 3), (12, 4)] {
            let lhg = build_ktree(n, k).unwrap();
            assert!(
                exhaustive_node_fault_tolerance(lhg.graph(), k),
                "(n={n},k={k})"
            );
            assert!(
                exhaustive_link_fault_tolerance(lhg.graph(), k),
                "(n={n},k={k})"
            );
        }
    }

    #[test]
    fn exhaustive_checks_catch_under_connected_graphs() {
        // A path is not 2-fault tolerant.
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        assert!(!exhaustive_node_fault_tolerance(&g, 2));
        assert!(!exhaustive_link_fault_tolerance(&g, 2));
        // But trivially 1-fault tolerant (no removals to try).
        assert!(exhaustive_node_fault_tolerance(&g, 1));
    }

    #[test]
    fn p4_bound_grows_logarithmically() {
        let b1 = p4_diameter_bound(100, 4);
        let b2 = p4_diameter_bound(10_000, 4);
        assert!(b2 - b1 < 2.0 * b1, "bound roughly doubles when n squares");
        assert!(p4_diameter_bound(2, 3) >= 4.0);
    }
}
