//! The Jenkins–Demers operational construction (the target paper's rule).
//!
//! Quoted by the follow-up study (§4.4): *"The construction consists of k
//! copies of a tree whose root node has k children, and whose other interior
//! nodes mostly have k−1 children (except for at most k interior nodes just
//! above the leaf nodes, which may have up to k+1 children). These trees are
//! then 'pasted together' at the leaves — i.e. each leaf is a leaf of all k
//! trees."*
//!
//! Relative to K-TREE the differences are:
//!
//! * the **root never takes extra children** (it has exactly k);
//! * only **interior** nodes just above the leaves may take extras;
//! * each such node tops out at `k+1` children, i.e. at most **2 extras**
//!   over the regular `k−1`;
//! * at most **k** interior nodes may carry extras.
//!
//! Consequently the reachable `j` range at a given growth stage is
//! `0 ..= 2·min(h, k)` where `h` is the number of interior nodes currently
//! just above the leaves — strictly narrower than K-TREE's `0 ..= 2k−3`
//! whenever `h` is small. In particular at `α = 0` there are no interior
//! nodes at all, so only `j = 0` works: JD misses `(2k+1, k) .. (2k+2k−3,
//! k)` entirely, and similar gaps recur at every height increase. This is
//! the follow-up's §4.4 claim that JD leaves infinitely many pairs
//! unconstructible; [`is_jd_constructible`] computes the exact set under
//! this reading.
//!
//! **Interpretation note.** The JD paper's own text is not available to this
//! reproduction; the rule above is reconstructed from the verbatim quote,
//! which does not say whether extras may be added one at a time (k
//! children) or only in pairs (k+1). Both readings ship:
//! [`is_jd_constructible`] / [`build_jd`] are **lenient** (1 or 2 extras per
//! host; finite gap set per k), while [`is_jd_constructible_strict`] /
//! [`build_jd_strict`] are **strict** (pairs only), which reproduces the
//! follow-up's claim that JD misses infinitely many pairs — every odd-j
//! point, e.g. n = 2k + 2α(k−1) + 3 for all α at k = 3. Experiment E13
//! brackets the two readings side by side.

use crate::construction::{Constraint, LhgGraph};
use crate::error::LhgError;
use crate::expand::expand;
use crate::ktree::{decompose, validate_params};
use crate::template::{TemplateTree, TplId, TplKind};

/// Interior (non-root) nodes whose children are currently all leaves, in id
/// (BFS/creation) order. These are the only nodes JD may give extra children.
fn extra_hosts(t: &TemplateTree) -> Vec<TplId> {
    t.iter()
        .filter(|&(id, n)| {
            id != t.root()
                && matches!(n.kind, TplKind::Branch)
                && !n.children.is_empty()
                && n.children.iter().all(|&c| t.node(c).kind.is_leaf())
        })
        .map(|(id, _)| id)
        .collect()
}

/// Number of extra leaves JD can host at growth stage `α` for connectivity
/// `k`: two per interior just-above-leaves node, at most `k` such nodes.
#[must_use]
pub fn jd_extra_capacity(k: usize, alpha: usize) -> usize {
    let t = crate::ktree::build_template(k, alpha, 0);
    2 * extra_hosts(&t).len().min(k)
}

/// Returns `true` if the JD operational rule can build a graph for (n, k)
/// under the **lenient** reading of the rule (a host may take one *or* two
/// extras).
#[must_use]
pub fn is_jd_constructible(n: usize, k: usize) -> bool {
    if k < 2 || k >= n || n < 2 * k {
        return false;
    }
    let (alpha, j) = decompose(n, k);
    j <= jd_extra_capacity(k, alpha)
}

/// Returns `true` if the JD rule can build (n, k) under the **strict**
/// reading: a special interior node has exactly `k+1` children (extras
/// only come in pairs), so only even `j ≤ capacity` is reachable.
///
/// This reading reproduces the follow-up's §4.4 claim *exactly*: for every
/// k there are infinitely many unreachable pairs — all odd-j points, e.g.
/// `n = 2k + 2α(k−1) + 3` for every α when k = 3.
#[must_use]
pub fn is_jd_constructible_strict(n: usize, k: usize) -> bool {
    if k < 2 || k >= n || n < 2 * k {
        return false;
    }
    let (alpha, j) = decompose(n, k);
    j % 2 == 0 && j <= jd_extra_capacity(k, alpha)
}

/// Builds the JD graph for (n, k).
///
/// # Errors
///
/// * [`LhgError::InvalidParams`] if `k < 2` or `k ≥ n`;
/// * [`LhgError::NotConstructible`] if `n < 2k`, or if (n, k) falls in one
///   of the gaps the JD rule cannot reach (use
///   [`crate::ktree::build_ktree`] there — that is exactly the follow-up's
///   point).
///
/// # Example
///
/// ```
/// use lhg_core::jd::{build_jd, is_jd_constructible};
///
/// assert!(is_jd_constructible(6, 3));
/// assert!(!is_jd_constructible(9, 3)); // K-TREE handles this pair; JD cannot
/// let lhg = build_jd(6, 3)?;
/// assert_eq!(lhg.n(), 6);
/// # Ok::<(), lhg_core::LhgError>(())
/// ```
pub fn build_jd(n: usize, k: usize) -> Result<LhgGraph, LhgError> {
    validate_params(n, k, "JD")?;
    let (alpha, j) = decompose(n, k);
    let mut template = crate::ktree::build_template(k, alpha, 0);
    if j > 0 {
        let hosts = extra_hosts(&template);
        let usable = hosts.len().min(k);
        if j > 2 * usable {
            return Err(LhgError::NotConstructible {
                n,
                k,
                constraint: "JD",
            });
        }
        // Two extras per host, in BFS order, until j is exhausted.
        let mut remaining = j;
        for &host in hosts.iter().take(usable) {
            let here = remaining.min(2);
            for _ in 0..here {
                template.add_child(host, TplKind::SharedLeaf { added: true });
            }
            remaining -= here;
            if remaining == 0 {
                break;
            }
        }
        debug_assert_eq!(remaining, 0);
    }
    debug_assert_eq!(template.expanded_node_count(k), n);
    let expansion = expand(&template, k);
    Ok(LhgGraph::from_expansion(
        expansion,
        template,
        k,
        Constraint::Jd,
    ))
}

/// Builds the JD graph for (n, k) under the strict (pairs-only) reading.
///
/// # Errors
///
/// As [`build_jd`], plus [`LhgError::NotConstructible`] for every odd-`j`
/// point (the infinitely many gaps of §4.4).
pub fn build_jd_strict(n: usize, k: usize) -> Result<LhgGraph, LhgError> {
    if !is_jd_constructible_strict(n, k) {
        validate_params(n, k, "JD (strict)")?;
        return Err(LhgError::NotConstructible {
            n,
            k,
            constraint: "JD (strict)",
        });
    }
    build_jd(n, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_graph::connectivity::vertex_connectivity;

    #[test]
    fn strict_reading_reproduces_the_infinite_gap_claim() {
        // §4.4: n = 2k + 2α(k−1) + 3 is unreachable for EVERY α at k = 3.
        for alpha in 0..30usize {
            let n = 6 + 4 * alpha + 3;
            assert!(!is_jd_constructible_strict(n, 3), "n={n}");
            assert!(
                crate::ktree::build_ktree(n, 3).is_ok(),
                "K-TREE covers n={n}"
            );
        }
    }

    #[test]
    fn strict_is_a_subset_of_lenient() {
        for k in 2..=5 {
            for n in 2..=(6 * k + 20) {
                if is_jd_constructible_strict(n, k) {
                    assert!(is_jd_constructible(n, k), "(n={n},k={k})");
                }
            }
        }
    }

    #[test]
    fn strict_builder_matches_its_predicate() {
        for k in 3..=4usize {
            for n in (2 * k)..=(2 * k + 20) {
                assert_eq!(
                    build_jd_strict(n, k).is_ok(),
                    is_jd_constructible_strict(n, k),
                    "(n={n},k={k})"
                );
            }
        }
    }

    #[test]
    fn strict_builds_are_k_connected() {
        for (n, k) in [(6, 3), (10, 3), (12, 3), (16, 4)] {
            if let Ok(lhg) = build_jd_strict(n, k) {
                assert_eq!(vertex_connectivity(lhg.graph()), k, "(n={n},k={k})");
            }
        }
    }
    use lhg_graph::degree::is_k_regular;

    #[test]
    fn smallest_jd_equals_smallest_ktree() {
        let jd = build_jd(6, 3).unwrap();
        let kt = crate::ktree::build_ktree(6, 3).unwrap();
        assert_eq!(jd.graph().fingerprint(), kt.graph().fingerprint());
        assert_eq!(jd.constraint(), Constraint::Jd);
    }

    #[test]
    fn alpha_zero_allows_only_j_zero() {
        // With no interior nodes, no extras can be hosted: (7..9, 3) fail.
        assert!(is_jd_constructible(6, 3));
        assert!(!is_jd_constructible(7, 3));
        assert!(!is_jd_constructible(8, 3));
        assert!(!is_jd_constructible(9, 3));
        assert!(is_jd_constructible(10, 3)); // α=1, j=0
        assert!(matches!(
            build_jd(7, 3),
            Err(LhgError::NotConstructible { .. })
        ));
    }

    #[test]
    fn alpha_one_allows_two_extras() {
        // α=1 (k=3): one interior just-above-leaves node -> capacity 2.
        assert_eq!(jd_extra_capacity(3, 1), 2);
        assert!(is_jd_constructible(11, 3)); // j=1
        assert!(is_jd_constructible(12, 3)); // j=2
        assert!(!is_jd_constructible(13, 3)); // j=3 > 2
    }

    #[test]
    fn jd_gap_set_is_infinite_along_j3() {
        // §4.4: for k=3 the pairs n = 2k + 2α(k−1) + 3 stay unreachable
        // while only one interior host exists; verify the early gaps and
        // that K-TREE covers all of them.
        for alpha in 0..2usize {
            let n = 6 + 4 * alpha + 3;
            assert!(!is_jd_constructible(n, 3), "n={n}");
            assert!(crate::ktree::build_ktree(n, 3).is_ok(), "n={n}");
        }
    }

    #[test]
    fn built_jd_graphs_are_k_connected() {
        for k in 2..=4usize {
            for n in (2 * k)..=(2 * k + 16) {
                if !is_jd_constructible(n, k) {
                    continue;
                }
                let lhg = build_jd(n, k).unwrap_or_else(|e| panic!("(n={n},k={k}): {e}"));
                assert_eq!(vertex_connectivity(lhg.graph()), k, "(n={n},k={k})");
            }
        }
    }

    #[test]
    fn jd_regular_points_match_ktree() {
        let k = 3;
        for n in (2 * k)..=(2 * k + 20) {
            if !is_jd_constructible(n, k) {
                continue;
            }
            let lhg = build_jd(n, k).unwrap();
            let (_, j) = decompose(n, k);
            assert_eq!(is_k_regular(lhg.graph(), k), j == 0, "n={n}");
        }
    }

    #[test]
    fn extras_never_exceed_k_plus_1_children() {
        let k = 4;
        for n in (2 * k)..=(2 * k + 30) {
            if !is_jd_constructible(n, k) {
                continue;
            }
            let lhg = build_jd(n, k).unwrap();
            for (id, node) in lhg.template().iter() {
                if id == lhg.template().root() {
                    assert_eq!(node.children.len(), k, "root must have exactly k children");
                } else if matches!(node.kind, TplKind::Branch) {
                    assert!(
                        node.children.len() <= k + 1,
                        "interior node with {} children (n={n})",
                        node.children.len()
                    );
                }
            }
        }
    }

    #[test]
    fn constructible_set_is_subset_of_ktree() {
        for k in 2..=5usize {
            for n in 2..(4 * k + 10) {
                if is_jd_constructible(n, k) {
                    assert!(
                        crate::ktree::build_ktree(n, k).is_ok(),
                        "JD-constructible but not K-TREE: (n={n},k={k})"
                    );
                }
            }
        }
    }
}
