//! The [`LhgGraph`] artifact: a built graph together with the template and
//! per-vertex roles that witness *why* it satisfies its constraint.

use core::fmt;

use lhg_graph::{Graph, NodeId};

use crate::expand::{Expansion, NodeRole};
use crate::template::TemplateTree;

/// Which graph constraint a built LHG satisfies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// The Jenkins–Demers operational rule (the target paper's construction).
    Jd,
    /// K-TREE (follow-up study, Definition 1): generalizes JD by letting any
    /// node just above the leaves carry up to 2k−3 added shared leaves.
    KTree,
    /// K-DIAMOND (follow-up study, Definition 2): shared and unshared
    /// (clique) leaves; up to k−2 added shared leaves per host.
    KDiamond,
}

impl Constraint {
    /// Human-readable name as used in the papers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Constraint::Jd => "JD",
            Constraint::KTree => "K-TREE",
            Constraint::KDiamond => "K-DIAMOND",
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// Externally tagged: unit variants serialize as their names.
#[cfg(feature = "serde")]
impl serde::Serialize for Constraint {
    fn to_value(&self) -> serde::Value {
        let name = match self {
            Constraint::Jd => "Jd",
            Constraint::KTree => "KTree",
            Constraint::KDiamond => "KDiamond",
        };
        serde::Value::Str(name.to_owned())
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Constraint {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value.as_str() {
            Some("Jd") => Ok(Constraint::Jd),
            Some("KTree") => Ok(Constraint::KTree),
            Some("KDiamond") => Ok(Constraint::KDiamond),
            Some(other) => Err(serde::Error::new(format!(
                "unknown Constraint variant `{other}`"
            ))),
            None => Err(serde::Error::expected("Constraint variant", value)),
        }
    }
}

/// A constructed Logarithmic Harary Graph with its construction witness.
///
/// Produced by [`crate::ktree::build_ktree`],
/// [`crate::kdiamond::build_kdiamond`] or [`crate::jd::build_jd`]. Beyond the
/// plain [`Graph`], it retains the template tree and the role of every
/// vertex, which the structural checker ([`crate::checker`]) and the
/// experiments use.
#[derive(Debug, Clone)]
pub struct LhgGraph {
    graph: Graph,
    template: TemplateTree,
    roles: Vec<NodeRole>,
    base_ids: Vec<usize>,
    k: usize,
    constraint: Constraint,
}

impl LhgGraph {
    pub(crate) fn from_expansion(
        expansion: Expansion,
        template: TemplateTree,
        k: usize,
        constraint: Constraint,
    ) -> Self {
        let Expansion {
            graph,
            roles,
            base_ids,
        } = expansion;
        LhgGraph {
            graph,
            template,
            roles,
            base_ids,
            k,
            constraint,
        }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the artifact, returning just the graph.
    #[must_use]
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.graph.node_count()
    }

    /// Target connectivity `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The constraint this graph was built to satisfy.
    #[must_use]
    pub fn constraint(&self) -> Constraint {
        self.constraint
    }

    /// The template tree `T` whose `k` pasted copies form the graph.
    #[must_use]
    pub fn template(&self) -> &TemplateTree {
        &self.template
    }

    /// Role of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[must_use]
    pub fn role(&self, v: NodeId) -> NodeRole {
        self.roles[v.index()]
    }

    /// Roles of all vertices, indexed by vertex id.
    #[must_use]
    pub fn roles(&self) -> &[NodeRole] {
        &self.roles
    }

    /// First vertex id expanding template node `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of bounds.
    #[must_use]
    pub fn base_id(&self, t: crate::template::TplId) -> usize {
        self.base_ids[t]
    }

    /// The vertices forming tree copy `copy` (see
    /// [`Expansion::tree_copy_members`]).
    ///
    /// # Panics
    ///
    /// Panics if `copy >= k`.
    #[must_use]
    pub fn tree_copy_members(&self, copy: usize) -> Vec<NodeId> {
        assert!(copy < self.k, "copy index out of range");
        let expansion = Expansion {
            graph: Graph::new(), // members derive from template + base_ids only
            roles: Vec::new(),
            base_ids: self.base_ids.clone(),
        };
        expansion.tree_copy_members(&self.template, copy)
    }
}

impl fmt::Display for LhgGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LHG (n={}, k={}): {} edges, template height {}",
            self.constraint,
            self.n(),
            self.k,
            self.graph.edge_count(),
            self.template.height()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_names() {
        assert_eq!(Constraint::Jd.name(), "JD");
        assert_eq!(Constraint::KTree.to_string(), "K-TREE");
        assert_eq!(Constraint::KDiamond.to_string(), "K-DIAMOND");
    }

    #[test]
    fn accessors_round_trip() {
        let lhg = crate::ktree::build_ktree(10, 3).unwrap();
        assert_eq!(lhg.n(), 10);
        assert_eq!(lhg.k(), 3);
        assert_eq!(lhg.constraint(), Constraint::KTree);
        assert_eq!(lhg.roles().len(), 10);
        assert_eq!(lhg.graph().node_count(), 10);
        let display = lhg.to_string();
        assert!(display.contains("K-TREE"));
        assert!(display.contains("n=10"));
        let g = lhg.into_graph();
        assert_eq!(g.node_count(), 10);
    }
}
