//! Ablation builders: what happens when a construction rule is dropped.
//!
//! DESIGN.md calls out two load-bearing choices whose effect these
//! ablations quantify (experiment E16):
//!
//! * **Height balance (rule 3a/5a).** [`build_ktree_unbalanced`] converts
//!   leaves in LIFO (depth-first) order instead of the level-filling FIFO
//!   order. The result still satisfies rules 1–2 (k pasted trees, shared
//!   leaves) and is still k-connected and link-minimal — but the template
//!   degenerates toward a caterpillar and the diameter becomes Θ(n/k),
//!   destroying exactly property P4. This is why rule 3a exists.
//! * **Unshared-leaf priority (K-DIAMOND growth order).**
//!   [`build_kdiamond_daft`] groups and converts the *deepest* frontier
//!   positions first, violating the proofs' shallow-first order; the tree
//!   unbalances the same way.
//!
//! Both ablations produce valid *k-connected* graphs — they fail only the
//! logarithmic-diameter property, making the comparison clean.

use std::collections::BTreeSet;

use crate::construction::{Constraint, LhgGraph};
use crate::error::LhgError;
use crate::expand::expand;
use crate::ktree::validate_params;
use crate::template::{TemplateTree, TplKind};

/// K-TREE with depth-first (LIFO) leaf conversion: drops height balance.
///
/// # Errors
///
/// Same domain as [`crate::ktree::build_ktree`].
pub fn build_ktree_unbalanced(n: usize, k: usize) -> Result<LhgGraph, LhgError> {
    validate_params(n, k, "K-TREE (unbalanced ablation)")?;
    let (alpha, j) = crate::ktree::decompose(n, k);
    let mut t = TemplateTree::new();
    let mut stack = Vec::with_capacity(k);
    for _ in 0..k {
        stack.push(t.add_child(t.root(), TplKind::SharedLeaf { added: false }));
    }
    for _ in 0..alpha {
        let leaf = stack.pop().expect("conversions never exhaust the stack");
        t.convert_to_branch(leaf);
        for _ in 0..(k - 1) {
            stack.push(t.add_child(leaf, TplKind::SharedLeaf { added: false }));
        }
    }
    if j > 0 {
        let next = *stack.last().expect("stack is never empty");
        let host = t.node(next).parent.expect("leaves have parents");
        for _ in 0..j {
            t.add_child(host, TplKind::SharedLeaf { added: true });
        }
    }
    debug_assert_eq!(t.expanded_node_count(k), n);
    let expansion = expand(&t, k);
    Ok(LhgGraph::from_expansion(expansion, t, k, Constraint::KTree))
}

/// K-DIAMOND with deepest-first growth order: drops height balance.
///
/// # Errors
///
/// Same domain as [`crate::kdiamond::build_kdiamond`].
pub fn build_kdiamond_daft(n: usize, k: usize) -> Result<LhgGraph, LhgError> {
    validate_params(n, k, "K-DIAMOND (deepest-first ablation)")?;
    let (alpha, j) = crate::kdiamond::decompose(n, k);
    let mut t = TemplateTree::new();
    // Max-first ordering: take the *last* (deepest, newest) position.
    let mut frontier: BTreeSet<(u32, u8, usize)> = BTreeSet::new();
    for _ in 0..k {
        let id = t.add_child(t.root(), TplKind::SharedLeaf { added: false });
        frontier.insert((1, 0, id));
    }
    for _ in 0..alpha {
        let pos = *frontier
            .iter()
            .next_back()
            .expect("frontier is never empty");
        frontier.remove(&pos);
        let (depth, kind, id) = pos;
        if kind == 0 {
            t.convert_to_unshared(id);
            frontier.insert((depth, 1, id));
        } else {
            t.convert_to_branch(id);
            for _ in 0..(k - 1) {
                let c = t.add_child(id, TplKind::SharedLeaf { added: false });
                frontier.insert((depth + 1, 0, c));
            }
        }
    }
    if j > 0 {
        let &(_, _, next) = frontier
            .iter()
            .next_back()
            .expect("frontier is never empty");
        let host = t.node(next).parent.expect("leaves have parents");
        for _ in 0..j {
            t.add_child(host, TplKind::SharedLeaf { added: true });
        }
    }
    debug_assert_eq!(t.expanded_node_count(k), n);
    let expansion = expand(&t, k);
    Ok(LhgGraph::from_expansion(
        expansion,
        t,
        k,
        Constraint::KDiamond,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdiamond::build_kdiamond;
    use crate::ktree::build_ktree;
    use crate::properties::{p4_diameter_bound, validate};
    use lhg_graph::connectivity::vertex_connectivity;
    use lhg_graph::paths::diameter;

    #[test]
    fn unbalanced_ktree_is_still_k_connected_and_minimal() {
        for (n, k) in [(26, 3), (30, 3), (32, 4)] {
            let lhg = build_ktree_unbalanced(n, k).unwrap();
            assert_eq!(lhg.n(), n);
            let r = validate(lhg.graph(), k);
            assert!(r.node_connectivity_ok, "(n={n},k={k})");
            assert!(r.link_connectivity_ok, "(n={n},k={k})");
            assert!(r.link_minimal, "(n={n},k={k})");
            assert_eq!(vertex_connectivity(lhg.graph()), k);
        }
    }

    #[test]
    fn unbalanced_ktree_loses_logarithmic_diameter() {
        // At n=86, k=3 the balanced tree has height ~4 while the DFS chain
        // has height ~(n-2k)/(2(k-1)) = 20: the diameter gap is decisive.
        let (n, k) = (86, 3);
        let balanced = build_ktree(n, k).unwrap();
        let unbalanced = build_ktree_unbalanced(n, k).unwrap();
        let d_bal = diameter(balanced.graph()).unwrap();
        let d_unb = diameter(unbalanced.graph()).unwrap();
        assert!(
            f64::from(d_bal) <= p4_diameter_bound(n, k),
            "balanced diameter {d_bal} within bound"
        );
        assert!(
            f64::from(d_unb) > p4_diameter_bound(n, k),
            "unbalanced diameter {d_unb} must exceed the P4 bound {}",
            p4_diameter_bound(n, k)
        );
        assert!(d_unb >= 2 * d_bal, "diameter blowup: {d_bal} -> {d_unb}");
        assert!(!unbalanced.template().is_height_balanced());
    }

    #[test]
    fn daft_kdiamond_is_k_connected_but_unbalanced() {
        let (n, k) = (60, 3);
        let lhg = build_kdiamond_daft(n, k).unwrap();
        assert_eq!(vertex_connectivity(lhg.graph()), k);
        assert!(!lhg.template().is_height_balanced());
        let d_daft = diameter(lhg.graph()).unwrap();
        let d_good = diameter(build_kdiamond(n, k).unwrap().graph()).unwrap();
        assert!(
            d_daft > d_good,
            "deepest-first must be strictly worse: {d_daft} vs {d_good}"
        );
    }

    #[test]
    fn ablations_preserve_node_counts_and_domains() {
        assert!(build_ktree_unbalanced(5, 3).is_err());
        assert!(build_kdiamond_daft(5, 3).is_err());
        for n in 6..=20 {
            assert_eq!(build_ktree_unbalanced(n, 3).unwrap().n(), n);
            assert_eq!(build_kdiamond_daft(n, 3).unwrap().n(), n);
        }
    }
}
