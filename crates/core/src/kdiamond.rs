//! The K-DIAMOND construction (follow-up study, Definition 2).
//!
//! K-DIAMOND generalizes K-TREE with *unshared* leaves: a tree-leaf position
//! may hold `k` vertices forming a clique, each attached to one tree copy
//! (rule 4). This makes the regular points denser: Theorem 6 shows a
//! k-regular K-DIAMOND graph exists iff `n = 2k + α(k−1)` — every `k−1`
//! nodes instead of K-TREE's every `2(k−1)` (Theorem 7: infinitely many
//! pairs are regular under K-DIAMOND but not under K-TREE).
//!
//! The builder follows the constructive proof of Theorem 5 with a single
//! priority rule ordering the α growth events. Each event consumes `k−1`
//! vertices and acts on the BFS-least *actionable position*, ordered by
//! `(depth, kind, id)` with shared leaves (kind 0) before unshared groups
//! (kind 1):
//!
//! * a **shared leaf** at the frontier is grouped into an unshared k-clique
//!   (proof part 2);
//! * once a depth has no shared leaves left, the oldest **unshared group**
//!   converts into an internal node with `k−1` fresh shared-leaf children
//!   (proof part 3 — this is what increases the height, and processing
//!   shallower groups first keeps the tree height-balanced, part 4).
//!
//! Finally `j = (n − 2k) mod (k−1) ∈ {0, …, k−2}` added shared leaves attach
//! to the node just above the next actionable position (rule 5d).

use std::collections::BTreeSet;

use crate::construction::{Constraint, LhgGraph};
use crate::error::LhgError;
use crate::expand::expand;
use crate::ktree::validate_params;
use crate::template::{TemplateTree, TplKind};

/// Decomposes `n = 2k + α(k−1) + j` with `j ∈ {0, …, k−2}`.
///
/// # Panics
///
/// Panics if `n < 2k` or `k < 2` (callers validate first).
#[must_use]
pub fn decompose(n: usize, k: usize) -> (usize, usize) {
    assert!(
        k >= 2 && n >= 2 * k,
        "decompose requires k >= 2 and n >= 2k"
    );
    let rest = n - 2 * k;
    (rest / (k - 1), rest % (k - 1))
}

/// Frontier ordering: shared leaves sort before unshared groups at the same
/// depth; smaller depth always first; ids break ties (creation order).
type Position = (u32, u8, usize);

const SHARED: u8 = 0;
const UNSHARED: u8 = 1;

/// Builds the K-DIAMOND template for `α` growth events and `j` added leaves.
pub(crate) fn build_template(k: usize, alpha: usize, j: usize) -> TemplateTree {
    let mut t = TemplateTree::new();
    let mut frontier: BTreeSet<Position> = BTreeSet::new();
    for _ in 0..k {
        let id = t.add_child(t.root(), TplKind::SharedLeaf { added: false });
        frontier.insert((1, SHARED, id));
    }
    for _ in 0..alpha {
        let pos = *frontier.iter().next().expect("frontier is never empty");
        frontier.remove(&pos);
        let (depth, kind, id) = pos;
        if kind == SHARED {
            // Grouping: the shared leaf plus k−1 incoming vertices become an
            // unshared k-clique in the same tree position.
            t.convert_to_unshared(id);
            frontier.insert((depth, UNSHARED, id));
        } else {
            // Height growth: the unshared group becomes an internal node
            // with k−1 fresh shared-leaf children.
            t.convert_to_branch(id);
            for _ in 0..(k - 1) {
                let c = t.add_child(id, TplKind::SharedLeaf { added: false });
                frontier.insert((depth + 1, SHARED, c));
            }
        }
    }
    if j > 0 {
        let &(_, _, next) = frontier.iter().next().expect("frontier is never empty");
        let host = t.node(next).parent.expect("leaves always have parents");
        for _ in 0..j {
            t.add_child(host, TplKind::SharedLeaf { added: true });
        }
    }
    t
}

/// Builds the K-DIAMOND graph for (n, k).
///
/// # Errors
///
/// * [`LhgError::InvalidParams`] if `k < 2` or `k ≥ n`;
/// * [`LhgError::NotConstructible`] if `n < 2k` (Theorem 5: no K-DIAMOND
///   graph exists below 2k).
///
/// # Example
///
/// ```
/// use lhg_core::kdiamond::build_kdiamond;
///
/// // The follow-up's Fig. 3(b) example: (8, 3) with one unshared leaf,
/// // 3-regular — a pair K-TREE cannot make regular.
/// let lhg = build_kdiamond(8, 3)?;
/// assert_eq!(lhg.graph().edge_count(), 12); // 3·8/2
/// # Ok::<(), lhg_core::LhgError>(())
/// ```
pub fn build_kdiamond(n: usize, k: usize) -> Result<LhgGraph, LhgError> {
    validate_params(n, k, "K-DIAMOND")?;
    let (alpha, j) = decompose(n, k);
    let template = build_template(k, alpha, j);
    debug_assert_eq!(template.expanded_node_count(k), n);
    let expansion = expand(&template, k);
    Ok(LhgGraph::from_expansion(
        expansion,
        template,
        k,
        Constraint::KDiamond,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TplKind;
    use lhg_graph::connectivity::{edge_connectivity, vertex_connectivity};
    use lhg_graph::degree::is_k_regular;
    use lhg_graph::paths::diameter;

    fn unshared_count(t: &TemplateTree) -> usize {
        t.iter()
            .filter(|(_, n)| matches!(n.kind, TplKind::UnsharedGroup))
            .count()
    }

    fn added_count(t: &TemplateTree) -> usize {
        t.iter()
            .filter(|(_, n)| matches!(n.kind, TplKind::SharedLeaf { added: true }))
            .count()
    }

    #[test]
    fn decompose_round_trips() {
        for k in 2..=6 {
            for n in (2 * k)..(2 * k + 40) {
                let (alpha, j) = decompose(n, k);
                assert_eq!(2 * k + alpha * (k - 1) + j, n, "n={n} k={k}");
                assert!(j <= k - 2 || (k == 2 && j == 0), "j={j} k={k}");
            }
        }
    }

    #[test]
    fn rejects_invalid_params() {
        assert!(matches!(
            build_kdiamond(10, 0),
            Err(LhgError::InvalidParams { .. })
        ));
        assert!(matches!(
            build_kdiamond(10, 1),
            Err(LhgError::InvalidParams { .. })
        ));
        assert!(matches!(
            build_kdiamond(5, 3),
            Err(LhgError::NotConstructible { .. })
        ));
    }

    #[test]
    fn fig_3a_seven_nodes_one_added_leaf() {
        // (7,3): α=0, j=1 — root with k=3 regular children + 1 added leaf.
        let lhg = build_kdiamond(7, 3).unwrap();
        let (alpha, j) = decompose(7, 3);
        assert_eq!((alpha, j), (0, 1));
        assert_eq!(unshared_count(lhg.template()), 0);
        assert_eq!(added_count(lhg.template()), 1);
        assert!(!is_k_regular(lhg.graph(), 3));
        assert_eq!(vertex_connectivity(lhg.graph()), 3);
    }

    #[test]
    fn fig_3b_eight_nodes_one_unshared_group_regular() {
        // (8,3): α=1, j=0 — one unshared clique of 3; 3-regular.
        let lhg = build_kdiamond(8, 3).unwrap();
        let (alpha, j) = decompose(8, 3);
        assert_eq!((alpha, j), (1, 0));
        assert_eq!(unshared_count(lhg.template()), 1);
        assert!(is_k_regular(lhg.graph(), 3));
        assert_eq!(lhg.graph().edge_count(), 12);
        assert_eq!(vertex_connectivity(lhg.graph()), 3);
        assert_eq!(edge_connectivity(lhg.graph()), 3);
    }

    #[test]
    fn fig_3c_thirteen_nodes_three_groups_plus_added() {
        // (13,3): α=3, j=1 — all three root slots unshared + 1 added leaf.
        let lhg = build_kdiamond(13, 3).unwrap();
        let (alpha, j) = decompose(13, 3);
        assert_eq!((alpha, j), (3, 1));
        assert_eq!(unshared_count(lhg.template()), 3);
        assert_eq!(added_count(lhg.template()), 1);
        assert_eq!(lhg.template().height(), 1);
        assert_eq!(vertex_connectivity(lhg.graph()), 3);
    }

    #[test]
    fn fig_3d_fourteen_nodes_height_grows_regular() {
        // (14,3): α=4, j=0 — one group converted to an internal node with
        // two shared children; 3-regular; height 2.
        let lhg = build_kdiamond(14, 3).unwrap();
        let (alpha, j) = decompose(14, 3);
        assert_eq!((alpha, j), (4, 0));
        assert_eq!(unshared_count(lhg.template()), 2);
        assert_eq!(lhg.template().height(), 2);
        assert!(is_k_regular(lhg.graph(), 3));
        assert_eq!(lhg.graph().edge_count(), 21);
        assert_eq!(vertex_connectivity(lhg.graph()), 3);
    }

    #[test]
    fn every_n_from_2k_is_constructible_and_k_connected() {
        for k in 2..=4usize {
            for n in (2 * k)..=(2 * k + 14) {
                let lhg = build_kdiamond(n, k).unwrap_or_else(|e| panic!("(n={n},k={k}): {e}"));
                assert_eq!(lhg.n(), n, "(n={n},k={k})");
                assert_eq!(vertex_connectivity(lhg.graph()), k, "κ (n={n},k={k})");
                assert_eq!(edge_connectivity(lhg.graph()), k, "λ (n={n},k={k})");
            }
        }
    }

    #[test]
    fn regular_exactly_at_theorem_6_points() {
        let k = 4;
        for n in (2 * k)..=(2 * k + 24) {
            let lhg = build_kdiamond(n, k).unwrap();
            let (_, j) = decompose(n, k);
            assert_eq!(is_k_regular(lhg.graph(), k), j == 0, "n={n}");
        }
    }

    #[test]
    fn regular_twice_as_often_as_ktree() {
        // Theorem 7 witness: odd α points are K-DIAMOND-regular but not
        // decomposable as K-TREE regular points.
        let k = 3;
        for alpha in [1usize, 3, 5, 7] {
            let n = 2 * k + alpha * (k - 1);
            let lhg = build_kdiamond(n, k).unwrap();
            assert!(is_k_regular(lhg.graph(), k), "n={n}");
            let (_, j_ktree) = crate::ktree::decompose(n, k);
            assert_ne!(j_ktree, 0, "K-TREE cannot be regular at n={n}");
        }
    }

    #[test]
    fn templates_stay_height_balanced_across_growth() {
        for k in 2..=4usize {
            for n in (2 * k)..=(2 * k + 40) {
                let lhg = build_kdiamond(n, k).unwrap();
                assert!(lhg.template().is_height_balanced(), "(n={n},k={k})");
                assert!(lhg.template().validate_structure().is_ok());
            }
        }
    }

    #[test]
    fn k2_gives_cycles_for_every_n() {
        for n in 4..=10 {
            let lhg = build_kdiamond(n, 2).unwrap();
            assert!(is_k_regular(lhg.graph(), 2), "n={n}");
            assert_eq!(lhg.graph().edge_count(), n, "n={n}");
            assert_eq!(vertex_connectivity(lhg.graph()), 2, "n={n}");
            assert_eq!(diameter(lhg.graph()), Some((n / 2) as u32), "n={n}");
        }
    }

    #[test]
    fn deterministic_construction() {
        let a = build_kdiamond(31, 4).unwrap();
        let b = build_kdiamond(31, 4).unwrap();
        assert_eq!(a.graph().fingerprint(), b.graph().fingerprint());
    }

    #[test]
    fn growth_sequence_matches_proof_order() {
        // k=3: events must be group, group, group, convert, convert, ...
        let t = build_template(3, 5, 0);
        // After 5 events: groups at ids 2,3 — wait, event order: group 1,
        // group 2, group 3, convert 1, convert 2. So id 1 and 2 are branches,
        // id 3 is still a group.
        assert!(matches!(t.node(1).kind, TplKind::Branch));
        assert!(matches!(t.node(2).kind, TplKind::Branch));
        assert!(matches!(t.node(3).kind, TplKind::UnsharedGroup));
        assert_eq!(t.node(1).children.len(), 2);
        assert_eq!(t.node(2).children.len(), 2);
    }
}
