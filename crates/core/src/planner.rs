//! Topology planning: which construction should a deployment use?
//!
//! Downstream users arrive with "I have n processes and want to survive f
//! failures"; the papers' theory answers which constraint fits and what it
//! costs. [`plan`] encodes that decision:
//!
//! * connectivity `k = f + 1`;
//! * existence needs `n ≥ 2k` (Theorems 2/5) — below that only a complete
//!   graph helps;
//! * K-DIAMOND is preferred wherever it is k-regular (its regular points
//!   are twice as dense as K-TREE's, Theorem 7); otherwise the planner
//!   reports the unavoidable edge overhead and the nearest regular sizes.

use crate::construction::Constraint;
use crate::error::LhgError;
use crate::existence::ex_ktree;
use crate::kdiamond::build_kdiamond;
use crate::ktree::build_ktree;
use crate::regularity::{reg_kdiamond, reg_ktree};
use crate::LhgGraph;

/// A planning recommendation for (n, f).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Number of processes.
    pub n: usize,
    /// Failures to tolerate.
    pub f: usize,
    /// Required connectivity (f + 1).
    pub k: usize,
    /// Recommended constraint.
    pub constraint: Constraint,
    /// Whether the recommended topology is k-regular (edge-minimal).
    pub regular: bool,
    /// Edges the topology will have.
    pub edges: usize,
    /// The ⌈kn/2⌉ lower bound.
    pub edge_lower_bound: usize,
    /// Nearest sizes (≤ n, ≥ n) at which a k-regular K-DIAMOND exists —
    /// useful when the deployment can choose its group size.
    pub nearest_regular: (usize, usize),
}

impl Plan {
    /// Extra edges paid over the lower bound.
    #[must_use]
    pub fn edge_overhead(&self) -> usize {
        self.edges - self.edge_lower_bound
    }
}

/// Plans a topology for `n` processes tolerating `f` crash/link failures
/// and builds it.
///
/// # Errors
///
/// * [`LhgError::InvalidParams`] if `f == 0` (use a spanning tree) or
///   `f + 1 ≥ n` (only the complete graph can help, and only up to n−2);
/// * [`LhgError::NotConstructible`] if `n < 2(f+1)` (Theorem 2/5 floor).
///
/// # Example
///
/// ```
/// use lhg_core::planner::plan;
///
/// // 30 processes, survive any 2 failures.
/// let (plan, overlay) = plan(30, 2)?;
/// assert_eq!(plan.k, 3);
/// assert!(plan.regular, "30 = 2·3 + 24·1 is a K-DIAMOND regular point");
/// assert_eq!(overlay.graph().edge_count(), 45); // ⌈3·30/2⌉
/// # Ok::<(), lhg_core::LhgError>(())
/// ```
pub fn plan(n: usize, f: usize) -> Result<(Plan, LhgGraph), LhgError> {
    if f == 0 {
        return Err(LhgError::InvalidParams {
            n,
            k: 1,
            reason: "f = 0 needs no redundancy; use a spanning tree",
        });
    }
    let k = f + 1;
    if k >= n {
        return Err(LhgError::InvalidParams {
            n,
            k,
            reason: "tolerating f >= n-1 failures is impossible for any topology",
        });
    }
    if !ex_ktree(n, k) {
        return Err(LhgError::NotConstructible {
            n,
            k,
            constraint: "K-TREE/K-DIAMOND",
        });
    }

    // Prefer K-DIAMOND: regular at least as often as K-TREE (Corollary 2),
    // identical existence domain (Corollary 1).
    let (constraint, overlay) = if reg_kdiamond(n, k) || !reg_ktree(n, k) {
        (Constraint::KDiamond, build_kdiamond(n, k)?)
    } else {
        (Constraint::KTree, build_ktree(n, k)?)
    };

    let below = (2 * k..=n)
        .rev()
        .find(|&m| reg_kdiamond(m, k))
        .unwrap_or(2 * k);
    let above = (n..)
        .find(|&m| reg_kdiamond(m, k))
        .expect("regular points are unbounded");

    let edges = overlay.graph().edge_count();
    let plan = Plan {
        n,
        f,
        k,
        constraint,
        regular: lhg_graph::degree::is_k_regular(overlay.graph(), k),
        edges,
        edge_lower_bound: (k * n).div_ceil(2),
        nearest_regular: (below, above),
    };
    Ok((plan, overlay))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::validate;

    #[test]
    fn plans_regular_points_at_minimum_cost() {
        let (p, overlay) = plan(30, 2).unwrap();
        assert_eq!(p.k, 3);
        assert_eq!(p.constraint, Constraint::KDiamond);
        assert!(p.regular);
        assert_eq!(p.edge_overhead(), 0);
        assert!(validate(overlay.graph(), 3).is_regular_lhg());
        assert_eq!(p.nearest_regular, (30, 30));
    }

    #[test]
    fn plans_irregular_points_with_reported_overhead() {
        // k=3: odd n is never regular.
        let (p, overlay) = plan(31, 2).unwrap();
        assert!(!p.regular);
        assert!(p.edge_overhead() > 0);
        assert_eq!(p.nearest_regular, (30, 32));
        assert!(validate(overlay.graph(), 3).is_lhg());
    }

    #[test]
    fn tolerates_the_promised_failures() {
        use crate::util::all_combinations;
        use lhg_graph::subgraph::SubgraphView;
        let (p, overlay) = plan(12, 2).unwrap();
        assert_eq!(p.f, 2);
        let g = overlay.graph();
        for r in 1..=2 {
            assert!(all_combinations(12, r, |subset| {
                SubgraphView::without_nodes(g, subset.iter().map(|&i| lhg_graph::NodeId(i)))
                    .is_live_connected()
            }));
        }
    }

    #[test]
    fn rejects_out_of_domain_requests() {
        assert!(matches!(plan(10, 0), Err(LhgError::InvalidParams { .. })));
        assert!(matches!(plan(4, 4), Err(LhgError::InvalidParams { .. })));
        assert!(matches!(plan(5, 2), Err(LhgError::NotConstructible { .. })));
    }

    #[test]
    fn k_is_f_plus_1_across_a_sweep() {
        for f in 1..=4 {
            for n in (2 * (f + 1))..=(2 * (f + 1) + 10) {
                let (p, overlay) = plan(n, f).unwrap();
                assert_eq!(p.k, f + 1);
                assert_eq!(p.edges, overlay.graph().edge_count());
                assert_eq!(
                    lhg_graph::connectivity::vertex_connectivity(overlay.graph()),
                    f + 1,
                    "(n={n},f={f})"
                );
            }
        }
    }

    #[test]
    fn nearest_regular_brackets_n() {
        for n in 8..=40 {
            let (p, _) = plan(n, 2).unwrap();
            assert!(p.nearest_regular.0 <= n);
            assert!(p.nearest_regular.1 >= n);
            assert!(reg_kdiamond(p.nearest_regular.0, 3) || p.nearest_regular.0 == 6);
            assert!(reg_kdiamond(p.nearest_regular.1, 3));
        }
    }
}
