//! Executable theorem suite.
//!
//! Each function checks one theorem/corollary of the follow-up study over a
//! finite grid by *construction and measurement* (not by re-evaluating the
//! closed forms): it builds graphs and verifies the claimed properties hold.
//! The tests and experiment E6 run these; failures would localize which
//! statement the implementation breaks.

use lhg_graph::degree::is_k_regular;

use crate::existence::{ex_kdiamond, ex_ktree};
use crate::kdiamond::build_kdiamond;
use crate::ktree::build_ktree;
use crate::properties::validate;
use crate::regularity::{reg_kdiamond, reg_ktree, theorem7_witnesses};

/// Outcome of checking one theorem over a grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TheoremCheck {
    /// Statement label, e.g. "Theorem 2".
    pub name: &'static str,
    /// Number of (n, k) pairs examined.
    pub cases: usize,
    /// Pairs where the claim failed (empty = theorem holds on the grid).
    pub failures: Vec<(usize, usize)>,
}

impl TheoremCheck {
    /// `true` when no failure was found.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Theorem 1: every K-TREE construction yields an LHG (P1–P4).
/// Checked for `k ∈ ks`, `n ∈ 2k ..= 2k + span`.
#[must_use]
pub fn theorem1_ktree_yields_lhg(ks: &[usize], span: usize) -> TheoremCheck {
    let mut cases = 0;
    let mut failures = Vec::new();
    for &k in ks {
        for n in (2 * k)..=(2 * k + span) {
            cases += 1;
            let ok = build_ktree(n, k)
                .map(|lhg| validate(lhg.graph(), k).is_lhg())
                .unwrap_or(false);
            if !ok {
                failures.push((n, k));
            }
        }
    }
    TheoremCheck {
        name: "Theorem 1 (K-TREE ⊂ LHG)",
        cases,
        failures,
    }
}

/// Theorem 2: `EX_KTREE(n,k) ⇔ n ≥ 2k` — constructibility matches the bound
/// on both sides.
#[must_use]
pub fn theorem2_ex_ktree(ks: &[usize], span: usize) -> TheoremCheck {
    let mut cases = 0;
    let mut failures = Vec::new();
    for &k in ks {
        for n in (k + 1)..=(2 * k + span) {
            cases += 1;
            let constructible = build_ktree(n, k).is_ok();
            if constructible != ex_ktree(n, k) {
                failures.push((n, k));
            }
        }
    }
    TheoremCheck {
        name: "Theorem 2 (EX_KTREE)",
        cases,
        failures,
    }
}

/// Theorem 3: built K-TREE graphs are k-regular exactly at
/// `n = 2k + 2α(k−1)`.
#[must_use]
pub fn theorem3_reg_ktree(ks: &[usize], span: usize) -> TheoremCheck {
    let mut cases = 0;
    let mut failures = Vec::new();
    for &k in ks {
        for n in (2 * k)..=(2 * k + span) {
            cases += 1;
            let regular = build_ktree(n, k)
                .map(|lhg| is_k_regular(lhg.graph(), k))
                .unwrap_or(false);
            if regular != reg_ktree(n, k) {
                failures.push((n, k));
            }
        }
    }
    TheoremCheck {
        name: "Theorem 3 (REG_KTREE)",
        cases,
        failures,
    }
}

/// Theorem 4: every K-DIAMOND construction yields an LHG (P1–P4).
#[must_use]
pub fn theorem4_kdiamond_yields_lhg(ks: &[usize], span: usize) -> TheoremCheck {
    let mut cases = 0;
    let mut failures = Vec::new();
    for &k in ks {
        for n in (2 * k)..=(2 * k + span) {
            cases += 1;
            let ok = build_kdiamond(n, k)
                .map(|lhg| validate(lhg.graph(), k).is_lhg())
                .unwrap_or(false);
            if !ok {
                failures.push((n, k));
            }
        }
    }
    TheoremCheck {
        name: "Theorem 4 (K-DIAMOND ⊂ LHG)",
        cases,
        failures,
    }
}

/// Theorem 5 + Corollary 1: K-DIAMOND constructibility matches `n ≥ 2k`,
/// hence coincides with K-TREE's.
#[must_use]
pub fn theorem5_ex_kdiamond(ks: &[usize], span: usize) -> TheoremCheck {
    let mut cases = 0;
    let mut failures = Vec::new();
    for &k in ks {
        for n in (k + 1)..=(2 * k + span) {
            cases += 1;
            let constructible = build_kdiamond(n, k).is_ok();
            if constructible != ex_kdiamond(n, k) || ex_kdiamond(n, k) != ex_ktree(n, k) {
                failures.push((n, k));
            }
        }
    }
    TheoremCheck {
        name: "Theorem 5 + Corollary 1 (EX_KDIAMOND ⇔ EX_KTREE)",
        cases,
        failures,
    }
}

/// Theorem 6: built K-DIAMOND graphs are k-regular exactly at
/// `n = 2k + α(k−1)`.
#[must_use]
pub fn theorem6_reg_kdiamond(ks: &[usize], span: usize) -> TheoremCheck {
    let mut cases = 0;
    let mut failures = Vec::new();
    for &k in ks {
        for n in (2 * k)..=(2 * k + span) {
            cases += 1;
            let regular = build_kdiamond(n, k)
                .map(|lhg| is_k_regular(lhg.graph(), k))
                .unwrap_or(false);
            if regular != reg_kdiamond(n, k) {
                failures.push((n, k));
            }
        }
    }
    TheoremCheck {
        name: "Theorem 6 (REG_KDIAMOND)",
        cases,
        failures,
    }
}

/// Theorem 7 (+ Corollary 2): for each k, the odd-α witnesses really are
/// k-regular LHGs under K-DIAMOND while no K-TREE regular point matches,
/// and every K-TREE regular point is also a K-DIAMOND one.
#[must_use]
pub fn theorem7_diamond_strictly_more_regular(ks: &[usize], witnesses: usize) -> TheoremCheck {
    let mut cases = 0;
    let mut failures = Vec::new();
    for &k in ks {
        for (n, k) in theorem7_witnesses(k, witnesses) {
            cases += 1;
            let diamond_regular = build_kdiamond(n, k)
                .map(|lhg| is_k_regular(lhg.graph(), k) && validate(lhg.graph(), k).is_lhg())
                .unwrap_or(false);
            if !diamond_regular || reg_ktree(n, k) {
                failures.push((n, k));
            }
        }
        // Corollary 2 direction.
        for n in (2 * k)..=(4 * k + 8) {
            cases += 1;
            if reg_ktree(n, k) && !reg_kdiamond(n, k) {
                failures.push((n, k));
            }
        }
    }
    TheoremCheck {
        name: "Theorem 7 + Corollary 2",
        cases,
        failures,
    }
}

/// Runs the full suite with a standard small grid.
#[must_use]
pub fn run_all(ks: &[usize], span: usize) -> Vec<TheoremCheck> {
    vec![
        theorem1_ktree_yields_lhg(ks, span),
        theorem2_ex_ktree(ks, span),
        theorem3_reg_ktree(ks, span),
        theorem4_kdiamond_yields_lhg(ks, span),
        theorem5_ex_kdiamond(ks, span),
        theorem6_reg_kdiamond(ks, span),
        theorem7_diamond_strictly_more_regular(
            &ks.iter().copied().filter(|&k| k >= 3).collect::<Vec<_>>(),
            3,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_holds_on_small_grid() {
        for check in run_all(&[3, 4], 10) {
            assert!(
                check.holds(),
                "{} failed on {:?} ({} cases)",
                check.name,
                check.failures,
                check.cases
            );
            assert!(check.cases > 0);
        }
    }

    #[test]
    fn suite_covers_k2_for_non_diameter_claims() {
        // k=2 graphs are cycles: P4 fails at scale but these spans are tiny,
        // and EX/REG still hold.
        assert!(theorem2_ex_ktree(&[2], 6).holds());
        assert!(theorem3_reg_ktree(&[2], 6).holds());
        assert!(theorem5_ex_kdiamond(&[2], 6).holds());
        assert!(theorem6_reg_kdiamond(&[2], 6).holds());
    }
}
