//! Structural constraint checker: verifies a built [`LhgGraph`] against the
//! rule set of its constraint (K-TREE Definition 1, K-DIAMOND Definition 2,
//! or the JD rule), rule by rule.
//!
//! This is deliberately independent of the builders' internal logic: it
//! re-derives every fact it checks from the template and the expanded graph,
//! so a bug in the growth schedules (wrong conversion order, unbalanced
//! levels, overfull hosts) surfaces as a named violation rather than a
//! silently wrong topology.

use lhg_graph::components::is_connected;
use lhg_graph::{Graph, NodeId};

use crate::construction::{Constraint, LhgGraph};
use crate::template::{TplId, TplKind};

/// A violated constraint rule, with the rule's paper name and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule failed (paper numbering, e.g. "K-TREE 3b").
    pub rule: String,
    /// What exactly went wrong.
    pub detail: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "rule {} violated: {}", self.rule, self.detail)
    }
}

fn violation(rule: &str, detail: String) -> Violation {
    Violation {
        rule: rule.to_string(),
        detail,
    }
}

/// Checks `lhg` against every rule of its constraint. An empty vector means
/// the graph satisfies the constraint.
#[must_use]
pub fn check_constraint(lhg: &LhgGraph) -> Vec<Violation> {
    let mut v = Vec::new();
    let t = lhg.template();
    let k = lhg.k();
    let prefix = lhg.constraint().name();

    // --- Template-level rules -------------------------------------------
    if t.validate_structure().is_err() {
        v.push(violation(
            &format!("{prefix} template"),
            "broken parent/child links".into(),
        ));
        return v; // everything else would be noise
    }

    // Rule 3a / 5a: height balance.
    if !t.is_height_balanced() {
        v.push(violation(
            &format!("{prefix} 3a/5a"),
            "template tree is not height-balanced".into(),
        ));
    }

    // Child-count rules. Added leaves never count toward the regular quota.
    for (id, node) in t.iter() {
        if !matches!(node.kind, TplKind::Branch) {
            continue;
        }
        let regular: Vec<TplId> = node
            .children
            .iter()
            .copied()
            .filter(|&c| !matches!(t.node(c).kind, TplKind::SharedLeaf { added: true }))
            .collect();
        let added = node.children.len() - regular.len();

        if id == t.root() {
            // Rule 3b / 5b: root has k (regular) children.
            if regular.len() != k {
                v.push(violation(
                    &format!("{prefix} 3b/5b"),
                    format!("root has {} regular children, expected {k}", regular.len()),
                ));
            }
        } else {
            // Rule 3c / 5c: internal nodes have 0 or k−1 (regular) children.
            if !regular.is_empty() && regular.len() != k - 1 {
                v.push(violation(
                    &format!("{prefix} 3c/5c"),
                    format!("internal node {id} has {} regular children", regular.len()),
                ));
            }
        }

        // Added-leaf capacity and placement.
        if added > 0 {
            let has_leaf_child = node.children.iter().any(|&c| t.node(c).kind.is_leaf());
            if !has_leaf_child {
                v.push(violation(
                    &format!("{prefix} 3d/5d"),
                    format!("node {id} hosts added leaves but is not just above the leaves"),
                ));
            }
            let cap = match lhg.constraint() {
                Constraint::KTree => 2 * k - 3,
                Constraint::KDiamond => k - 2,
                Constraint::Jd => 2,
            };
            if added > cap {
                v.push(violation(
                    &format!("{prefix} 3d/5d"),
                    format!("node {id} hosts {added} added leaves, cap {cap}"),
                ));
            }
            if lhg.constraint() == Constraint::Jd && id == t.root() {
                v.push(violation(
                    "JD root",
                    "the JD rule gives the root exactly k children".into(),
                ));
            }
        }
    }

    // JD: at most k hosts with extras.
    if lhg.constraint() == Constraint::Jd {
        let hosts = t
            .iter()
            .filter(|(_, n)| {
                n.children
                    .iter()
                    .any(|&c| matches!(t.node(c).kind, TplKind::SharedLeaf { added: true }))
            })
            .count();
        if hosts > k {
            v.push(violation(
                "JD hosts",
                format!("{hosts} nodes host extras, cap {k}"),
            ));
        }
    }

    // Unshared leaves are K-DIAMOND-only.
    let unshared = t
        .iter()
        .filter(|(_, n)| matches!(n.kind, TplKind::UnsharedGroup))
        .count();
    if unshared > 0 && lhg.constraint() != Constraint::KDiamond {
        v.push(violation(
            &format!("{prefix} 1"),
            format!("{unshared} unshared leaf groups in a non-K-DIAMOND graph"),
        ));
    }

    // --- Expansion-level rules ------------------------------------------
    // Rule 1: the graph contains k copies of T — each copy's members induce
    // a tree with |T| nodes.
    for copy in 0..k {
        let members = lhg.tree_copy_members(copy);
        let mut sub = Graph::with_nodes(members.len());
        for (i, &a) in members.iter().enumerate() {
            for (j, &b) in members.iter().enumerate().skip(i + 1) {
                if lhg.graph().has_edge(a, b) {
                    sub.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        if !is_connected(&sub) || sub.edge_count() != members.len().saturating_sub(1) {
            v.push(violation(
                &format!("{prefix} 1"),
                format!(
                    "tree copy {copy} is not a tree ({} nodes, {} induced edges)",
                    members.len(),
                    sub.edge_count()
                ),
            ));
        }
    }

    // Rule 2 / 3: each shared leaf is a leaf of all k trees — exactly one
    // parent-copy edge per tree, i.e. degree k with one neighbor per copy.
    for (id, node) in t.iter() {
        match node.kind {
            TplKind::SharedLeaf { .. } => {
                let vtx = NodeId(lhg.base_id(id));
                if lhg.graph().degree(vtx) != k {
                    v.push(violation(
                        &format!("{prefix} 2/3"),
                        format!(
                            "shared leaf {vtx} has degree {}, expected {k}",
                            lhg.graph().degree(vtx)
                        ),
                    ));
                }
            }
            TplKind::UnsharedGroup => {
                // Rule 4a/4b: clique of k, each member one tree edge.
                let base = lhg.base_id(id);
                for i in 0..k {
                    for j in (i + 1)..k {
                        if !lhg.graph().has_edge(NodeId(base + i), NodeId(base + j)) {
                            v.push(violation(
                                "K-DIAMOND 4a",
                                format!("unshared group {id} is missing clique edges"),
                            ));
                        }
                    }
                    if lhg.graph().degree(NodeId(base + i)) != k {
                        v.push(violation(
                            "K-DIAMOND 4b",
                            format!(
                                "unshared member {} has degree {}, expected {k}",
                                base + i,
                                lhg.graph().degree(NodeId(base + i))
                            ),
                        ));
                    }
                }
            }
            TplKind::Branch => {}
        }
    }

    v
}

/// Convenience wrapper: `true` when [`check_constraint`] reports nothing.
#[must_use]
pub fn satisfies_constraint(lhg: &LhgGraph) -> bool {
    check_constraint(lhg).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jd::build_jd;
    use crate::kdiamond::build_kdiamond;
    use crate::ktree::build_ktree;

    #[test]
    fn all_ktree_builds_satisfy_their_rules() {
        for k in 2..=4usize {
            for n in (2 * k)..=(2 * k + 20) {
                let lhg = build_ktree(n, k).unwrap();
                let violations = check_constraint(&lhg);
                assert!(violations.is_empty(), "(n={n},k={k}): {violations:?}");
            }
        }
    }

    #[test]
    fn all_kdiamond_builds_satisfy_their_rules() {
        for k in 2..=4usize {
            for n in (2 * k)..=(2 * k + 25) {
                let lhg = build_kdiamond(n, k).unwrap();
                let violations = check_constraint(&lhg);
                assert!(violations.is_empty(), "(n={n},k={k}): {violations:?}");
            }
        }
    }

    #[test]
    fn all_jd_builds_satisfy_their_rules() {
        for k in 2..=4usize {
            for n in (2 * k)..=(2 * k + 20) {
                if let Ok(lhg) = build_jd(n, k) {
                    let violations = check_constraint(&lhg);
                    assert!(violations.is_empty(), "(n={n},k={k}): {violations:?}");
                }
            }
        }
    }

    #[test]
    fn checker_catches_broken_height_balance() {
        // The ablation builders intentionally violate rule 3a/5a; the
        // checker must flag them (and only that rule).
        let unbalanced = crate::ablation::build_ktree_unbalanced(26, 3).unwrap();
        let violations = check_constraint(&unbalanced);
        assert!(
            violations.iter().any(|v| v.rule.contains("3a/5a")),
            "expected a balance violation, got {violations:?}"
        );
        assert!(!satisfies_constraint(&unbalanced));

        let daft = crate::ablation::build_kdiamond_daft(40, 3).unwrap();
        let violations = check_constraint(&daft);
        assert!(
            violations.iter().any(|v| v.rule.contains("3a/5a")),
            "expected a balance violation, got {violations:?}"
        );
    }

    #[test]
    fn checker_accepts_balanced_ablation_sizes() {
        // At sizes where DFS order coincides with BFS order (alpha <= 1),
        // the "ablated" builder still produces a legal K-TREE graph.
        let small = crate::ablation::build_ktree_unbalanced(10, 3).unwrap();
        assert!(
            satisfies_constraint(&small),
            "{:?}",
            check_constraint(&small)
        );
    }

    #[test]
    fn violation_display_names_the_rule() {
        let v = Violation {
            rule: "K-TREE 3b".into(),
            detail: "boom".into(),
        };
        assert_eq!(v.to_string(), "rule K-TREE 3b violated: boom");
    }
}
