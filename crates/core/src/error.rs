//! Error type for LHG construction.

use core::fmt;

/// Errors produced by the LHG builders.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LhgError {
    /// The pair (n, k) is outside the domain of any LHG (`k < n` required,
    /// and the constructions need `k ≥ 2`).
    InvalidParams {
        /// Requested node count.
        n: usize,
        /// Requested connectivity.
        k: usize,
        /// Why the pair is invalid.
        reason: &'static str,
    },
    /// No graph satisfying the requested constraint exists for (n, k); e.g.
    /// `n < 2k` for K-TREE/K-DIAMOND (Lemmas 4 and 8), or a pair the JD
    /// operational rule cannot reach (§4.4 of the follow-up study).
    NotConstructible {
        /// Requested node count.
        n: usize,
        /// Requested connectivity.
        k: usize,
        /// Name of the constraint that cannot be met.
        constraint: &'static str,
    },
}

impl fmt::Display for LhgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LhgError::InvalidParams { n, k, reason } => {
                write!(f, "invalid parameters (n={n}, k={k}): {reason}")
            }
            LhgError::NotConstructible { n, k, constraint } => {
                write!(f, "no {constraint} graph exists for (n={n}, k={k})")
            }
        }
    }
}

impl std::error::Error for LhgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LhgError::InvalidParams {
            n: 3,
            k: 5,
            reason: "k must be smaller than n",
        };
        assert!(e.to_string().contains("n=3"));
        assert!(e.to_string().contains("k must be smaller"));

        let e = LhgError::NotConstructible {
            n: 5,
            k: 3,
            constraint: "K-TREE",
        };
        assert_eq!(e.to_string(), "no K-TREE graph exists for (n=5, k=3)");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LhgError>();
    }
}
