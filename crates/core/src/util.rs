//! Small combinatorial helpers used by the exhaustive validators.

/// Calls `f` with every `r`-element combination of `0..n` (ascending inside
/// each combination, lexicographic across combinations). Returns early with
/// `false` as soon as `f` returns `false`; returns `true` if all
/// combinations passed (vacuously for `r > n`).
pub fn all_combinations<F: FnMut(&[usize]) -> bool>(n: usize, r: usize, mut f: F) -> bool {
    if r > n {
        return true;
    }
    if r == 0 {
        return f(&[]);
    }
    let mut idx: Vec<usize> = (0..r).collect();
    loop {
        if !f(&idx) {
            return false;
        }
        // Advance to the next combination.
        let mut i = r;
        loop {
            if i == 0 {
                return true;
            }
            i -= 1;
            if idx[i] != i + n - r {
                break;
            }
            if i == 0 {
                return true;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..r {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Number of `r`-element combinations of `n` items (saturating).
#[must_use]
pub fn binomial(n: usize, r: usize) -> usize {
    if r > n {
        return 0;
    }
    let r = r.min(n - r);
    let mut acc: u128 = 1;
    for i in 0..r {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        if acc > usize::MAX as u128 {
            return usize::MAX;
        }
    }
    acc as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(n: usize, r: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        all_combinations(n, r, |c| {
            out.push(c.to_vec());
            true
        });
        out
    }

    #[test]
    fn enumerates_4_choose_2() {
        assert_eq!(
            collect(4, 2),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }

    #[test]
    fn counts_match_binomial() {
        for n in 0..=8 {
            for r in 0..=n {
                assert_eq!(collect(n, r).len(), binomial(n, r), "C({n},{r})");
            }
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(collect(5, 0), vec![Vec::<usize>::new()]);
        assert_eq!(collect(3, 3), vec![vec![0, 1, 2]]);
        assert!(all_combinations(2, 5, |_| false), "vacuous when r > n");
        assert_eq!(binomial(5, 7), 0);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(0, 0), 1);
    }

    #[test]
    fn early_exit_on_false() {
        let mut seen = 0;
        let ok = all_combinations(5, 2, |c| {
            seen += 1;
            c != [0, 2]
        });
        assert!(!ok);
        assert_eq!(seen, 2, "stops right at the failing combination");
    }

    #[test]
    fn binomial_saturates() {
        assert_eq!(binomial(200, 100), usize::MAX);
    }
}
