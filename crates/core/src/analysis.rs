//! Structural analysis of the constructions: facts the papers do not state
//! but that follow from the pasted-trees shape, made executable.
//!
//! * **K-TREE graphs are bipartite** (hence triangle-free): every edge
//!   joins template depth `d` to `d + 1`, so depth parity is a proper
//!   2-coloring. Their girth is 4 for k ≥ 3 (two tree copies plus two
//!   shared sibling leaves form a 4-cycle).
//! * **K-DIAMOND graphs** trade that away: each unshared leaf group is a
//!   k-clique, contributing exactly `C(k, 3)` triangles — so
//!   `triangles = u · C(k, 3)` where `u` is the number of unshared groups,
//!   and for `k ≥ 3`, `u ≥ 1` the graph is non-bipartite with girth 3.
//!
//! [`profile`] bundles these with clustering and a spectral-gap estimate
//! for the cross-topology comparison experiment (E19/E20).

use lhg_graph::metrics::{average_clustering, girth, is_bipartite, triangle_count};
use lhg_graph::spectral::slem_estimate;
use lhg_graph::Graph;

use crate::construction::LhgGraph;
use crate::template::TplKind;
use crate::util::binomial;

/// Structural profile of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuralProfile {
    /// Whether the graph is bipartite.
    pub bipartite: bool,
    /// Shortest cycle length (`None` for forests).
    pub girth: Option<u32>,
    /// Number of triangles.
    pub triangles: usize,
    /// Average local clustering coefficient.
    pub clustering: f64,
    /// Spectral gap estimate of the lazy random walk (see
    /// [`lhg_graph::spectral`]).
    pub spectral_gap: f64,
}

/// Computes the structural profile of `g` (spectral estimate uses `iters`
/// power-iteration steps).
///
/// # Panics
///
/// Panics if `g` has no nodes.
#[must_use]
pub fn profile(g: &Graph, iters: usize) -> StructuralProfile {
    StructuralProfile {
        bipartite: is_bipartite(g),
        girth: girth(g),
        triangles: triangle_count(g),
        clustering: average_clustering(g),
        spectral_gap: slem_estimate(g, iters).gap,
    }
}

/// Number of unshared leaf groups in an LHG's template.
#[must_use]
pub fn unshared_group_count(lhg: &LhgGraph) -> usize {
    lhg.template()
        .iter()
        .filter(|(_, n)| matches!(n.kind, TplKind::UnsharedGroup))
        .count()
}

/// The closed-form triangle count of a pasted-trees graph: every triangle
/// lives inside an unshared clique, so `u · C(k, 3)`.
#[must_use]
pub fn expected_triangles(lhg: &LhgGraph) -> usize {
    unshared_group_count(lhg) * binomial(lhg.k(), 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdiamond::build_kdiamond;
    use crate::ktree::build_ktree;

    #[test]
    fn ktree_graphs_are_bipartite_and_triangle_free() {
        for k in 2..=4usize {
            for n in (2 * k)..=(2 * k + 20) {
                let lhg = build_ktree(n, k).unwrap();
                let p = profile(lhg.graph(), 50);
                assert!(p.bipartite, "(n={n},k={k})");
                assert_eq!(p.triangles, 0, "(n={n},k={k})");
                assert_eq!(p.clustering, 0.0, "(n={n},k={k})");
            }
        }
    }

    #[test]
    fn ktree_girth_is_four_for_k_at_least_3() {
        for (n, k) in [(6, 3), (10, 3), (14, 3), (12, 4), (20, 4)] {
            let lhg = build_ktree(n, k).unwrap();
            assert_eq!(girth(lhg.graph()), Some(4), "(n={n},k={k})");
        }
    }

    #[test]
    fn ktree_k2_is_a_cycle_with_girth_n() {
        let lhg = build_ktree(8, 2).unwrap();
        assert_eq!(girth(lhg.graph()), Some(8));
    }

    #[test]
    fn kdiamond_triangles_match_the_closed_form() {
        for k in 3..=5usize {
            for n in (2 * k)..=(2 * k + 25) {
                let lhg = build_kdiamond(n, k).unwrap();
                assert_eq!(
                    triangle_count(lhg.graph()),
                    expected_triangles(&lhg),
                    "(n={n},k={k}) with {} groups",
                    unshared_group_count(&lhg)
                );
            }
        }
    }

    #[test]
    fn kdiamond_with_groups_is_non_bipartite_girth_3() {
        let lhg = build_kdiamond(8, 3).unwrap();
        assert!(unshared_group_count(&lhg) > 0);
        let p = profile(lhg.graph(), 50);
        assert!(!p.bipartite);
        assert_eq!(p.girth, Some(3));
        assert!(p.triangles > 0);
        assert!(p.clustering > 0.0);
    }

    #[test]
    fn kdiamond_without_groups_matches_ktree_shape() {
        // (6,3) has no unshared groups: identical to the K-TREE base.
        let lhg = build_kdiamond(6, 3).unwrap();
        assert_eq!(unshared_group_count(&lhg), 0);
        assert!(profile(lhg.graph(), 50).bipartite);
    }

    #[test]
    fn lhgs_have_healthy_spectral_gap() {
        // Compared to a cycle of the same size, the LHG gap is much larger.
        let lhg = build_kdiamond(62, 3).unwrap();
        let lhg_gap = profile(lhg.graph(), 400).spectral_gap;
        let mut cycle = Graph::with_nodes(62);
        for i in 0..62 {
            cycle.add_edge(lhg_graph_node(i), lhg_graph_node((i + 1) % 62));
        }
        let cycle_gap = profile(&cycle, 400).spectral_gap;
        assert!(
            lhg_gap > 5.0 * cycle_gap,
            "LHG gap {lhg_gap} vs cycle gap {cycle_gap}"
        );
    }

    fn lhg_graph_node(i: usize) -> lhg_graph::NodeId {
        lhg_graph::NodeId(i)
    }
}
