//! # lhg-core
//!
//! Logarithmic Harary Graphs (LHGs): constructions, validators, and the
//! existence/regularity theory.
//!
//! An LHG for a pair `(n, k)` is a graph on `n` nodes that is k-node- and
//! k-link-connected (tolerates any k−1 failures), *link-minimal* (no edge
//! can be dropped without losing connectivity), and has `O(log n)` diameter
//! — the topology Jenkins & Demers (ICDCS 2001) proposed for efficient
//! fault-tolerant flooding. This crate implements:
//!
//! * the **JD operational construction** ([`jd`]) — the target paper's rule:
//!   k copies of a tree pasted together at the leaves;
//! * the **K-TREE** graph constraint ([`ktree`]) — exists for *every*
//!   `n ≥ 2k` (Theorem 2), k-regular at `n = 2k + 2α(k−1)` (Theorem 3);
//! * the **K-DIAMOND** graph constraint ([`kdiamond`]) — same existence
//!   domain (Theorem 5), but k-regular at every `n = 2k + α(k−1)`
//!   (Theorems 6–7: strictly more regular points than K-TREE);
//! * the **LHG property validators** P1–P5 ([`properties`]), exact via
//!   max-flow/Menger plus exhaustive brute-force variants;
//! * a rule-by-rule **structural checker** ([`checker`]);
//! * the **EX/REG characteristic functions** ([`existence`], [`regularity`])
//!   in closed form and empirically;
//! * an **executable theorem suite** ([`theory`]).
//!
//! # Quickstart
//!
//! ```
//! use lhg_core::kdiamond::build_kdiamond;
//! use lhg_core::properties::validate;
//!
//! // An 8-node, 3-connected LHG that K-TREE cannot make regular.
//! let lhg = build_kdiamond(8, 3)?;
//! let report = validate(lhg.graph(), 3);
//! assert!(report.is_regular_lhg());
//! assert_eq!(report.edge_count, report.edge_lower_bound); // ⌈kn/2⌉
//! # Ok::<(), lhg_core::LhgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod construction;
mod error;

pub mod ablation;
pub mod analysis;
pub mod checker;
pub mod existence;
pub mod expand;
pub mod jd;
pub mod kdiamond;
pub mod ktree;
pub mod overlay;
pub mod planner;
pub mod properties;
pub mod regularity;
pub mod template;
pub mod theory;
pub mod util;
pub mod witness;

pub use construction::{Constraint, LhgGraph};
pub use error::LhgError;
