//! The existence characteristic functions EX_Π(n, k).
//!
//! `EX_Π(n, k)` is true iff an LHG for (n, k) satisfying constraint Π
//! exists (follow-up study §3). The closed forms are Theorem 2 (K-TREE) and
//! Theorem 5 (K-DIAMOND): both are true **iff n ≥ 2k** (with `2 ≤ k < n`),
//! hence Corollary 1: `EX_KTREE(n,k) ⇔ EX_KDIAMOND(n,k)`.
//!
//! [`ex_empirical`] cross-checks a closed form by actually building the
//! graph and validating the LHG properties — experiments E3/E5 sweep it
//! over a grid.

use crate::construction::Constraint;
use crate::jd::is_jd_constructible;
use crate::kdiamond::build_kdiamond;
use crate::ktree::build_ktree;
use crate::properties::validate;

/// Closed-form `EX_KTREE(n, k)` (Theorem 2): true iff `n ≥ 2k`, given
/// `2 ≤ k < n`.
#[must_use]
pub fn ex_ktree(n: usize, k: usize) -> bool {
    k >= 2 && k < n && n >= 2 * k
}

/// Closed-form `EX_KDIAMOND(n, k)` (Theorem 5): identical domain to K-TREE.
#[must_use]
pub fn ex_kdiamond(n: usize, k: usize) -> bool {
    ex_ktree(n, k)
}

/// `EX` under the JD operational rule (this reproduction's reading; see
/// [`crate::jd`]). Strictly smaller than `ex_ktree` — the follow-up's §4.4
/// point.
#[must_use]
pub fn ex_jd(n: usize, k: usize) -> bool {
    is_jd_constructible(n, k)
}

/// Closed-form `EX` for a constraint.
#[must_use]
pub fn ex(constraint: Constraint, n: usize, k: usize) -> bool {
    match constraint {
        Constraint::KTree => ex_ktree(n, k),
        Constraint::KDiamond => ex_kdiamond(n, k),
        Constraint::Jd => ex_jd(n, k),
    }
}

/// Empirical `EX`: attempts the construction and, when it succeeds,
/// validates P1–P4. Returns `true` only if a genuine LHG came out.
///
/// With `check_properties = false` only constructibility is tested (used by
/// large sweeps where the O(n·m) validation would dominate).
#[must_use]
pub fn ex_empirical(constraint: Constraint, n: usize, k: usize, check_properties: bool) -> bool {
    let built = match constraint {
        Constraint::KTree => build_ktree(n, k),
        Constraint::KDiamond => build_kdiamond(n, k),
        Constraint::Jd => crate::jd::build_jd(n, k),
    };
    match built {
        Ok(lhg) => !check_properties || validate(lhg.graph(), k).is_lhg(),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_boundaries() {
        assert!(!ex_ktree(5, 3));
        assert!(ex_ktree(6, 3));
        assert!(ex_ktree(7, 3));
        assert!(!ex_ktree(6, 1), "k >= 2 required");
        assert!(!ex_ktree(3, 3), "k < n required");
        assert!(!ex_ktree(3, 4));
    }

    #[test]
    fn corollary_1_equivalence() {
        for k in 2..=6 {
            for n in 1..=60 {
                assert_eq!(ex_ktree(n, k), ex_kdiamond(n, k), "(n={n},k={k})");
            }
        }
    }

    #[test]
    fn jd_is_strictly_weaker() {
        let mut strictly = false;
        for k in 2..=4 {
            for n in 1..=40 {
                if ex_jd(n, k) {
                    assert!(ex_ktree(n, k), "(n={n},k={k})");
                }
                if ex_ktree(n, k) && !ex_jd(n, k) {
                    strictly = true;
                }
            }
        }
        assert!(strictly, "JD must miss some pairs K-TREE covers");
    }

    #[test]
    fn empirical_matches_closed_form_with_property_validation() {
        for k in 3..=4usize {
            for n in (2 * k).saturating_sub(2)..=(2 * k + 8) {
                assert_eq!(
                    ex_empirical(Constraint::KTree, n, k, true),
                    ex_ktree(n, k),
                    "K-TREE (n={n},k={k})"
                );
                assert_eq!(
                    ex_empirical(Constraint::KDiamond, n, k, true),
                    ex_kdiamond(n, k),
                    "K-DIAMOND (n={n},k={k})"
                );
            }
        }
    }

    #[test]
    fn empirical_without_validation_is_constructibility() {
        assert!(ex_empirical(Constraint::Jd, 10, 3, false));
        assert!(!ex_empirical(Constraint::Jd, 9, 3, false));
    }
}
