//! Constructive Menger witnesses on LHGs.
//!
//! Lemma 1 of the follow-up study proves k-connectivity *constructively*:
//! between any two nodes there exist k disjoint paths routed through the k
//! pasted tree copies. This module extracts such witnesses from the built
//! graphs (via max-flow path decomposition) and checks the lemma's
//! quantitative content: k paths, pairwise disjoint, each of logarithmic
//! length.

use lhg_graph::disjoint_paths::{verify_disjoint, vertex_disjoint_paths};
use lhg_graph::NodeId;

use crate::construction::LhgGraph;

/// The disjoint-path witness for one node pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathWitness {
    /// Source node.
    pub s: NodeId,
    /// Target node.
    pub t: NodeId,
    /// The internally vertex-disjoint paths found (each `s .. t`).
    pub paths: Vec<Vec<NodeId>>,
}

impl PathWitness {
    /// Number of disjoint paths.
    #[must_use]
    pub fn width(&self) -> usize {
        self.paths.len()
    }

    /// Length (in hops) of the longest path in the witness.
    #[must_use]
    pub fn max_hops(&self) -> usize {
        self.paths.iter().map(|p| p.len() - 1).max().unwrap_or(0)
    }
}

/// Extracts k internally vertex-disjoint paths between `s` and `t` in
/// `lhg`, verifying them before returning.
///
/// # Panics
///
/// Panics if `s == t`, either is out of bounds, or the witness fails
/// verification (which would mean a construction bug).
#[must_use]
pub fn menger_witness(lhg: &LhgGraph, s: NodeId, t: NodeId) -> PathWitness {
    let paths = vertex_disjoint_paths(lhg.graph(), s, t);
    assert!(
        verify_disjoint(lhg.graph(), s, t, &paths, true),
        "extracted paths failed verification"
    );
    PathWitness { s, t, paths }
}

/// Summary of witnesses over many pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessSummary {
    /// Pairs checked.
    pub pairs: usize,
    /// Smallest witness width seen (must be ≥ k for an LHG).
    pub min_width: usize,
    /// Longest path over all witnesses.
    pub max_hops: usize,
}

/// Checks Lemma 1 over all pairs (`stride = 1`) or a strided sample: every
/// witness must have at least `lhg.k()` disjoint paths.
///
/// # Panics
///
/// Panics if `stride == 0` or the graph has fewer than 2 nodes.
#[must_use]
pub fn verify_menger(lhg: &LhgGraph, stride: usize) -> WitnessSummary {
    assert!(stride > 0, "stride must be positive");
    let n = lhg.n();
    assert!(n >= 2, "need at least two nodes");
    let mut pairs = 0;
    let mut min_width = usize::MAX;
    let mut max_hops = 0;
    let mut s = 0;
    while s < n {
        let mut t = s + 1;
        while t < n {
            let w = menger_witness(lhg, NodeId(s), NodeId(t));
            pairs += 1;
            min_width = min_width.min(w.width());
            max_hops = max_hops.max(w.max_hops());
            t += stride;
        }
        s += stride;
    }
    WitnessSummary {
        pairs,
        min_width,
        max_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdiamond::build_kdiamond;
    use crate::ktree::build_ktree;
    use crate::properties::p4_diameter_bound;

    #[test]
    fn every_pair_of_fig2c_has_three_disjoint_paths() {
        let lhg = build_ktree(10, 3).unwrap();
        let summary = verify_menger(&lhg, 1);
        assert_eq!(summary.pairs, 45);
        assert_eq!(summary.min_width, 3, "Lemma 1: k disjoint paths everywhere");
    }

    #[test]
    fn every_pair_of_fig3d_has_three_disjoint_paths() {
        let lhg = build_kdiamond(14, 3).unwrap();
        let summary = verify_menger(&lhg, 1);
        assert_eq!(summary.min_width, 3);
    }

    #[test]
    fn witness_paths_stay_logarithmic() {
        // Lemma 1 routes through at most two tree heights plus bridging
        // leaves; 2× the P4 bound is a generous envelope.
        for (n, k) in [(30usize, 3usize), (40, 4), (60, 4)] {
            let lhg = build_ktree(n, k).unwrap();
            let summary = verify_menger(&lhg, 5);
            assert!(
                (summary.max_hops as f64) <= 2.0 * p4_diameter_bound(n, k),
                "(n={n},k={k}): max witness hops {} vs bound {}",
                summary.max_hops,
                p4_diameter_bound(n, k)
            );
            assert!(summary.min_width >= k, "(n={n},k={k})");
        }
    }

    #[test]
    fn witness_accessors() {
        let lhg = build_ktree(6, 3).unwrap();
        let w = menger_witness(&lhg, NodeId(0), NodeId(1));
        assert_eq!(w.s, NodeId(0));
        assert_eq!(w.t, NodeId(1));
        assert_eq!(w.width(), 3);
        assert!(w.max_hops() >= 2, "roots are non-adjacent in (6,3)");
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let lhg = build_ktree(6, 3).unwrap();
        let _ = verify_menger(&lhg, 0);
    }
}
