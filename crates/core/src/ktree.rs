//! The K-TREE construction (follow-up study, Definition 1).
//!
//! A graph satisfies K-TREE if it consists of `k` copies of a tree `T`
//! pasted together at the leaves, where `T` is height-balanced, its root has
//! `k` children, other nodes have 0 or `k−1` children, and nodes just above
//! the leaves may carry up to `2k−3` *added* leaves.
//!
//! Theorem 2: a K-TREE graph exists for (n, k) **iff n ≥ 2k**, via the
//! decomposition `n = 2k + 2α(k−1) + j` with `j ∈ {0, …, 2k−3}`:
//!
//! * α *conversion events*, each turning the BFS-first shared leaf into an
//!   internal node with `k−1` fresh shared-leaf children (one conversion
//!   costs `k−1` vertices for the new internal copies plus `k−1` for the new
//!   leaves — Theorem 2, part 2);
//! * `j` added leaves on the node just above the current conversion
//!   frontier (Theorem 2, part 1).
//!
//! Theorem 3: the result is k-regular **iff j = 0**, i.e. n = 2k + 2α(k−1).

use std::collections::VecDeque;

use crate::construction::{Constraint, LhgGraph};
use crate::error::LhgError;
use crate::expand::expand;
use crate::template::{TemplateTree, TplKind};

/// Validates (n, k) for the pasted-trees constructions.
///
/// # Errors
///
/// `InvalidParams` when `k < 2` or `k ≥ n`; `NotConstructible` when
/// `n < 2k` (Lemma 4 / Lemma 8: no K-TREE or K-DIAMOND graph exists).
pub(crate) fn validate_params(
    n: usize,
    k: usize,
    constraint: &'static str,
) -> Result<(), LhgError> {
    if k < 2 {
        return Err(LhgError::InvalidParams {
            n,
            k,
            reason: "the pasted-trees constructions require k >= 2",
        });
    }
    if k >= n {
        return Err(LhgError::InvalidParams {
            n,
            k,
            reason: "LHGs require k < n",
        });
    }
    if n < 2 * k {
        return Err(LhgError::NotConstructible { n, k, constraint });
    }
    Ok(())
}

/// Decomposes `n = 2k + 2α(k−1) + j` with `j ∈ {0, …, 2k−3}`.
///
/// # Panics
///
/// Panics if `n < 2k` or `k < 2` (callers validate first).
#[must_use]
pub fn decompose(n: usize, k: usize) -> (usize, usize) {
    assert!(
        k >= 2 && n >= 2 * k,
        "decompose requires k >= 2 and n >= 2k"
    );
    let rest = n - 2 * k;
    let step = 2 * (k - 1);
    (rest / step, rest % step)
}

/// Builds the K-TREE template for `α` conversions and `j` added leaves.
pub(crate) fn build_template(k: usize, alpha: usize, j: usize) -> TemplateTree {
    let mut t = TemplateTree::new();
    let mut frontier = VecDeque::with_capacity(k);
    for _ in 0..k {
        frontier.push_back(t.add_child(t.root(), TplKind::SharedLeaf { added: false }));
    }
    for _ in 0..alpha {
        let leaf = frontier
            .pop_front()
            .expect("conversions never exhaust the frontier");
        t.convert_to_branch(leaf);
        for _ in 0..(k - 1) {
            frontier.push_back(t.add_child(leaf, TplKind::SharedLeaf { added: false }));
        }
    }
    if j > 0 {
        // Host = parent of the next convertible leaf: a node just above the
        // (shallowest) leaves, capacity 2k−3 ≥ j.
        let next = *frontier.front().expect("frontier is never empty");
        let host = t.node(next).parent.expect("leaves always have parents");
        for _ in 0..j {
            t.add_child(host, TplKind::SharedLeaf { added: true });
        }
    }
    t
}

/// Builds the K-TREE graph for (n, k).
///
/// # Errors
///
/// * [`LhgError::InvalidParams`] if `k < 2` or `k ≥ n`;
/// * [`LhgError::NotConstructible`] if `n < 2k` (Theorem 2: no K-TREE graph
///   exists below 2k).
///
/// # Example
///
/// ```
/// use lhg_core::ktree::build_ktree;
///
/// // The paper's Fig. 2(c) example: (10, 3), 3-regular.
/// let lhg = build_ktree(10, 3)?;
/// assert_eq!(lhg.n(), 10);
/// assert_eq!(lhg.graph().edge_count(), 15); // 3·10/2
/// # Ok::<(), lhg_core::LhgError>(())
/// ```
pub fn build_ktree(n: usize, k: usize) -> Result<LhgGraph, LhgError> {
    validate_params(n, k, "K-TREE")?;
    let (alpha, j) = decompose(n, k);
    let template = build_template(k, alpha, j);
    debug_assert_eq!(template.expanded_node_count(k), n);
    let expansion = expand(&template, k);
    Ok(LhgGraph::from_expansion(
        expansion,
        template,
        k,
        Constraint::KTree,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_graph::connectivity::{edge_connectivity, vertex_connectivity};
    use lhg_graph::degree::is_k_regular;
    use lhg_graph::NodeId;

    #[test]
    fn decompose_round_trips() {
        for k in 2..=6 {
            for n in (2 * k)..(2 * k + 40) {
                let (alpha, j) = decompose(n, k);
                assert_eq!(2 * k + 2 * alpha * (k - 1) + j, n, "n={n} k={k}");
                assert!(j <= (2 * k - 3), "j={j} exceeds 2k-3 for k={k}");
            }
        }
    }

    #[test]
    fn rejects_invalid_params() {
        assert!(matches!(
            build_ktree(10, 1),
            Err(LhgError::InvalidParams { .. })
        ));
        assert!(matches!(
            build_ktree(3, 3),
            Err(LhgError::InvalidParams { .. })
        ));
        assert!(matches!(
            build_ktree(3, 5),
            Err(LhgError::InvalidParams { .. })
        ));
        assert!(matches!(
            build_ktree(5, 3),
            Err(LhgError::NotConstructible { .. })
        ));
    }

    #[test]
    fn smallest_graph_is_fig_2a() {
        // (6,3) = K_{3,3}: roots 0..3 each adjacent to leaves 3..6.
        let lhg = build_ktree(6, 3).unwrap();
        assert_eq!(lhg.graph().edge_count(), 9);
        assert!(is_k_regular(lhg.graph(), 3));
        assert_eq!(vertex_connectivity(lhg.graph()), 3);
    }

    #[test]
    fn fig_2b_nine_nodes_with_three_added_leaves() {
        // (9,3): root hosts 2k−3 = 3 added leaves; not regular.
        let lhg = build_ktree(9, 3).unwrap();
        assert_eq!(lhg.n(), 9);
        let (alpha, j) = decompose(9, 3);
        assert_eq!((alpha, j), (0, 3));
        assert!(!is_k_regular(lhg.graph(), 3));
        // Root copies have degree k + j = 6; leaves have degree 3.
        let mut degs: Vec<usize> = lhg.graph().nodes().map(|v| lhg.graph().degree(v)).collect();
        degs.sort_unstable();
        assert_eq!(degs, vec![3, 3, 3, 3, 3, 3, 6, 6, 6]);
        assert_eq!(vertex_connectivity(lhg.graph()), 3);
    }

    #[test]
    fn fig_2c_ten_nodes_regular() {
        // (10,3): one conversion (α=1, j=0), 3-regular, 15 edges.
        let lhg = build_ktree(10, 3).unwrap();
        let (alpha, j) = decompose(10, 3);
        assert_eq!((alpha, j), (1, 0));
        assert!(is_k_regular(lhg.graph(), 3));
        assert_eq!(lhg.graph().edge_count(), 15);
        assert_eq!(vertex_connectivity(lhg.graph()), 3);
        assert_eq!(edge_connectivity(lhg.graph()), 3);
        // Template: root + converted internal (3 copies) + 2 untouched
        // leaves + 2 new leaves.
        assert_eq!(lhg.template().len(), 6);
        assert_eq!(lhg.template().height(), 2);
    }

    #[test]
    fn every_n_from_2k_is_constructible_and_k_connected() {
        for k in 2..=4usize {
            for n in (2 * k)..=(2 * k + 12) {
                let lhg = build_ktree(n, k).unwrap_or_else(|e| panic!("(n={n},k={k}): {e}"));
                assert_eq!(lhg.n(), n, "node count (n={n},k={k})");
                assert_eq!(
                    vertex_connectivity(lhg.graph()),
                    k,
                    "vertex connectivity (n={n},k={k})"
                );
                assert_eq!(
                    edge_connectivity(lhg.graph()),
                    k,
                    "edge connectivity (n={n},k={k})"
                );
            }
        }
    }

    #[test]
    fn regular_exactly_at_theorem_3_points() {
        let k = 3;
        for n in (2 * k)..=(2 * k + 20) {
            let lhg = build_ktree(n, k).unwrap();
            let (_, j) = decompose(n, k);
            assert_eq!(is_k_regular(lhg.graph(), k), j == 0, "n={n}");
        }
    }

    #[test]
    fn templates_stay_height_balanced_across_growth() {
        for k in 2..=4usize {
            for n in (2 * k)..=(2 * k + 30) {
                let lhg = build_ktree(n, k).unwrap();
                assert!(lhg.template().is_height_balanced(), "(n={n}, k={k})");
                assert!(lhg.template().validate_structure().is_ok());
            }
        }
    }

    #[test]
    fn shared_leaves_have_degree_k() {
        let lhg = build_ktree(16, 3).unwrap();
        for v in lhg.graph().nodes() {
            if lhg.role(v).is_leaf() {
                assert_eq!(lhg.graph().degree(v), 3, "leaf {v}");
            }
        }
    }

    #[test]
    fn deterministic_construction() {
        let a = build_ktree(22, 4).unwrap();
        let b = build_ktree(22, 4).unwrap();
        assert_eq!(a.graph().fingerprint(), b.graph().fingerprint());
    }

    #[test]
    fn k2_gives_cycles() {
        // K-TREE with k=2: two pasted paths = a cycle (exactly 2-connected,
        // 2-regular at j=0).
        for n in 4..=9 {
            let lhg = build_ktree(n, 2).unwrap();
            assert_eq!(lhg.graph().edge_count(), n + (n % 2), "n={n}");
            assert_eq!(vertex_connectivity(lhg.graph()), 2, "n={n}");
        }
    }

    #[test]
    fn root_copy_zero_is_node_zero() {
        let lhg = build_ktree(12, 3).unwrap();
        match lhg.role(NodeId(0)) {
            crate::expand::NodeRole::Branch { tpl, copy } => {
                assert_eq!(tpl, 0);
                assert_eq!(copy, 0);
            }
            other => panic!("unexpected role {other:?}"),
        }
    }
}
