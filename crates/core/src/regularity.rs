//! The regularity characteristic functions REG_Π(n, k).
//!
//! `REG_Π(n, k)` is true iff a **k-regular** LHG for (n, k) satisfying Π
//! exists. Closed forms:
//!
//! * Theorem 3 (K-TREE):    true ⟺ `n = 2k + 2α(k−1)` for some α ∈ ℕ;
//! * Theorem 6 (K-DIAMOND): true ⟺ `n = 2k + α(k−1)`;
//! * Corollary 2:           `REG_KTREE ⇒ REG_KDIAMOND`;
//! * Theorem 7:             infinitely many pairs (the odd-α K-DIAMOND
//!   points) are regular under K-DIAMOND but not under K-TREE.

use crate::construction::Constraint;
use crate::jd::is_jd_constructible;

/// Closed-form `REG_KTREE(n, k)` (Theorem 3).
#[must_use]
pub fn reg_ktree(n: usize, k: usize) -> bool {
    if !crate::existence::ex_ktree(n, k) {
        return false;
    }
    (n - 2 * k).is_multiple_of(2 * (k - 1))
}

/// Closed-form `REG_KDIAMOND(n, k)` (Theorem 6).
#[must_use]
pub fn reg_kdiamond(n: usize, k: usize) -> bool {
    if !crate::existence::ex_kdiamond(n, k) {
        return false;
    }
    (n - 2 * k).is_multiple_of(k - 1)
}

/// `REG` under the JD rule: JD's regular points are exactly K-TREE's
/// (extras always break regularity, and j = 0 is always JD-constructible).
#[must_use]
pub fn reg_jd(n: usize, k: usize) -> bool {
    is_jd_constructible(n, k) && reg_ktree(n, k)
}

/// Closed-form `REG` for a constraint.
#[must_use]
pub fn reg(constraint: Constraint, n: usize, k: usize) -> bool {
    match constraint {
        Constraint::KTree => reg_ktree(n, k),
        Constraint::KDiamond => reg_kdiamond(n, k),
        Constraint::Jd => reg_jd(n, k),
    }
}

/// Empirical `REG`: builds the graph and checks k-regularity of the result.
/// (The builders produce regular graphs exactly at the closed-form points,
/// so this doubles as a builder test.)
#[must_use]
pub fn reg_empirical(constraint: Constraint, n: usize, k: usize) -> bool {
    let built = match constraint {
        Constraint::KTree => crate::ktree::build_ktree(n, k),
        Constraint::KDiamond => crate::kdiamond::build_kdiamond(n, k),
        Constraint::Jd => crate::jd::build_jd(n, k),
    };
    built.is_ok_and(|lhg| lhg_graph::degree::is_k_regular(lhg.graph(), k))
}

/// The first `count` pairs (n, k) for the given `k` that witness Theorem 7:
/// regular under K-DIAMOND but not under K-TREE (the odd-α points).
#[must_use]
pub fn theorem7_witnesses(k: usize, count: usize) -> Vec<(usize, usize)> {
    assert!(
        k >= 3,
        "theorem 7 needs k >= 3 (k = 2 has k-1 = 1: every point is both)"
    );
    (0..)
        .map(|i| 2 * k + (2 * i + 1) * (k - 1)) // odd α
        .take(count)
        .map(|n| (n, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_3_points() {
        // k=3: regular at n = 6, 10, 14, 18, ...
        for n in 6..=20 {
            assert_eq!(reg_ktree(n, 3), n >= 6 && (n - 6) % 4 == 0, "n={n}");
        }
    }

    #[test]
    fn theorem_6_points() {
        // k=3: regular at n = 6, 8, 10, 12, ...
        for n in 6..=20 {
            assert_eq!(reg_kdiamond(n, 3), n % 2 == 0, "n={n}");
        }
    }

    #[test]
    fn corollary_2_implication() {
        for k in 2..=6 {
            for n in 1..=80 {
                if reg_ktree(n, k) {
                    assert!(reg_kdiamond(n, k), "(n={n},k={k})");
                }
            }
        }
    }

    #[test]
    fn theorem_7_witnesses_are_diamond_only() {
        for k in 3..=5 {
            for &(n, k) in &theorem7_witnesses(k, 6) {
                assert!(reg_kdiamond(n, k), "(n={n},k={k})");
                assert!(!reg_ktree(n, k), "(n={n},k={k})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn theorem_7_rejects_k2() {
        let _ = theorem7_witnesses(2, 1);
    }

    #[test]
    fn empirical_matches_closed_forms() {
        for k in 2..=4usize {
            for n in (2 * k)..=(2 * k + 16) {
                assert_eq!(
                    reg_empirical(Constraint::KTree, n, k),
                    reg_ktree(n, k),
                    "K-TREE (n={n},k={k})"
                );
                assert_eq!(
                    reg_empirical(Constraint::KDiamond, n, k),
                    reg_kdiamond(n, k),
                    "K-DIAMOND (n={n},k={k})"
                );
                assert_eq!(
                    reg_empirical(Constraint::Jd, n, k),
                    reg_jd(n, k),
                    "JD (n={n},k={k})"
                );
            }
        }
    }

    #[test]
    fn out_of_domain_is_false() {
        assert!(!reg_ktree(5, 3));
        assert!(!reg_kdiamond(5, 3));
        assert!(!reg_jd(5, 3));
        assert!(!reg(Constraint::KTree, 4, 4));
    }

    #[test]
    fn k2_every_point_is_regular_under_both() {
        for n in 4..=12 {
            assert!(reg_ktree(n, 2) == ((n % 2) == 0), "K-TREE k=2 n={n}");
            assert!(reg_kdiamond(n, 2), "K-DIAMOND k=2 n={n}");
        }
    }
}
