//! The template tree shared by the JD, K-TREE and K-DIAMOND constructions.
//!
//! All three constructions describe a graph as "k copies of a tree pasted
//! together at the leaves". The *template tree* is that single tree `T`,
//! with each node typed by how it expands into the final graph:
//!
//! * a [`TplKind::Branch`] (the root or an internal node) expands to `k`
//!   graph vertices — one per tree copy `T_1..T_k`;
//! * a [`TplKind::SharedLeaf`] expands to **one** graph vertex that is a
//!   leaf of *all* `k` copies (K-TREE rule 2 / K-DIAMOND rule 3);
//! * a [`TplKind::UnsharedGroup`] (K-DIAMOND rule 4) expands to `k` graph
//!   vertices forming a clique, the `i`-th attached to the parent's copy in
//!   `T_i`.
//!
//! The expansion itself lives in [`crate::expand`].

use crate::error::LhgError;

/// Index of a node inside a [`TemplateTree`].
pub type TplId = usize;

/// How a template node expands into the final graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TplKind {
    /// Root or internal node: `k` copies, one per tree.
    Branch,
    /// A leaf shared by all `k` trees: a single graph vertex with one parent
    /// edge per copy. `added` marks leaves attached via K-TREE rule 3d /
    /// K-DIAMOND rule 5d (extra children of a node just above the leaves).
    SharedLeaf {
        /// Whether this leaf was attached as an "added" leaf.
        added: bool,
    },
    /// An unshared leaf (K-DIAMOND only): `k` clique vertices, the `i`-th
    /// adjacent to the parent's copy in tree `i`.
    UnsharedGroup,
}

impl TplKind {
    /// Number of graph vertices this node expands to, given connectivity `k`.
    #[must_use]
    pub fn weight(self, k: usize) -> usize {
        match self {
            TplKind::Branch | TplKind::UnsharedGroup => k,
            TplKind::SharedLeaf { .. } => 1,
        }
    }

    /// Returns `true` for leaf kinds (shared or unshared).
    #[must_use]
    pub fn is_leaf(self) -> bool {
        !matches!(self, TplKind::Branch)
    }
}

/// One node of the template tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TplNode {
    /// Expansion kind.
    pub kind: TplKind,
    /// Parent id (`None` only for the root).
    pub parent: Option<TplId>,
    /// Children ids (non-empty only for branches).
    pub children: Vec<TplId>,
    /// Distance from the root (root = 0).
    pub depth: u32,
}

/// The template tree `T` of a pasted-trees construction.
///
/// Node 0 is always the root. Builders grow the tree with
/// [`TemplateTree::add_child`] and the conversion operations; the
/// constraint checkers and the expansion read it back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateTree {
    nodes: Vec<TplNode>,
}

// Externally tagged, matching the shape a serde derive would produce:
// unit variants as strings, struct variants as single-key objects.
#[cfg(feature = "serde")]
impl serde::Serialize for TplKind {
    fn to_value(&self) -> serde::Value {
        match self {
            TplKind::Branch => serde::Value::Str("Branch".to_owned()),
            TplKind::SharedLeaf { added } => serde::Value::Obj(vec![(
                "SharedLeaf".to_owned(),
                serde::Value::Obj(vec![("added".to_owned(), serde::Value::Bool(*added))]),
            )]),
            TplKind::UnsharedGroup => serde::Value::Str("UnsharedGroup".to_owned()),
        }
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for TplKind {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value.as_str() {
            Some("Branch") => return Ok(TplKind::Branch),
            Some("UnsharedGroup") => return Ok(TplKind::UnsharedGroup),
            Some(other) => {
                return Err(serde::Error::new(format!(
                    "unknown TplKind variant `{other}`"
                )))
            }
            None => {}
        }
        if let Some(body) = value.field("SharedLeaf") {
            let added = body
                .field("added")
                .ok_or_else(|| serde::Error::new("missing field `added`"))?;
            return <bool as serde::Deserialize>::from_value(added)
                .map(|added| TplKind::SharedLeaf { added });
        }
        Err(serde::Error::expected("TplKind variant", value))
    }
}

#[cfg(feature = "serde")]
serde::impl_serde_struct!(TplNode {
    kind: TplKind,
    parent: Option<TplId>,
    children: Vec<TplId>,
    depth: u32
});

#[cfg(feature = "serde")]
serde::impl_serde_struct!(TemplateTree { nodes: Vec<TplNode> });

impl TemplateTree {
    /// A template containing only the root.
    #[must_use]
    pub fn new() -> Self {
        TemplateTree {
            nodes: vec![TplNode {
                kind: TplKind::Branch,
                parent: None,
                children: Vec::new(),
                depth: 0,
            }],
        }
    }

    /// Id of the root node (always 0).
    #[must_use]
    pub fn root(&self) -> TplId {
        0
    }

    /// Number of template nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the template holds only the root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[must_use]
    pub fn node(&self, id: TplId) -> &TplNode {
        &self.nodes[id]
    }

    /// Iterator over `(id, node)` pairs in id (creation) order.
    pub fn iter(&self) -> impl Iterator<Item = (TplId, &TplNode)> {
        self.nodes.iter().enumerate()
    }

    /// Adds a child of `parent` with the given kind; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of bounds or is not a branch.
    pub fn add_child(&mut self, parent: TplId, kind: TplKind) -> TplId {
        assert!(
            matches!(self.nodes[parent].kind, TplKind::Branch),
            "only branches can have children"
        );
        let id = self.nodes.len();
        let depth = self.nodes[parent].depth + 1;
        self.nodes.push(TplNode {
            kind,
            parent: Some(parent),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Converts a leaf into a branch (K-TREE "a leaf becomes an internal
    /// node"; K-DIAMOND "an unshared leaf becomes an internal node").
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a leaf.
    pub fn convert_to_branch(&mut self, id: TplId) {
        assert!(
            self.nodes[id].kind.is_leaf(),
            "only leaves can be converted to branches"
        );
        self.nodes[id].kind = TplKind::Branch;
    }

    /// Converts a shared leaf into an unshared group (K-DIAMOND grouping
    /// step: k−1 shared-leaf vertices plus one incoming node become a
    /// clique occupying the same tree position).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a shared leaf.
    pub fn convert_to_unshared(&mut self, id: TplId) {
        assert!(
            matches!(self.nodes[id].kind, TplKind::SharedLeaf { .. }),
            "only shared leaves can be grouped into unshared leaves"
        );
        self.nodes[id].kind = TplKind::UnsharedGroup;
    }

    /// Total graph vertices the template expands to for connectivity `k`.
    #[must_use]
    pub fn expanded_node_count(&self, k: usize) -> usize {
        self.nodes.iter().map(|n| n.kind.weight(k)).sum()
    }

    /// Ids of all leaves (shared and unshared), ascending.
    #[must_use]
    pub fn leaves(&self) -> Vec<TplId> {
        self.iter()
            .filter(|(_, n)| n.kind.is_leaf())
            .map(|(i, _)| i)
            .collect()
    }

    /// Height of the tree: the maximum leaf depth (0 if the root is the only
    /// node).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Checks the structural sanity of the template itself: parent/child
    /// links are mutual, depths are consistent, only branches have children.
    ///
    /// # Errors
    ///
    /// Returns an [`LhgError::InvalidParams`]-style error describing the
    /// first violation found. This is an internal-consistency check used by
    /// tests; builders always produce valid templates.
    pub fn validate_structure(&self) -> Result<(), LhgError> {
        let fail = |reason: &'static str| {
            Err(LhgError::InvalidParams {
                n: self.nodes.len(),
                k: 0,
                reason,
            })
        };
        if self.nodes.is_empty() {
            return fail("template has no root");
        }
        if self.nodes[0].parent.is_some() || self.nodes[0].depth != 0 {
            return fail("node 0 must be the depth-0 root");
        }
        for (id, node) in self.iter().skip(1) {
            let Some(p) = node.parent else {
                return fail("non-root node without parent");
            };
            if p >= self.nodes.len() || !self.nodes[p].children.contains(&id) {
                return fail("parent link not mirrored in children");
            }
            if node.depth != self.nodes[p].depth + 1 {
                return fail("depth must be parent depth + 1");
            }
            if node.kind.is_leaf() && !node.children.is_empty() {
                return fail("leaves cannot have children");
            }
        }
        Ok(())
    }

    /// `true` if all leaf depths differ by at most one (height balance,
    /// K-TREE rule 3a / K-DIAMOND rule 5a).
    #[must_use]
    pub fn is_height_balanced(&self) -> bool {
        let depths: Vec<u32> = self
            .iter()
            .filter(|(_, n)| n.kind.is_leaf())
            .map(|(_, n)| n.depth)
            .collect();
        match (depths.iter().min(), depths.iter().max()) {
            (Some(min), Some(max)) => max - min <= 1,
            _ => true,
        }
    }
}

impl Default for TemplateTree {
    fn default() -> Self {
        TemplateTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> TplKind {
        TplKind::SharedLeaf { added: false }
    }

    #[test]
    fn new_template_is_single_root() {
        let t = TemplateTree::new();
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.root(), 0);
        assert_eq!(t.height(), 0);
        assert!(t.validate_structure().is_ok());
        assert!(t.is_height_balanced());
    }

    #[test]
    fn add_child_links_and_depths() {
        let mut t = TemplateTree::new();
        let a = t.add_child(t.root(), leaf());
        let b = t.add_child(t.root(), leaf());
        assert_eq!(t.node(a).depth, 1);
        assert_eq!(t.node(a).parent, Some(0));
        assert_eq!(t.node(t.root()).children, vec![a, b]);
        assert!(t.validate_structure().is_ok());
    }

    #[test]
    fn conversion_round() {
        let mut t = TemplateTree::new();
        let a = t.add_child(t.root(), leaf());
        t.convert_to_branch(a);
        assert_eq!(t.node(a).kind, TplKind::Branch);
        let c = t.add_child(a, leaf());
        assert_eq!(t.node(c).depth, 2);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn convert_to_unshared_changes_kind() {
        let mut t = TemplateTree::new();
        let a = t.add_child(t.root(), leaf());
        t.convert_to_unshared(a);
        assert_eq!(t.node(a).kind, TplKind::UnsharedGroup);
        assert!(t.node(a).kind.is_leaf());
    }

    #[test]
    #[should_panic(expected = "only branches")]
    fn cannot_attach_child_to_leaf() {
        let mut t = TemplateTree::new();
        let a = t.add_child(t.root(), leaf());
        t.add_child(a, leaf());
    }

    #[test]
    #[should_panic(expected = "only leaves")]
    fn cannot_convert_branch() {
        let mut t = TemplateTree::new();
        t.convert_to_branch(t.root());
    }

    #[test]
    #[should_panic(expected = "only shared leaves")]
    fn cannot_group_unshared_twice() {
        let mut t = TemplateTree::new();
        let a = t.add_child(t.root(), leaf());
        t.convert_to_unshared(a);
        t.convert_to_unshared(a);
    }

    #[test]
    fn weights_count_expansion() {
        assert_eq!(TplKind::Branch.weight(3), 3);
        assert_eq!(TplKind::UnsharedGroup.weight(3), 3);
        assert_eq!(leaf().weight(3), 1);

        let mut t = TemplateTree::new();
        t.add_child(t.root(), leaf());
        t.add_child(t.root(), TplKind::UnsharedGroup);
        // root(3) + shared(1) + group(3) = 7.
        assert_eq!(t.expanded_node_count(3), 7);
    }

    #[test]
    fn leaves_and_balance() {
        let mut t = TemplateTree::new();
        let a = t.add_child(t.root(), leaf());
        let _b = t.add_child(t.root(), leaf());
        t.convert_to_branch(a);
        let c = t.add_child(a, leaf());
        assert_eq!(t.leaves(), vec![2, c]);
        assert!(t.is_height_balanced(), "depths 1 and 2 differ by one");

        // Make it unbalanced: depth 3 leaf while depth 1 leaf exists.
        let mut t2 = t.clone();
        t2.convert_to_branch(c);
        let _d = t2.add_child(c, leaf());
        assert!(!t2.is_height_balanced());
    }

    #[test]
    fn detects_broken_structures() {
        // Hand-build a broken template through the public API is impossible;
        // simulate by cloning and mutating a serialized copy is overkill —
        // instead check that validate accepts everything builders produce.
        let mut t = TemplateTree::new();
        for _ in 0..3 {
            t.add_child(t.root(), leaf());
        }
        assert!(t.validate_structure().is_ok());
    }
}
