//! Dynamic membership: maintaining an LHG overlay under joins and leaves.
//!
//! The papers motivate LHGs by peer-to-peer settings where n is arbitrary
//! *and changing*. [`DynamicOverlay`] keeps a constraint-built LHG over a
//! live membership list: every join/leave rebuilds the topology at the new
//! n (constructions are O(n), see the `construction` bench) and reports the
//! **churn** — which member-to-member links must be torn down or
//! established. Experiment E17 measures how churn scales.
//!
//! Members carry stable ids; graph node `i` hosts `members()[i]`. A leave
//! swap-removes, so at most one surviving member changes position.

use std::collections::BTreeSet;

use lhg_graph::Graph;

use crate::construction::{Constraint, LhgGraph};
use crate::error::LhgError;

/// A stable member identifier (independent of graph node positions).
pub type MemberId = u64;

/// Link churn from one membership change.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Member-id pairs that must be connected.
    pub added: Vec<(MemberId, MemberId)>,
    /// Member-id pairs that must be disconnected.
    pub removed: Vec<(MemberId, MemberId)>,
}

impl ChurnReport {
    /// Total links touched.
    #[must_use]
    pub fn total(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

/// An LHG overlay maintained across membership changes.
#[derive(Debug, Clone)]
pub struct DynamicOverlay {
    k: usize,
    constraint: Constraint,
    members: Vec<MemberId>,
    next_id: MemberId,
    current: LhgGraph,
}

impl DynamicOverlay {
    /// Bootstraps an overlay with `n` initial members (ids `0..n`).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error when (n, k) is out of domain
    /// (`n ≥ 2k`, `k ≥ 2` required).
    pub fn bootstrap(constraint: Constraint, n: usize, k: usize) -> Result<Self, LhgError> {
        let current = build(constraint, n, k)?;
        Ok(DynamicOverlay {
            k,
            constraint,
            members: (0..n as MemberId).collect(),
            next_id: n as MemberId,
            current,
        })
    }

    /// Current member list, indexed by graph node position.
    #[must_use]
    pub fn members(&self) -> &[MemberId] {
        &self.members
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the overlay has no members (never happens: the domain
    /// floor is 2k).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The current topology.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.current.graph()
    }

    /// Target connectivity.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Member-id link set of the current topology.
    fn link_set(&self) -> BTreeSet<(MemberId, MemberId)> {
        self.current
            .graph()
            .edges()
            .map(|e| {
                let a = self.members[e.a.index()];
                let b = self.members[e.b.index()];
                (a.min(b), a.max(b))
            })
            .collect()
    }

    /// Rebuilds the topology at the current membership; `before` is the
    /// link set captured **before** the membership was mutated (the member
    /// list and the old graph must be read together).
    fn rebuild(&mut self, before: BTreeSet<(MemberId, MemberId)>) -> Result<ChurnReport, LhgError> {
        self.current = build(self.constraint, self.members.len(), self.k)?;
        let after = self.link_set();
        Ok(ChurnReport {
            added: after.difference(&before).copied().collect(),
            removed: before.difference(&after).copied().collect(),
        })
    }

    /// Admits a new member; returns its id and the link churn.
    ///
    /// # Errors
    ///
    /// Never fails once bootstrapped (n only grows), but propagates builder
    /// errors defensively.
    pub fn join(&mut self) -> Result<(MemberId, ChurnReport), LhgError> {
        let before = self.link_set();
        let id = self.next_id;
        self.next_id += 1;
        self.members.push(id);
        let churn = self.rebuild(before)?;
        Ok((id, churn))
    }

    /// Removes `member`; returns the link churn.
    ///
    /// # Errors
    ///
    /// [`LhgError::InvalidParams`] if `member` is unknown, or
    /// [`LhgError::NotConstructible`] if the membership would drop below
    /// the 2k floor.
    pub fn leave(&mut self, member: MemberId) -> Result<ChurnReport, LhgError> {
        let Some(pos) = self.members.iter().position(|&m| m == member) else {
            return Err(LhgError::InvalidParams {
                n: self.members.len(),
                k: self.k,
                reason: "unknown member id",
            });
        };
        if self.members.len() <= 2 * self.k {
            return Err(LhgError::NotConstructible {
                n: self.members.len() - 1,
                k: self.k,
                constraint: self.constraint.name(),
            });
        }
        let before = self.link_set();
        self.members.swap_remove(pos);
        self.rebuild(before)
    }
}

fn build(constraint: Constraint, n: usize, k: usize) -> Result<LhgGraph, LhgError> {
    match constraint {
        Constraint::KTree => crate::ktree::build_ktree(n, k),
        Constraint::KDiamond => crate::kdiamond::build_kdiamond(n, k),
        Constraint::Jd => crate::jd::build_jd(n, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_graph::connectivity::vertex_connectivity;

    #[test]
    fn bootstrap_builds_a_k_connected_overlay() {
        let o = DynamicOverlay::bootstrap(Constraint::KDiamond, 12, 3).unwrap();
        assert_eq!(o.len(), 12);
        assert_eq!(o.k(), 3);
        assert!(!o.is_empty());
        assert_eq!(vertex_connectivity(o.graph()), 3);
    }

    #[test]
    fn join_keeps_connectivity_and_reports_churn() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KDiamond, 10, 3).unwrap();
        let (id, churn) = o.join().unwrap();
        assert_eq!(id, 10);
        assert_eq!(o.len(), 11);
        assert!(!churn.added.is_empty(), "the newcomer must get links");
        assert!(churn.added.iter().any(|&(a, b)| a == 10 || b == 10));
        assert_eq!(vertex_connectivity(o.graph()), 3);
    }

    #[test]
    fn leave_keeps_connectivity() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KTree, 14, 3).unwrap();
        let churn = o.leave(5).unwrap();
        assert_eq!(o.len(), 13);
        assert!(!o.members().contains(&5));
        assert!(churn.removed.iter().any(|&(a, b)| a == 5 || b == 5));
        assert!(!churn.removed.is_empty());
        assert_eq!(vertex_connectivity(o.graph()), 3);
    }

    #[test]
    fn leave_below_floor_is_rejected() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KTree, 6, 3).unwrap();
        assert!(matches!(o.leave(0), Err(LhgError::NotConstructible { .. })));
        assert_eq!(o.len(), 6, "membership unchanged on failure");
    }

    #[test]
    fn unknown_member_is_rejected() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KTree, 10, 3).unwrap();
        assert!(matches!(o.leave(99), Err(LhgError::InvalidParams { .. })));
    }

    #[test]
    fn churn_is_consistent_with_topologies() {
        // Applying the diff to the before-link-set must yield the after-set.
        let mut o = DynamicOverlay::bootstrap(Constraint::KDiamond, 9, 3).unwrap();
        let before = o.link_set();
        let (_, churn) = o.join().unwrap();
        let mut reconstructed = before;
        for r in &churn.removed {
            assert!(reconstructed.remove(r), "removed link {r:?} was present");
        }
        for a in &churn.added {
            assert!(reconstructed.insert(*a), "added link {a:?} was absent");
        }
        assert_eq!(reconstructed, o.link_set());
    }

    #[test]
    fn join_leave_round_trip_restores_size() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KTree, 12, 3).unwrap();
        let (id, _) = o.join().unwrap();
        let _ = o.leave(id).unwrap();
        assert_eq!(o.len(), 12);
        assert_eq!(vertex_connectivity(o.graph()), 3);
    }

    #[test]
    fn long_churn_sequence_stays_k_connected() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KDiamond, 10, 3).unwrap();
        for step in 0..12 {
            if step % 3 == 2 {
                let victim = o.members()[step % o.len()];
                let _ = o.leave(victim).unwrap();
            } else {
                let _ = o.join().unwrap();
            }
            assert_eq!(vertex_connectivity(o.graph()), 3, "step {step}");
        }
        assert_eq!(o.len(), 10 + 8 - 4);
    }
}
