//! Dynamic membership: maintaining an LHG overlay under joins and leaves.
//!
//! The papers motivate LHGs by peer-to-peer settings where n is arbitrary
//! *and changing*. [`DynamicOverlay`] keeps a constraint-built LHG over a
//! live membership list: every join/leave rebuilds the topology at the new
//! n (constructions are O(n), see the `construction` bench) and reports the
//! **churn** — which member-to-member links must be torn down or
//! established. Experiment E17 measures how churn scales.
//!
//! Members carry stable ids; graph node `i` hosts `members()[i]`. A leave
//! swap-removes, so at most one surviving member changes position.

use std::collections::BTreeSet;

use lhg_graph::Graph;

use crate::construction::{Constraint, LhgGraph};
use crate::error::LhgError;

/// A stable member identifier (independent of graph node positions).
pub type MemberId = u64;

/// Link churn from one membership change.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Member-id pairs that must be connected.
    pub added: Vec<(MemberId, MemberId)>,
    /// Member-id pairs that must be disconnected.
    pub removed: Vec<(MemberId, MemberId)>,
}

impl ChurnReport {
    /// Total links touched.
    #[must_use]
    pub fn total(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Peers `member` must newly connect to.
    pub fn added_for(&self, member: MemberId) -> impl Iterator<Item = MemberId> + '_ {
        self.added
            .iter()
            .filter_map(move |&(a, b)| pair_other(a, b, member))
    }

    /// Peers `member` must disconnect from.
    pub fn removed_for(&self, member: MemberId) -> impl Iterator<Item = MemberId> + '_ {
        self.removed
            .iter()
            .filter_map(move |&(a, b)| pair_other(a, b, member))
    }
}

fn pair_other(a: MemberId, b: MemberId, member: MemberId) -> Option<MemberId> {
    if a == member {
        Some(b)
    } else if b == member {
        Some(a)
    } else {
        None
    }
}

/// An LHG overlay maintained across membership changes.
#[derive(Debug, Clone)]
pub struct DynamicOverlay {
    k: usize,
    constraint: Constraint,
    members: Vec<MemberId>,
    next_id: MemberId,
    current: LhgGraph,
}

impl DynamicOverlay {
    /// Bootstraps an overlay with `n` initial members (ids `0..n`).
    ///
    /// # Errors
    ///
    /// Propagates the builder's error when (n, k) is out of domain
    /// (`n ≥ 2k`, `k ≥ 2` required).
    pub fn bootstrap(constraint: Constraint, n: usize, k: usize) -> Result<Self, LhgError> {
        let current = build(constraint, n, k)?;
        Ok(DynamicOverlay {
            k,
            constraint,
            members: (0..n as MemberId).collect(),
            next_id: n as MemberId,
            current,
        })
    }

    /// Current member list, indexed by graph node position.
    #[must_use]
    pub fn members(&self) -> &[MemberId] {
        &self.members
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the overlay has no members (never happens: the domain
    /// floor is 2k).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The current topology.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.current.graph()
    }

    /// Target connectivity.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The construction constraint this overlay rebuilds with.
    #[must_use]
    pub fn constraint(&self) -> Constraint {
        self.constraint
    }

    /// `true` if `member` is currently part of the overlay.
    #[must_use]
    pub fn contains(&self, member: MemberId) -> bool {
        self.members.contains(&member)
    }

    /// The current topology's links as normalized member-id pairs
    /// (`(min, max)` per undirected link).
    #[must_use]
    pub fn links(&self) -> BTreeSet<(MemberId, MemberId)> {
        self.link_set()
    }

    /// Overlay neighbors of `member` (by stable id), or `None` if unknown.
    #[must_use]
    pub fn neighbors_of(&self, member: MemberId) -> Option<Vec<MemberId>> {
        let pos = self.members.iter().position(|&m| m == member)?;
        Some(
            self.current
                .graph()
                .neighbors(lhg_graph::NodeId(pos))
                .map(|w| self.members[w.index()])
                .collect(),
        )
    }

    /// Member-id link set of the current topology.
    fn link_set(&self) -> BTreeSet<(MemberId, MemberId)> {
        self.current
            .graph()
            .edges()
            .map(|e| {
                let a = self.members[e.a.index()];
                let b = self.members[e.b.index()];
                (a.min(b), a.max(b))
            })
            .collect()
    }

    /// Installs a freshly built topology; `before` is the link set captured
    /// while members and graph were still consistent. Infallible: all
    /// fallible work (the build) happens before any mutation, so a failed
    /// membership change can never leave the replica torn.
    fn apply(&mut self, next: LhgGraph, before: &BTreeSet<(MemberId, MemberId)>) -> ChurnReport {
        self.current = next;
        let after = self.link_set();
        ChurnReport {
            added: after.difference(before).copied().collect(),
            removed: before.difference(&after).copied().collect(),
        }
    }

    /// Admits a new member; returns its id and the link churn.
    ///
    /// # Errors
    ///
    /// Propagates builder errors — under the JD constraint some sizes do
    /// not exist (the follow-up constraints K-TREE and K-DIAMOND cover
    /// every n ≥ 2k). The overlay is untouched on error.
    pub fn join(&mut self) -> Result<(MemberId, ChurnReport), LhgError> {
        let next = build(self.constraint, self.members.len() + 1, self.k)?;
        let before = self.link_set();
        let id = self.next_id;
        self.next_id += 1;
        self.members.push(id);
        Ok((id, self.apply(next, &before)))
    }

    /// Reconstructs an overlay replica from an explicit member list — the
    /// receiving side of a membership sync (a rejoining node installing a
    /// snapshot served by a live peer). `members` must be in the serving
    /// replica's order so both replicas map graph positions identically.
    ///
    /// # Errors
    ///
    /// [`LhgError::InvalidParams`] if `members` contains duplicates;
    /// builder errors if the constraint has no graph at this size.
    pub fn from_parts(
        constraint: Constraint,
        k: usize,
        members: Vec<MemberId>,
    ) -> Result<Self, LhgError> {
        let unique: BTreeSet<MemberId> = members.iter().copied().collect();
        if unique.len() != members.len() {
            return Err(LhgError::InvalidParams {
                n: members.len(),
                k,
                reason: "duplicate member id",
            });
        }
        let current = build(constraint, members.len(), k)?;
        let next_id = members.iter().copied().max().map_or(0, |m| m + 1);
        Ok(DynamicOverlay {
            k,
            constraint,
            members,
            next_id,
            current,
        })
    }

    /// Admits `member` under its **existing** id — the rejoin path, where
    /// every replica must converge on the same membership order without
    /// coordination. The newcomer is spliced in at the canonical position
    /// `partition_point(m < member)`, so replicas holding identical member
    /// lists place it identically regardless of when they process the join.
    ///
    /// # Errors
    ///
    /// [`LhgError::InvalidParams`] if `member` is already present; builder
    /// errors if the constraint has no graph at the larger size. The
    /// overlay is untouched on error.
    pub fn admit(&mut self, member: MemberId) -> Result<ChurnReport, LhgError> {
        if self.contains(member) {
            return Err(LhgError::InvalidParams {
                n: self.members.len(),
                k: self.k,
                reason: "member already present",
            });
        }
        let next = build(self.constraint, self.members.len() + 1, self.k)?;
        let before = self.link_set();
        let pos = self.members.partition_point(|&m| m < member);
        self.members.insert(pos, member);
        self.next_id = self.next_id.max(member + 1);
        Ok(self.apply(next, &before))
    }

    /// Removes `member`; returns the link churn.
    ///
    /// # Errors
    ///
    /// [`LhgError::InvalidParams`] if `member` is unknown, or
    /// [`LhgError::NotConstructible`] if the membership would drop below
    /// the 2k floor or the constraint has no graph at the smaller size.
    /// The overlay is untouched on error.
    pub fn leave(&mut self, member: MemberId) -> Result<ChurnReport, LhgError> {
        let Some(pos) = self.members.iter().position(|&m| m == member) else {
            return Err(LhgError::InvalidParams {
                n: self.members.len(),
                k: self.k,
                reason: "unknown member id",
            });
        };
        if self.members.len() <= 2 * self.k {
            return Err(LhgError::NotConstructible {
                n: self.members.len() - 1,
                k: self.k,
                constraint: self.constraint.name(),
            });
        }
        let next = build(self.constraint, self.members.len() - 1, self.k)?;
        let before = self.link_set();
        self.members.swap_remove(pos);
        Ok(self.apply(next, &before))
    }

    /// Removes several members at once with a **single** rebuild — the
    /// self-healing path after a failure detector flags a batch of crashed
    /// processes. Duplicates in `crashed` are ignored.
    ///
    /// The membership is untouched when an error is returned.
    ///
    /// # Errors
    ///
    /// [`LhgError::InvalidParams`] if any id is unknown, or
    /// [`LhgError::NotConstructible`] if the surviving membership would drop
    /// below the 2k floor or the constraint has no graph at the surviving
    /// size (possible under JD, whose sizes have gaps).
    pub fn crash_many(&mut self, crashed: &[MemberId]) -> Result<ChurnReport, LhgError> {
        let unique: BTreeSet<MemberId> = crashed.iter().copied().collect();
        if unique.is_empty() {
            return Ok(ChurnReport::default());
        }
        if unique.iter().any(|&m| !self.contains(m)) {
            return Err(LhgError::InvalidParams {
                n: self.members.len(),
                k: self.k,
                reason: "unknown member id",
            });
        }
        let survivors = self.members.len() - unique.len();
        if survivors < 2 * self.k {
            return Err(LhgError::NotConstructible {
                n: survivors,
                k: self.k,
                constraint: self.constraint.name(),
            });
        }
        let next = build(self.constraint, survivors, self.k)?;
        let before = self.link_set();
        self.members.retain(|m| !unique.contains(m));
        Ok(self.apply(next, &before))
    }
}

fn build(constraint: Constraint, n: usize, k: usize) -> Result<LhgGraph, LhgError> {
    match constraint {
        Constraint::KTree => crate::ktree::build_ktree(n, k),
        Constraint::KDiamond => crate::kdiamond::build_kdiamond(n, k),
        Constraint::Jd => crate::jd::build_jd(n, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhg_graph::connectivity::vertex_connectivity;

    #[test]
    fn bootstrap_builds_a_k_connected_overlay() {
        let o = DynamicOverlay::bootstrap(Constraint::KDiamond, 12, 3).unwrap();
        assert_eq!(o.len(), 12);
        assert_eq!(o.k(), 3);
        assert!(!o.is_empty());
        assert_eq!(vertex_connectivity(o.graph()), 3);
    }

    #[test]
    fn join_keeps_connectivity_and_reports_churn() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KDiamond, 10, 3).unwrap();
        let (id, churn) = o.join().unwrap();
        assert_eq!(id, 10);
        assert_eq!(o.len(), 11);
        assert!(!churn.added.is_empty(), "the newcomer must get links");
        assert!(churn.added.iter().any(|&(a, b)| a == 10 || b == 10));
        assert_eq!(vertex_connectivity(o.graph()), 3);
    }

    #[test]
    fn leave_keeps_connectivity() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KTree, 14, 3).unwrap();
        let churn = o.leave(5).unwrap();
        assert_eq!(o.len(), 13);
        assert!(!o.members().contains(&5));
        assert!(churn.removed.iter().any(|&(a, b)| a == 5 || b == 5));
        assert!(!churn.removed.is_empty());
        assert_eq!(vertex_connectivity(o.graph()), 3);
    }

    #[test]
    fn leave_below_floor_is_rejected() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KTree, 6, 3).unwrap();
        assert!(matches!(o.leave(0), Err(LhgError::NotConstructible { .. })));
        assert_eq!(o.len(), 6, "membership unchanged on failure");
    }

    #[test]
    fn unknown_member_is_rejected() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KTree, 10, 3).unwrap();
        assert!(matches!(o.leave(99), Err(LhgError::InvalidParams { .. })));
    }

    #[test]
    fn churn_is_consistent_with_topologies() {
        // Applying the diff to the before-link-set must yield the after-set.
        let mut o = DynamicOverlay::bootstrap(Constraint::KDiamond, 9, 3).unwrap();
        let before = o.link_set();
        let (_, churn) = o.join().unwrap();
        let mut reconstructed = before;
        for r in &churn.removed {
            assert!(reconstructed.remove(r), "removed link {r:?} was present");
        }
        for a in &churn.added {
            assert!(reconstructed.insert(*a), "added link {a:?} was absent");
        }
        assert_eq!(reconstructed, o.link_set());
    }

    #[test]
    fn join_leave_round_trip_restores_size() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KTree, 12, 3).unwrap();
        let (id, _) = o.join().unwrap();
        let _ = o.leave(id).unwrap();
        assert_eq!(o.len(), 12);
        assert_eq!(vertex_connectivity(o.graph()), 3);
    }

    #[test]
    fn crash_many_heals_with_one_rebuild() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KTree, 14, 3).unwrap();
        let before = o.links();
        let churn = o.crash_many(&[3, 9]).unwrap();
        assert_eq!(o.len(), 12);
        assert!(!o.contains(3) && !o.contains(9));
        assert_eq!(
            vertex_connectivity(o.graph()),
            3,
            "healed overlay is 3-connected"
        );
        // The diff transforms the old link set into the new one.
        let mut reconstructed = before;
        for r in &churn.removed {
            assert!(reconstructed.remove(r), "removed link {r:?} was present");
        }
        for a in &churn.added {
            assert!(reconstructed.insert(*a), "added link {a:?} was absent");
        }
        assert_eq!(reconstructed, o.links());
        // No surviving link may touch a crashed member.
        assert!(o
            .links()
            .iter()
            .all(|&(a, b)| ![a, b].contains(&3) && ![a, b].contains(&9)));
    }

    #[test]
    fn crash_many_handles_duplicates_and_empty() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KDiamond, 12, 3).unwrap();
        assert_eq!(o.crash_many(&[]).unwrap(), ChurnReport::default());
        let _ = o.crash_many(&[4, 4, 4]).unwrap();
        assert_eq!(o.len(), 11);
    }

    #[test]
    fn crash_many_rejects_floor_violation_atomically() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KTree, 8, 3).unwrap();
        // 8 - 3 = 5 < 6 = 2k: must refuse and leave membership untouched.
        assert!(matches!(
            o.crash_many(&[0, 1, 2]),
            Err(LhgError::NotConstructible { .. })
        ));
        assert_eq!(o.len(), 8);
        assert!(o.contains(0));
    }

    #[test]
    fn failed_rebuild_leaves_overlay_consistent() {
        // JD has no graph at (n=9, k=3): crashing one member of a 10-node
        // JD overlay must fail cleanly, leaving members and graph paired.
        let mut o = DynamicOverlay::bootstrap(Constraint::Jd, 10, 3).unwrap();
        let links_before = o.links();
        assert!(matches!(
            o.crash_many(&[4]),
            Err(LhgError::NotConstructible { .. })
        ));
        assert!(matches!(o.leave(4), Err(LhgError::NotConstructible { .. })));
        assert_eq!(o.len(), 10, "membership untouched");
        assert_eq!(o.links(), links_before, "topology untouched");
        assert_eq!(
            o.neighbors_of(9).map(|v| v.len() >= 3),
            Some(true),
            "replica still internally consistent"
        );
        // The K-TREE/K-DIAMOND constraints have no such gaps: same crash
        // heals fine there.
        let mut o = DynamicOverlay::bootstrap(Constraint::KDiamond, 10, 3).unwrap();
        assert!(o.crash_many(&[4]).is_ok());
        assert_eq!(o.len(), 9);
    }

    #[test]
    fn crash_many_rejects_unknown_members() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KTree, 12, 3).unwrap();
        assert!(matches!(
            o.crash_many(&[2, 77]),
            Err(LhgError::InvalidParams { .. })
        ));
        assert_eq!(o.len(), 12, "membership unchanged on failure");
    }

    #[test]
    fn churn_per_member_views_partition_the_diff() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KDiamond, 10, 3).unwrap();
        let (id, churn) = o.join().unwrap();
        let dials: Vec<MemberId> = churn.added_for(id).collect();
        assert!(!dials.is_empty(), "newcomer has links to establish");
        for peer in dials {
            assert!(
                churn.added.contains(&(id.min(peer), id.max(peer)))
                    || churn.added.contains(&(peer.min(id), peer.max(id)))
            );
        }
        // A member not in any removed pair sees nothing to drop.
        let untouched: Vec<MemberId> = churn.removed_for(9999).collect();
        assert!(untouched.is_empty());
    }

    #[test]
    fn neighbors_of_matches_link_set() {
        let o = DynamicOverlay::bootstrap(Constraint::KTree, 12, 3).unwrap();
        let links = o.links();
        for &m in o.members() {
            let nbrs = o.neighbors_of(m).unwrap();
            assert!(nbrs.len() >= o.k(), "degree at least k");
            for p in nbrs {
                assert!(links.contains(&(m.min(p), m.max(p))));
            }
        }
        assert!(o.neighbors_of(555).is_none());
    }

    #[test]
    fn admit_restores_a_crashed_member_at_its_canonical_position() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KDiamond, 12, 3).unwrap();
        let _ = o.crash_many(&[5]).unwrap();
        assert!(!o.contains(5));
        let churn = o.admit(5).unwrap();
        assert!(o.contains(5));
        assert_eq!(o.len(), 12);
        assert_eq!(
            o.members(),
            (0..12).collect::<Vec<MemberId>>().as_slice(),
            "rejoin lands back at the sorted position"
        );
        assert!(churn.added.iter().any(|&(a, b)| a == 5 || b == 5));
        assert_eq!(vertex_connectivity(o.graph()), 3);
    }

    #[test]
    fn admit_converges_across_replicas_regardless_of_history() {
        // Two replicas that agree on membership must agree on the overlay
        // after admitting the same member, even with different histories.
        let mut a = DynamicOverlay::bootstrap(Constraint::KTree, 13, 3).unwrap();
        let _ = a.crash_many(&[4, 9]).unwrap();
        let mut b = DynamicOverlay::bootstrap(Constraint::KTree, 13, 3).unwrap();
        let _ = b.crash_many(&[9]).unwrap();
        let _ = b.crash_many(&[4]).unwrap();
        assert_eq!(a.members(), b.members());
        let _ = a.admit(9).unwrap();
        let _ = b.admit(9).unwrap();
        assert_eq!(a.members(), b.members());
        assert_eq!(a.links(), b.links());
    }

    #[test]
    fn admit_rejects_present_member_and_keeps_state() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KTree, 10, 3).unwrap();
        let links = o.links();
        assert!(matches!(o.admit(7), Err(LhgError::InvalidParams { .. })));
        assert_eq!(o.len(), 10);
        assert_eq!(o.links(), links);
    }

    #[test]
    fn admit_bumps_next_id_past_the_admitted_member() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KDiamond, 10, 3).unwrap();
        o.admit(50).unwrap();
        let (id, _) = o.join().unwrap();
        assert_eq!(id, 51, "fresh ids never collide with admitted ones");
    }

    #[test]
    fn from_parts_matches_a_served_snapshot() {
        let mut server = DynamicOverlay::bootstrap(Constraint::KDiamond, 12, 3).unwrap();
        let _ = server.crash_many(&[2, 7]).unwrap();
        let replica =
            DynamicOverlay::from_parts(server.constraint(), server.k(), server.members().to_vec())
                .unwrap();
        assert_eq!(replica.members(), server.members());
        assert_eq!(replica.links(), server.links());
        assert_eq!(replica.constraint(), Constraint::KDiamond);
    }

    #[test]
    fn from_parts_rejects_duplicates() {
        assert!(matches!(
            DynamicOverlay::from_parts(Constraint::KTree, 3, vec![0, 1, 2, 3, 4, 5, 5, 6]),
            Err(LhgError::InvalidParams { .. })
        ));
    }

    #[test]
    fn long_churn_sequence_stays_k_connected() {
        let mut o = DynamicOverlay::bootstrap(Constraint::KDiamond, 10, 3).unwrap();
        for step in 0..12 {
            if step % 3 == 2 {
                let victim = o.members()[step % o.len()];
                let _ = o.leave(victim).unwrap();
            } else {
                let _ = o.join().unwrap();
            }
            assert_eq!(vertex_connectivity(o.graph()), 3, "step {step}");
        }
        assert_eq!(o.len(), 10 + 8 - 4);
    }
}
