//! Diameter computation cost (exact all-sources BFS vs the double-sweep
//! lower bound) — the P4 measurement that experiment E7 sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lhg_baselines::harary::harary_graph;
use lhg_core::kdiamond::build_kdiamond;
use lhg_graph::paths::{diameter, diameter_double_sweep};
use lhg_graph::traversal::bfs_distances;
use lhg_graph::{CsrGraph, NodeId};

fn bench_diameter(c: &mut Criterion) {
    let k = 4;
    let mut group = c.benchmark_group("diameter");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let lhg = build_kdiamond(n, k).unwrap().into_graph();
        let harary = harary_graph(n, k);
        group.bench_with_input(BenchmarkId::new("exact_lhg", n), &lhg, |b, g| {
            b.iter(|| diameter(black_box(g)));
        });
        group.bench_with_input(BenchmarkId::new("exact_harary", n), &harary, |b, g| {
            b.iter(|| diameter(black_box(g)));
        });
        group.bench_with_input(BenchmarkId::new("double_sweep_lhg", n), &lhg, |b, g| {
            b.iter(|| diameter_double_sweep(black_box(g), NodeId(0)));
        });
        let csr = CsrGraph::from_graph(&lhg);
        group.bench_with_input(BenchmarkId::new("single_bfs_csr", n), &csr, |b, g| {
            b.iter(|| bfs_distances(black_box(g), NodeId(0)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diameter);
criterion_main!(benches);
