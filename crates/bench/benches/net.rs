//! Discrete-event substrate throughput: events per second for full overlay
//! broadcasts, plus the wire-format codec.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lhg_core::kdiamond::build_kdiamond;
use lhg_graph::NodeId;
use lhg_net::broadcast::run_overlay_broadcast;
use lhg_net::message::Message;
use lhg_net::sim::LinkModel;

fn bench_net(c: &mut Criterion) {
    let k = 4;
    let link = LinkModel {
        base_latency_us: 1_000,
        jitter_us: 200,
    };
    let mut group = c.benchmark_group("net");
    for n in [64usize, 256, 1024] {
        group.throughput(Throughput::Elements(n as u64));
        let overlay = build_kdiamond(n, k).unwrap().into_graph();
        group.bench_with_input(
            BenchmarkId::new("overlay_broadcast", n),
            &overlay,
            |b, g| {
                b.iter(|| {
                    run_overlay_broadcast(
                        black_box(g),
                        NodeId(0),
                        Bytes::from_static(b"bench"),
                        link,
                        &[],
                        3,
                    )
                });
            },
        );
    }

    let msg = Message::new(7, 3, Bytes::from(vec![0u8; 256]));
    let encoded = msg.encode();
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("message_encode_256B", |b| {
        b.iter(|| black_box(&msg).encode());
    });
    group.bench_function("message_decode_256B", |b| {
        b.iter(|| Message::decode(black_box(encoded.clone())).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
