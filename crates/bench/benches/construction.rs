//! Construction throughput: how fast each topology builder scales with n.
//!
//! Supports the "usable at overlay scale" claim: K-TREE/K-DIAMOND builds
//! are near-linear in n, so recomputing a topology on membership change is
//! cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lhg_baselines::harary::harary_graph;
use lhg_baselines::random::random_regular;
use lhg_core::jd::build_jd;
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;

fn bench_builders(c: &mut Criterion) {
    let k = 4;
    let mut group = c.benchmark_group("construction");
    for n in [64usize, 256, 1024, 4096] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("ktree", n), &n, |b, &n| {
            b.iter(|| build_ktree(black_box(n), k).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("kdiamond", n), &n, |b, &n| {
            b.iter(|| build_kdiamond(black_box(n), k).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("harary", n), &n, |b, &n| {
            b.iter(|| harary_graph(black_box(n), k));
        });
        group.bench_with_input(BenchmarkId::new("random_regular", n), &n, |b, &n| {
            b.iter(|| random_regular(black_box(n), k, 7, 100).unwrap());
        });
    }
    // JD only at its constructible points (regular points are always in).
    for n in [64usize, 256, 1024] {
        let n = n - (n - 2 * k) % (2 * (k - 1)); // snap to a regular point
        group.bench_with_input(BenchmarkId::new("jd", n), &n, |b, &n| {
            b.iter(|| build_jd(black_box(n), k).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builders);
criterion_main!(benches);
