//! Cost of the analysis machinery: Menger-witness extraction, betweenness,
//! spectral estimation and overlay churn maintenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lhg_core::kdiamond::build_kdiamond;
use lhg_core::overlay::DynamicOverlay;
use lhg_core::witness::menger_witness;
use lhg_core::Constraint;
use lhg_graph::betweenness::betweenness;
use lhg_graph::spectral::slem_estimate;
use lhg_graph::NodeId;

fn bench_analysis(c: &mut Criterion) {
    let k = 4;
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        let overlay = build_kdiamond(n, k).unwrap();
        group.bench_with_input(BenchmarkId::new("menger_witness", n), &overlay, |b, o| {
            b.iter(|| menger_witness(black_box(o), NodeId(0), NodeId(o.n() - 1)));
        });
        group.bench_with_input(
            BenchmarkId::new("betweenness", n),
            overlay.graph(),
            |b, g| {
                b.iter(|| betweenness(black_box(g)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("spectral_slem_x200", n),
            overlay.graph(),
            |b, g| {
                b.iter(|| slem_estimate(black_box(g), 200));
            },
        );
    }
    for n in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("overlay_join_leave", n), &n, |b, &n| {
            b.iter_batched(
                || DynamicOverlay::bootstrap(Constraint::KDiamond, n, k).unwrap(),
                |mut o| {
                    let (id, _) = o.join().unwrap();
                    let _ = o.leave(id).unwrap();
                    o
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
