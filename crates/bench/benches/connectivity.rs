//! Cost of the exact connectivity validators (flow-based P1/P2 checks).
//!
//! These dominate `validate()`; the bench shows the early-exit `≥ k`
//! variants are far cheaper than computing κ exactly, which is why the
//! validators use them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lhg_core::ktree::build_ktree;
use lhg_graph::connectivity::{
    edge_connectivity, is_k_edge_connected, is_k_vertex_connected, vertex_connectivity,
};

fn bench_connectivity(c: &mut Criterion) {
    let k = 4;
    let mut group = c.benchmark_group("connectivity");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let g = build_ktree(n, k).unwrap().into_graph();
        group.bench_with_input(BenchmarkId::new("is_k_vertex_connected", n), &g, |b, g| {
            b.iter(|| is_k_vertex_connected(black_box(g), k));
        });
        group.bench_with_input(BenchmarkId::new("is_k_edge_connected", n), &g, |b, g| {
            b.iter(|| is_k_edge_connected(black_box(g), k));
        });
        group.bench_with_input(BenchmarkId::new("vertex_connectivity", n), &g, |b, g| {
            b.iter(|| vertex_connectivity(black_box(g)));
        });
        group.bench_with_input(BenchmarkId::new("edge_connectivity", n), &g, |b, g| {
            b.iter(|| edge_connectivity(black_box(g)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_connectivity);
criterion_main!(benches);
