//! Observability overhead: the flight-recorder append hot path, and the
//! threaded broadcast engine with tracing off vs on. The paired broadcast
//! benchmarks are the "within 10%" check from the observability acceptance
//! criteria — compare `threaded_broadcast/plain` against
//! `threaded_broadcast/traced` in the printed output.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lhg_core::kdiamond::build_kdiamond;
use lhg_graph::NodeId;
use lhg_net::metrics::MetricsRegistry;
use lhg_net::threaded::{run_threaded_broadcast_traced, run_threaded_broadcast_with_metrics};
use lhg_trace::{EventKind, FlightRecorder, PathRecord, TraceCollector};

fn bench_trace(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");

    // The append hot path: one fetch_add plus one uncontended slot write.
    let recorder = FlightRecorder::with_capacity(0, 4096, Instant::now());
    group.throughput(Throughput::Elements(1));
    group.bench_function("recorder_append", |b| {
        b.iter(|| {
            recorder.record(black_box(EventKind::FrameTx { peer: 7, bytes: 64 }));
        });
    });

    // Path-record collection: one short mutex push per delivery.
    let collector = TraceCollector::new();
    group.bench_function("collector_record", |b| {
        b.iter(|| {
            collector.record(black_box(PathRecord {
                trace_id: 1,
                node: 3,
                parent: Some(2),
                hops: 4,
                at_us: 99,
            }));
        });
    });

    // Whole-broadcast overhead over in-process channels: every frame of the
    // traced run carries the 9-byte trace extension and every delivery
    // records a path record. Throughput should stay within ~10% of plain.
    let k = 3;
    let idle = Duration::from_millis(200);
    for n in [16usize, 48] {
        let overlay = build_kdiamond(n, k).unwrap().into_graph();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("threaded_broadcast/plain", n),
            &overlay,
            |b, g| {
                let metrics = MetricsRegistry::new();
                b.iter(|| {
                    run_threaded_broadcast_with_metrics(
                        black_box(g),
                        NodeId(0),
                        Bytes::from_static(b"bench"),
                        &[],
                        idle,
                        &metrics,
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("threaded_broadcast/traced", n),
            &overlay,
            |b, g| {
                let metrics = MetricsRegistry::new();
                let tracer = Arc::new(TraceCollector::new());
                b.iter(|| {
                    run_threaded_broadcast_traced(
                        black_box(g),
                        NodeId(0),
                        Bytes::from_static(b"bench"),
                        &[],
                        idle,
                        &metrics,
                        42,
                        &tracer,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
