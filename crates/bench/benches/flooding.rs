//! Flooding simulator throughput: broadcasts per second over LHG and
//! baseline topologies, with and without failure injection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lhg_baselines::harary::harary_graph;
use lhg_core::ktree::build_ktree;
use lhg_flood::engine::{run_broadcast, Protocol};
use lhg_flood::failure::{random_node_failures, FailurePlan};
use lhg_graph::{CsrGraph, NodeId};

fn bench_flooding(c: &mut Criterion) {
    let k = 4;
    let mut group = c.benchmark_group("flooding");
    for n in [128usize, 512, 2048] {
        group.throughput(Throughput::Elements(n as u64));
        let lhg = build_ktree(n, k).unwrap().into_graph();
        let lhg_csr = CsrGraph::from_graph(&lhg);
        let harary_csr = CsrGraph::from_graph(&harary_graph(n, k));
        let none = FailurePlan::none();
        let failures = random_node_failures(&lhg, k - 1, NodeId(0), 7);

        group.bench_with_input(BenchmarkId::new("flood_lhg", n), &lhg_csr, |b, t| {
            b.iter(|| run_broadcast(black_box(t), NodeId(0), &none, Protocol::Flood, 0));
        });
        group.bench_with_input(
            BenchmarkId::new("flood_lhg_failures", n),
            &lhg_csr,
            |b, t| {
                b.iter(|| run_broadcast(black_box(t), NodeId(0), &failures, Protocol::Flood, 0));
            },
        );
        group.bench_with_input(BenchmarkId::new("flood_harary", n), &harary_csr, |b, t| {
            b.iter(|| run_broadcast(black_box(t), NodeId(0), &none, Protocol::Flood, 0));
        });
        group.bench_with_input(BenchmarkId::new("gossip_lhg", n), &lhg_csr, |b, t| {
            b.iter(|| {
                run_broadcast(
                    black_box(t),
                    NodeId(0),
                    &none,
                    Protocol::GossipPush {
                        fanout: 2,
                        rounds_per_node: 4,
                    },
                    1,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flooding);
criterion_main!(benches);
