//! The experiments binary: regenerates every table and figure in
//! EXPERIMENTS.md.
//!
//! Usage:
//!   cargo run -p lhg-bench --release --bin experiments -- all
//!   cargo run -p lhg-bench --release --bin experiments -- e7 e10
//!   cargo run -p lhg-bench --release --bin experiments -- list

use std::process::ExitCode;

fn main() -> ExitCode {
    let experiments = lhg_bench::all_experiments();
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.is_empty() || args.iter().any(|a| a == "list") {
        println!("available experiments (pass ids, or `all`):");
        for (id, desc, _) in &experiments {
            println!("  {id:<5} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    let run_all = args.iter().any(|a| a == "all");
    let mut matched = false;
    for (id, _, runner) in &experiments {
        if run_all || args.iter().any(|a| a == id) {
            matched = true;
            println!("{}", runner());
            println!("{}", "-".repeat(78));
        }
    }
    if !matched {
        eprintln!("unknown experiment id(s) {args:?}; try `list`");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
