//! Regenerates the recorded broadcast baseline:
//! `cargo run --release -p lhg-bench --bin baseline > BENCH_<pr>.json`
//!
//! Measures plain flooding vs Bracha Byzantine broadcast at n ∈ {64, 256}
//! (see `lhg_bench::baseline` for the workload definition).

fn main() {
    print!("{}", lhg_bench::baseline::baseline_json(&[64, 256]));
}
