//! Regenerates the recorded broadcast baseline:
//! `cargo run --release -p lhg-bench --bin baseline > BENCH_<pr>.json`
//!
//! Measures plain flooding at n ∈ {64, 256, 1024} and Bracha Byzantine
//! broadcast at n ∈ {64, 256} (Bracha message cost grows ~O(n²) per
//! broadcast, so n = 1024 is flood-only). Rows now include bytes on the
//! wire; `lhg bench --compare` gates on these recordings.

fn main() {
    print!(
        "{}",
        lhg_bench::baseline::baseline_json_for(&[64, 256, 1024], &[64, 256])
    );
}
