//! Experiments E9–E11: flooding latency, reliability and message cost
//! across topologies — the application-level comparison the LHG paper
//! motivates.

use std::fmt::Write as _;

use lhg_baselines::harary::harary_graph;
use lhg_baselines::random::random_regular;
use lhg_baselines::structured::balanced_tree;
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_core::regularity::reg_kdiamond;
use lhg_flood::engine::Protocol;
use lhg_flood::experiment::{run_trials, FailureMode, TrialStats};
use lhg_graph::Graph;

fn topologies(n: usize, k: usize) -> Vec<(&'static str, Graph)> {
    vec![
        ("K-TREE", build_ktree(n, k).expect("builds").into_graph()),
        (
            "K-DIAMOND",
            build_kdiamond(n, k).expect("builds").into_graph(),
        ),
        ("Harary", harary_graph(n, k)),
        ("tree", balanced_tree(n, k - 1)),
        ("rand-reg", random_regular(n, k, 11, 300).expect("pairing")),
    ]
}

fn stats(g: &Graph, protocol: Protocol, fails: usize, trials: usize) -> TrialStats {
    let mode = if fails == 0 {
        FailureMode::None
    } else {
        FailureMode::RandomNodes { count: fails }
    };
    run_trials(g, protocol, mode, trials, 1_234)
}

/// E9 — flooding latency (rounds to full coverage) vs n, with 0 and k−1
/// random crash failures.
///
/// # Panics
///
/// Panics if a topology fails to build.
#[must_use]
pub fn e9_latency_vs_n() -> String {
    let k = 4;
    let trials = 60;
    let mut out = format!(
        "E9 — flooding latency in rounds (k={k}, mean over {trials} trials; f = crashed nodes)\n\
         {:>6} | {:>15} {:>15} {:>15} {:>15} {:>15}\n",
        "n", "K-TREE", "K-DIAMOND", "Harary", "tree", "rand-reg"
    );
    for n in [32usize, 64, 128, 256] {
        for fails in [0usize, k - 1] {
            let _ = write!(out, "{n:>4}/f{fails} |");
            for (_, g) in topologies(n, k) {
                let s = stats(&g, Protocol::Flood, fails, trials);
                let _ = write!(out, " {:>8.1} rounds", s.mean_rounds);
            }
            out.push('\n');
        }
    }
    out.push_str(
        "shape: Harary rounds grow linearly with n; LHG and random-regular rounds stay\n\
         logarithmic; failures barely move LHG latency.\n",
    );
    out
}

/// E10 — delivery reliability vs number of random crash failures.
///
/// # Panics
///
/// Panics if a topology fails to build.
#[must_use]
pub fn e10_reliability_vs_failures() -> String {
    let (n, k) = (96, 4);
    let trials = 150;
    let mut out = format!(
        "E10 — reliability vs crash count (n={n}, k={k}, {trials} trials; gossip fanout 2×4 rounds)\n\
         {:>9} | {:>8} {:>10} {:>8} {:>6} {:>9} {:>12}\n",
        "failures", "K-TREE", "K-DIAMOND", "Harary", "tree", "rand-reg", "LHG+gossip"
    );
    let gossip = Protocol::GossipPush {
        fanout: 2,
        rounds_per_node: 4,
    };
    let ktree = build_ktree(n, k).expect("builds").into_graph();
    for fails in [0usize, 1, k - 1, k, 2 * k] {
        let _ = write!(out, "{fails:>9} |");
        for (_, g) in topologies(n, k) {
            let s = stats(&g, Protocol::Flood, fails, trials);
            let _ = write!(out, " {:>8.3}", s.reliability);
        }
        let s = stats(&ktree, gossip, fails, trials);
        let _ = writeln!(out, "    {:>8.3}", s.reliability);
    }
    out.push_str(
        "shape: deterministic flooding on k-connected graphs is perfect through k-1\n\
         failures (LHG guarantee); trees die at one failure; gossip is probabilistic\n\
         even failure-free.\n",
    );
    out
}

/// E11 — messages per broadcast vs n: the regularity saving.
///
/// # Panics
///
/// Panics if a topology fails to build.
#[must_use]
pub fn e11_message_cost() -> String {
    let k = 3;
    let trials = 20;
    let mut out = format!(
        "E11 — messages per failure-free broadcast (k={k}; flood cost = 2m−n+1)\n\
         {:>6} {:>9} {:>11} {:>9} {:>16}\n",
        "n", "K-TREE", "K-DIAMOND", "Harary", "K-DIAMOND regular?"
    );
    for n in [20usize, 21, 22, 23, 40, 41, 80, 81] {
        let kt = stats(
            &build_ktree(n, k).expect("builds").into_graph(),
            Protocol::Flood,
            0,
            trials,
        );
        let kd = stats(
            &build_kdiamond(n, k).expect("builds").into_graph(),
            Protocol::Flood,
            0,
            trials,
        );
        let h = stats(&harary_graph(n, k), Protocol::Flood, 0, trials);
        let _ = writeln!(
            out,
            "{n:>6} {:>9.0} {:>11.0} {:>9.0} {:>16}",
            kt.mean_messages,
            kd.mean_messages,
            h.mean_messages,
            if reg_kdiamond(n, k) {
                "yes (minimal)"
            } else {
                "no"
            },
        );
    }
    out.push_str(
        "shape: at regular points K-DIAMOND matches Harary's minimal message count;\n\
         between them the premium is the added-leaf edges; K-TREE pays more often.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_lhgs_are_perfect_through_k_minus_1() {
        let out = e10_reliability_vs_failures();
        // Rows for 0, 1, and k-1=3 failures must show 1.000 for both LHGs.
        for prefix in ["        0 |", "        1 |", "        3 |"] {
            let line = out
                .lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| {
                    panic!("missing row {prefix:?} in\n{out}");
                });
            let cols: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cols[2], "1.000", "K-TREE: {line}");
            assert_eq!(cols[3], "1.000", "K-DIAMOND: {line}");
        }
        // The tree must already fail at one crash.
        let one = out.lines().find(|l| l.starts_with("        1 |")).unwrap();
        let tree_rel: f64 = one.split_whitespace().nth(5).unwrap().parse().unwrap();
        assert!(tree_rel < 1.0, "{one}");
    }

    #[test]
    fn e11_regular_points_match_harary() {
        let out = e11_message_cost();
        for n in [20, 22, 40, 80] {
            let line = out
                .lines()
                .find(|l| l.split_whitespace().next() == Some(&n.to_string()))
                .unwrap();
            let cols: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(
                cols[2], cols[3],
                "K-DIAMOND vs Harary at regular n={n}: {line}"
            );
        }
    }

    #[test]
    fn e9_is_renderable() {
        let out = e9_latency_vs_n();
        assert!(out.contains("rounds"));
        assert!(out.lines().count() >= 10);
    }
}
