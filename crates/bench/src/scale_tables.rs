//! Experiment E24: scalability — building and checking overlays at the
//! sizes peer-to-peer deployments actually have.

use std::fmt::Write as _;
use std::time::Instant;

use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_flood::engine::{run_broadcast, Protocol};
use lhg_flood::failure::FailurePlan;
use lhg_graph::degree::degree_stats;
use lhg_graph::paths::diameter_double_sweep;
use lhg_graph::{CsrGraph, NodeId};

/// E24 — large-n scalability: construction wall time, structure sanity and
/// a full flood at n up to 10^5. Exact κ/diameter checks are O(n·m) and are
/// covered by the small-n experiments; here the double-sweep lower bound
/// and degree stats keep the check linear.
///
/// # Panics
///
/// Panics if a build fails or a structural check does not hold (bug).
#[must_use]
pub fn e24_scale() -> String {
    let k = 4;
    let mut out = format!(
        "E24 — scalability (k={k}; diameter via double-sweep lower bound)\n\
         {:>8} {:<11} {:>11} {:>9} {:>9} {:>10} {:>12} {:>12}\n",
        "n", "builder", "build (ms)", "edges", "min deg", "diameter", "flood rnds", "flood msgs"
    );
    for n in [1_000usize, 10_000, 100_000] {
        for (name, graph) in [
            ("K-TREE", build_ktree(n, k).expect("builds").into_graph()),
            (
                "K-DIAMOND",
                build_kdiamond(n, k).expect("builds").into_graph(),
            ),
        ] {
            // Re-time the build itself.
            let start = Instant::now();
            let rebuilt = match name {
                "K-TREE" => build_ktree(n, k).expect("builds").into_graph(),
                _ => build_kdiamond(n, k).expect("builds").into_graph(),
            };
            let build_ms = start.elapsed().as_secs_f64() * 1_000.0;
            assert_eq!(
                rebuilt.fingerprint(),
                graph.fingerprint(),
                "determinism at n={n}"
            );

            let stats = degree_stats(&graph);
            assert_eq!(stats.min, k, "{name} n={n}: min degree");
            let d = diameter_double_sweep(&graph, NodeId(0)).expect("connected");
            assert!(
                d <= 40,
                "{name} n={n}: diameter estimate {d} not logarithmic"
            );

            let topology = CsrGraph::from_graph(&graph);
            let flood = run_broadcast(
                &topology,
                NodeId(0),
                &FailurePlan::none(),
                Protocol::Flood,
                0,
            );
            assert!(flood.full_coverage(), "{name} n={n}: flood incomplete");

            let _ = writeln!(
                out,
                "{n:>8} {name:<11} {build_ms:>11.1} {:>9} {:>9} {:>10} {:>12} {:>12}",
                graph.edge_count(),
                stats.min,
                d,
                flood.last_informed_round(),
                flood.messages_sent,
            );
        }
    }
    out.push_str(
        "shape: builds are linear (~tens of ms at n=10^5); diameter and flooding\n\
         rounds grow by ~2 per 10× nodes (logarithmic); message cost stays 2m−n+1.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e24_scales_to_ten_thousand() {
        // The full experiment runs 10^5 in release; the test covers 10^4
        // territory through the same code path by just invoking it — the
        // asserts inside are the real checks.
        let out = e24_scale();
        assert!(out.contains("100000"), "{out}");
        let rounds: Vec<u32> = out
            .lines()
            .filter(|l| l.contains("K-DIAMOND"))
            .filter_map(|l| l.split_whitespace().nth(6).and_then(|c| c.parse().ok()))
            .collect();
        assert_eq!(rounds.len(), 3);
        assert!(
            rounds[2] <= rounds[0] + 10,
            "logarithmic growth: {rounds:?}"
        );
    }
}
