//! Experiments E7 and E8: the headline diameter-vs-size figure and the
//! edge-cost table.

use std::fmt::Write as _;

use lhg_baselines::harary::harary_graph;
use lhg_baselines::structured::{hypercube, hypercube_params};
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_core::regularity::{reg_kdiamond, reg_ktree};
use lhg_graph::degree::harary_edge_lower_bound;
use lhg_graph::paths::diameter;

/// E7 — diameter vs n at fixed k: classic Harary grows linearly, the LHG
/// constructions logarithmically (the JD paper's headline figure).
///
/// # Panics
///
/// Panics if an LHG fails to build (bug).
#[must_use]
pub fn e7_diameter_vs_n() -> String {
    let k = 4;
    let mut out = format!(
        "E7 — diameter vs n (k={k})\n\
         {:>6} {:>10} {:>10} {:>12} {:>11}\n",
        "n", "Harary", "K-TREE", "K-DIAMOND", "hypercube"
    );
    for n in [16usize, 32, 64, 128, 256, 512, 1024] {
        let d_h = diameter(&harary_graph(n, k)).expect("connected");
        let d_kt = diameter(build_ktree(n, k).expect("builds").graph()).expect("connected");
        let d_kd = diameter(build_kdiamond(n, k).expect("builds").graph()).expect("connected");
        let d_q = hypercube_params(n, k)
            .map(|d| diameter(&hypercube(d)).expect("connected").to_string())
            .unwrap_or_else(|| "—".into());
        let _ = writeln!(out, "{n:>6} {d_h:>10} {d_kt:>10} {d_kd:>12} {d_q:>11}");
    }
    out.push_str(
        "shape: Harary ~ n/(k+1) (linear); K-TREE/K-DIAMOND ~ 2·log_{k-1} n\n\
         (logarithmic); hypercube = log2 n but exists only at n = 2^k.\n",
    );
    out
}

/// E8 — edges vs the ⌈kn/2⌉ lower bound: regular LHG points meet it
/// exactly; irregular points pay a bounded premium.
///
/// # Panics
///
/// Panics if an LHG fails to build (bug).
#[must_use]
pub fn e8_edge_cost() -> String {
    let k = 3;
    let mut out = format!(
        "E8 — edge cost vs ⌈kn/2⌉ (k={k})\n\
         {:>5} {:>7} {:>8} {:>11} {:>10} {:>13} {:>12}\n",
        "n", "bound", "Harary", "K-TREE", "(regular)", "K-DIAMOND", "(regular)"
    );
    for n in 6..=30 {
        let bound = harary_edge_lower_bound(n, k);
        let h = harary_graph(n, k).edge_count();
        let kt = build_ktree(n, k).expect("builds").graph().edge_count();
        let kd = build_kdiamond(n, k).expect("builds").graph().edge_count();
        let _ = writeln!(
            out,
            "{n:>5} {bound:>7} {h:>8} {kt:>11} {:>10} {kd:>13} {:>12}",
            if reg_ktree(n, k) { "yes" } else { "no" },
            if reg_kdiamond(n, k) { "yes" } else { "no" },
        );
    }
    out.push_str(
        "reading: K-DIAMOND hits the bound at every other n (Theorem 6), K-TREE at\n\
         every fourth (Theorem 3); between regular points the premium is ≤ 2k−3\n\
         added leaves × (k−1) extra edges each.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_lhg_diameters_stay_small() {
        let out = e7_diameter_vs_n();
        // At n=1024 Harary's diameter has 3 digits, LHGs' at most 2.
        let line = out
            .lines()
            .find(|l| l.trim_start().starts_with("1024"))
            .unwrap();
        let cols: Vec<&str> = line.split_whitespace().collect();
        let harary: u32 = cols[1].parse().unwrap();
        let ktree: u32 = cols[2].parse().unwrap();
        let kdiamond: u32 = cols[3].parse().unwrap();
        assert!(harary > 100, "Harary diameter {harary} should be ~n/5");
        assert!(ktree < 20, "K-TREE diameter {ktree} should be logarithmic");
        assert!(kdiamond < 20, "{kdiamond}");
    }

    #[test]
    fn e8_regular_points_match_bound() {
        let out = e8_edge_cost();
        // n=8 row: K-DIAMOND regular, 12 edges = bound.
        let line = out
            .lines()
            .find(|l| l.trim_start().starts_with("8 "))
            .unwrap();
        assert!(line.contains("12"), "{line}");
        assert!(out.contains("yes"));
        assert!(out.contains("no"));
    }
}
