//! First recorded benchmark baseline (`BENCH_<pr>.json`): broadcast
//! throughput and delivery latency, plain flooding vs Bracha Byzantine
//! broadcast, over K-DIAMOND overlays on the discrete-event simulator.
//!
//! ROADMAP item 5 wants a persistent perf trajectory; this module is its
//! starting point. Both modes run the *same* workload shape — `BROADCASTS`
//! staggered broadcasts from rotating origins over one simulation run —
//! so the cost of Bracha's echo/ready quorum rounds shows up directly as
//! a message multiplier and a latency multiplier against the plain-flood
//! rows. Links are zero-jitter, so per-delivery latencies (virtual time)
//! are deterministic; throughput (messages the engine pushes per
//! wall-clock second) is the one machine-dependent number, which is the
//! point of recording a baseline.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use lhg_byzantine::{run_sim_byzantine_with_metrics, ScheduledByzBroadcast};
use lhg_core::kdiamond::build_kdiamond;
use lhg_graph::NodeId;
use lhg_net::message::Message;
use lhg_net::metrics::MetricsRegistry;
use lhg_net::seen::SeenSet;
use lhg_net::sim::{Context, LinkModel, Process, Simulation, Time};

/// Connectivity parameter for every baseline row.
pub const K: usize = 3;
/// Broadcasts per run, staggered [`STAGGER_US`] apart.
pub const BROADCASTS: usize = 32;
/// Gap between consecutive broadcast originations, µs.
pub const STAGGER_US: Time = 10_000;
/// Deterministic zero-jitter link: 1 ms per hop.
pub const LINK: LinkModel = LinkModel {
    base_latency_us: 1_000,
    jitter_us: 0,
};

/// One measured row of the baseline table.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// `"flood"` or `"bracha"`.
    pub mode: &'static str,
    /// Overlay size.
    pub n: usize,
    /// Broadcasts originated.
    pub broadcasts: usize,
    /// Application-level deliveries observed (expect `n × broadcasts`).
    pub deliveries: usize,
    /// Messages the engine put on links.
    pub messages: u64,
    /// Bytes on the wire across all links (encoded message bodies, from
    /// the engine's `sim.bytes_sent` counter).
    pub bytes: u64,
    /// Wall-clock run time, milliseconds.
    pub wall_ms: f64,
    /// Engine throughput: `messages / wall seconds`.
    pub throughput_msgs_per_sec: f64,
    /// Median origination→delivery latency, µs of virtual time.
    pub p50_latency_us: u64,
    /// 99th-percentile origination→delivery latency, µs of virtual time.
    pub p99_latency_us: u64,
}

/// Plain flooding, but originating each scheduled broadcast from a timer
/// instead of at time 0 — the multi-broadcast counterpart of
/// [`lhg_net::broadcast::FloodProcess`], so both baseline modes run one
/// simulation over an identical staggered workload.
struct StaggeredFlood {
    /// `(broadcast_id, origination time)` this node originates.
    schedule: Vec<(u64, Time)>,
    seen: SeenSet,
}

impl Process for StaggeredFlood {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for (i, &(_, at)) in self.schedule.iter().enumerate() {
            ctx.set_timer(at, i as u64);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        let (id, _) = self.schedule[token as usize];
        self.seen.insert(id);
        let msg = Message::new(id, ctx.id().index() as u32, payload());
        ctx.deliver(msg.clone());
        for &w in &ctx.neighbors().to_vec() {
            ctx.send(w, msg.clone());
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Message, ctx: &mut Context<'_>) {
        if !self.seen.insert(msg.broadcast_id) {
            return;
        }
        ctx.deliver(msg.clone());
        let fwd = msg.forwarded();
        for &w in &ctx.neighbors().to_vec() {
            if w != from {
                ctx.send(w, fwd.clone());
            }
        }
    }
}

fn payload() -> Bytes {
    Bytes::from_static(b"bench baseline payload")
}

/// The staggered workload: broadcast `i` (id/nonce `i + 1`) originates at
/// node `i mod n` at time `i × STAGGER_US`.
fn schedule(n: usize) -> Vec<(NodeId, u64, Time)> {
    (0..BROADCASTS)
        .map(|i| (NodeId(i % n), i as u64 + 1, i as Time * STAGGER_US))
        .collect()
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

#[allow(clippy::too_many_arguments)]
fn finish_row(
    mode: &'static str,
    n: usize,
    deliveries: usize,
    messages: u64,
    bytes: u64,
    mut latencies: Vec<u64>,
    wall: std::time::Duration,
) -> BaselineRow {
    latencies.sort_unstable();
    let wall_secs = wall.as_secs_f64().max(1e-9);
    BaselineRow {
        mode,
        n,
        broadcasts: BROADCASTS,
        deliveries,
        messages,
        bytes,
        wall_ms: wall.as_secs_f64() * 1e3,
        #[allow(clippy::cast_precision_loss)]
        throughput_msgs_per_sec: messages as f64 / wall_secs,
        p50_latency_us: percentile(&latencies, 50),
        p99_latency_us: percentile(&latencies, 99),
    }
}

/// Runs the plain-flooding side of the baseline at size `n`.
///
/// # Panics
///
/// Panics if the overlay fails to build or a delivery goes missing.
#[must_use]
pub fn run_flood_baseline(n: usize) -> BaselineRow {
    let overlay = build_kdiamond(n, K).expect("builds");
    let sched = schedule(n);
    let origin_time: BTreeMap<u64, Time> = sched.iter().map(|&(_, id, at)| (id, at)).collect();
    let started = Instant::now();
    let metrics = Arc::new(MetricsRegistry::new());
    let mut sim = Simulation::new(overlay.graph(), LINK, 42);
    sim.with_metrics(Arc::clone(&metrics));
    let processes: Vec<Box<dyn Process>> = (0..n)
        .map(|v| -> Box<dyn Process> {
            Box::new(StaggeredFlood {
                schedule: sched
                    .iter()
                    .filter(|&&(o, _, _)| o == NodeId(v))
                    .map(|&(_, id, at)| (id, at))
                    .collect(),
                seen: SeenSet::default(),
            })
        })
        .collect();
    let report = sim.run(processes, Time::MAX);
    let wall = started.elapsed();
    let latencies: Vec<u64> = report
        .deliveries
        .iter()
        .map(|d| d.time - origin_time[&d.broadcast_id])
        .collect();
    assert_eq!(report.deliveries.len(), n * BROADCASTS, "flood n={n}");
    finish_row(
        "flood",
        n,
        report.deliveries.len(),
        report.messages_sent,
        metrics.counter("sim.bytes_sent").get(),
        latencies,
        wall,
    )
}

/// Runs the Bracha side of the baseline at size `n`: same workload, no
/// traitors, quorums sized for the full f = ⌊(k−1)/2⌋ budget.
///
/// # Panics
///
/// Panics if the overlay fails to build or a delivery goes missing.
#[must_use]
pub fn run_bracha_baseline(n: usize) -> BaselineRow {
    let overlay = build_kdiamond(n, K).expect("builds");
    let sched = schedule(n);
    let origin_time: BTreeMap<u64, Time> = sched.iter().map(|&(_, id, at)| (id, at)).collect();
    let mut by_origin: BTreeMap<NodeId, Vec<ScheduledByzBroadcast>> = BTreeMap::new();
    for &(origin, nonce, at_us) in &sched {
        by_origin
            .entry(origin)
            .or_default()
            .push(ScheduledByzBroadcast {
                nonce,
                payload: payload(),
                at_us,
            });
    }
    let schedules: Vec<(NodeId, Vec<ScheduledByzBroadcast>)> = by_origin.into_iter().collect();
    let horizon = BROADCASTS as Time * STAGGER_US + 1_000_000;
    let started = Instant::now();
    let metrics = Arc::new(MetricsRegistry::new());
    let report = run_sim_byzantine_with_metrics(
        overlay.graph(),
        K,
        &schedules,
        &[],
        LINK,
        42,
        horizon,
        Some(Arc::clone(&metrics)),
    );
    let wall = started.elapsed();
    let latencies: Vec<u64> = report
        .deliveries
        .iter()
        .map(|d| d.time - origin_time[&d.broadcast_id])
        .collect();
    assert_eq!(report.deliveries.len(), n * BROADCASTS, "bracha n={n}");
    finish_row(
        "bracha",
        n,
        report.deliveries.len(),
        report.messages_sent,
        metrics.counter("sim.bytes_sent").get(),
        latencies,
        wall,
    )
}

/// Runs the full baseline matrix (both modes at n ∈ `sizes`) and renders
/// the `BENCH_<pr>.json` document: a stable hand-rolled schema (the bench
/// crate carries no JSON dependency), one object per row.
///
/// # Panics
///
/// Panics if any run loses a delivery (the baseline must be a correct
/// run, or its numbers mean nothing).
#[must_use]
pub fn baseline_json(sizes: &[usize]) -> String {
    baseline_json_for(sizes, sizes)
}

/// Measures one row for `(mode, n)`.
///
/// # Panics
///
/// Panics on an unknown mode or a lost delivery.
#[must_use]
pub fn run_mode_baseline(mode: &str, n: usize) -> BaselineRow {
    match mode {
        "flood" => run_flood_baseline(n),
        "bracha" => run_bracha_baseline(n),
        other => panic!("unknown baseline mode {other:?}"),
    }
}

/// Like [`baseline_json`] with independent size lists per mode —
/// flooding scales to n=1024 in seconds, but Bracha's quorum gossip is
/// O(n²) messages per broadcast, so its list typically stops earlier.
///
/// # Panics
///
/// Panics if any run loses a delivery.
#[must_use]
pub fn baseline_json_for(flood_sizes: &[usize], bracha_sizes: &[usize]) -> String {
    let mut rows = Vec::new();
    for &n in flood_sizes {
        rows.push(run_flood_baseline(n));
        if bracha_sizes.contains(&n) {
            rows.push(run_bracha_baseline(n));
        }
    }
    for &n in bracha_sizes {
        if !flood_sizes.contains(&n) {
            rows.push(run_bracha_baseline(n));
        }
    }
    render_baseline_json(&rows)
}

/// Renders measured rows into the stable `BENCH_<pr>.json` schema.
#[must_use]
pub fn render_baseline_json(rows: &[BaselineRow]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"bench\": \"broadcast_baseline\",\n  \"k\": {K},\n  \
         \"link_latency_us\": {},\n  \"jitter_us\": 0,\n  \
         \"broadcasts_per_run\": {BROADCASTS},\n  \"stagger_us\": {STAGGER_US},\n  \
         \"constraint\": \"kdiamond\",\n  \"engine\": \"sim\",\n  \"results\": [",
        LINK.base_latency_us
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"mode\": \"{}\", \"n\": {}, \"broadcasts\": {}, \"deliveries\": {}, \
             \"messages\": {}, \"bytes\": {}, \"wall_ms\": {:.2}, \
             \"throughput_msgs_per_sec\": {:.0}, \
             \"p50_latency_us\": {}, \"p99_latency_us\": {}}}",
            if i == 0 { "" } else { "," },
            r.mode,
            r.n,
            r.broadcasts,
            r.deliveries,
            r.messages,
            r.bytes,
            r.wall_ms,
            r.throughput_msgs_per_sec,
            r.p50_latency_us,
            r.p99_latency_us
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_deliver_everything_at_small_n() {
        let flood = run_flood_baseline(16);
        let bracha = run_bracha_baseline(16);
        assert_eq!(flood.deliveries, 16 * BROADCASTS);
        assert_eq!(bracha.deliveries, 16 * BROADCASTS);
        // Bracha's quorum rounds cost strictly more messages, bytes, and
        // latency.
        assert!(bracha.messages > flood.messages);
        assert!(bracha.bytes > flood.bytes);
        assert!(flood.bytes > 0, "bytes-on-the-wire recorded");
        assert!(bracha.p50_latency_us > flood.p50_latency_us);
        // Zero-jitter links make the virtual-time numbers deterministic.
        assert_eq!(flood.p50_latency_us, run_flood_baseline(16).p50_latency_us);
    }

    #[test]
    fn json_document_has_the_stable_schema() {
        let doc = baseline_json(&[16]);
        assert!(doc.starts_with("{\n"), "{doc}");
        assert!(doc.trim_end().ends_with('}'), "{doc}");
        for field in [
            "\"bench\": \"broadcast_baseline\"",
            "\"mode\": \"flood\"",
            "\"mode\": \"bracha\"",
            "\"throughput_msgs_per_sec\"",
            "\"p50_latency_us\"",
            "\"p99_latency_us\"",
            "\"bytes\"",
        ] {
            assert!(doc.contains(field), "missing {field}: {doc}");
        }
        assert_eq!(doc.matches("\"n\": 16").count(), 2, "{doc}");
    }
}
