//! Experiments E19–E20: structural profile and spectral expansion of the
//! constructions vs baselines.

use std::fmt::Write as _;

use lhg_baselines::expander::hamiltonian_expander;
use lhg_baselines::harary::harary_graph;
use lhg_baselines::random::random_regular;
use lhg_core::analysis::{expected_triangles, profile, unshared_group_count};
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_graph::spectral::slem_estimate;
use lhg_graph::Graph;

/// E19 — structural profile: bipartiteness, girth, triangles, clustering.
/// The pasted-trees shape leaves a fingerprint: K-TREE graphs are bipartite
/// and triangle-free; K-DIAMOND graphs carry exactly `u·C(k,3)` triangles
/// from their unshared cliques.
///
/// # Panics
///
/// Panics if a build fails (bug).
#[must_use]
pub fn e19_structural_profile() -> String {
    let k = 3;
    let mut out = format!(
        "E19 — structural profile (k={k})\n\
         {:<18} {:>10} {:>7} {:>11} {:>12} {:>11}\n",
        "graph", "bipartite", "girth", "triangles", "u·C(k,3)", "clustering"
    );
    for n in [14usize, 30, 62] {
        let kt = build_ktree(n, k).expect("builds");
        let p = profile(kt.graph(), 200);
        let _ = writeln!(
            out,
            "{:<18} {:>10} {:>7} {:>11} {:>12} {:>11.3}",
            format!("K-TREE ({n},{k})"),
            p.bipartite,
            p.girth.map_or("—".into(), |g| g.to_string()),
            p.triangles,
            "0",
            p.clustering,
        );
        let kd = build_kdiamond(n, k).expect("builds");
        let p = profile(kd.graph(), 200);
        let _ = writeln!(
            out,
            "{:<18} {:>10} {:>7} {:>11} {:>12} {:>11.3}",
            format!("K-DIAMOND ({n},{k})"),
            p.bipartite,
            p.girth.map_or("—".into(), |g| g.to_string()),
            p.triangles,
            format!(
                "{} (u={})",
                expected_triangles(&kd),
                unshared_group_count(&kd)
            ),
            p.clustering,
        );
        let h = harary_graph(n, k);
        let p = profile(&h, 200);
        let _ = writeln!(
            out,
            "{:<18} {:>10} {:>7} {:>11} {:>12} {:>11.3}",
            format!("Harary ({n},{k})"),
            p.bipartite,
            p.girth.map_or("—".into(), |g| g.to_string()),
            p.triangles,
            "—",
            p.clustering,
        );
    }
    out.push_str(
        "reading: K-TREE is bipartite, triangle-free, girth 4; K-DIAMOND's triangle\n\
         count equals its unshared-clique closed form exactly; Harary circulants\n\
         pack triangles whenever k > 2·1.\n",
    );
    out
}

/// E20 — spectral gap of the lazy random walk across topologies: why the
/// LHGs flood in logarithmic time although they are not optimized as
/// expanders.
///
/// # Panics
///
/// Panics if a build fails (bug).
#[must_use]
pub fn e20_spectral_gap() -> String {
    let k = 4;
    let iters = 600;
    let mut out = format!(
        "E20 — lazy-walk spectral gap (k={k}, power iteration x{iters})\n\
         {:>6} {:>9} {:>11} {:>9} {:>10} {:>10}\n",
        "n", "K-TREE", "K-DIAMOND", "Harary", "rand-reg", "Law-Siu"
    );
    for n in [32usize, 64, 128, 256] {
        let gaps: Vec<f64> = vec![
            slem_estimate(build_ktree(n, k).expect("builds").graph(), iters).gap,
            slem_estimate(build_kdiamond(n, k).expect("builds").graph(), iters).gap,
            slem_estimate(&harary_graph(n, k), iters).gap,
            slem_estimate(&random_regular(n, k, 5, 300).expect("pairing"), iters).gap,
            slem_estimate(&hamiltonian_expander(n, k / 2, 5), iters).gap,
        ];
        let _ = writeln!(
            out,
            "{n:>6} {:>9.4} {:>11.4} {:>9.4} {:>10.4} {:>10.4}",
            gaps[0], gaps[1], gaps[2], gaps[3], gaps[4],
        );
    }
    out.push_str(
        "shape: Harary's gap collapses ~1/n² (ring-like); the LHG gap shrinks only\n\
         mildly with n — not a constant-gap expander, but enough for O(log n)\n\
         flooding; random-regular and Law–Siu graphs keep near-constant gaps.\n",
    );
    out
}

/// Helper used by tests: the cycle's gap at size `n`.
#[must_use]
pub fn cycle_gap(n: usize, iters: usize) -> f64 {
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        g.add_edge(lhg_graph::NodeId(i), lhg_graph::NodeId((i + 1) % n));
    }
    slem_estimate(&g, iters).gap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e19_shows_the_fingerprints() {
        let out = e19_structural_profile();
        let ktree_lines: Vec<&str> = out.lines().filter(|l| l.starts_with("K-TREE")).collect();
        assert_eq!(ktree_lines.len(), 3);
        for l in ktree_lines {
            assert!(l.contains("true"), "bipartite: {l}");
            let cols: Vec<&str> = l.split_whitespace().collect();
            assert_eq!(cols[3], "4", "girth: {l}");
            assert_eq!(cols[4], "0", "triangles: {l}");
        }
    }

    #[test]
    fn e20_lhg_gap_beats_harary_at_scale() {
        let out = e20_spectral_gap();
        let line = out
            .lines()
            .find(|l| l.trim_start().starts_with("256"))
            .unwrap();
        let cols: Vec<f64> = line
            .split_whitespace()
            .filter_map(|c| c.parse().ok())
            .collect();
        // cols = [n, ktree, kdiamond, harary, randreg, lawsiu]
        assert!(
            cols[1] > 3.0 * cols[3],
            "K-TREE {} vs Harary {}: {line}",
            cols[1],
            cols[3]
        );
        assert!(cols[2] > 3.0 * cols[3], "{line}");
    }

    #[test]
    fn cycle_gap_shrinks_quadratically() {
        let g20 = cycle_gap(20, 500);
        let g40 = cycle_gap(40, 800);
        assert!(g20 > 3.0 * g40, "gap(C20)={g20} vs gap(C40)={g40}");
    }
}
