//! Experiments E21–E22: forwarding-load balance and failure-detection
//! latency on LHG overlays.

use std::fmt::Write as _;

use bytes::Bytes;
use lhg_baselines::harary::harary_graph;
use lhg_baselines::structured::balanced_tree;
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_graph::betweenness::load_profile;
use lhg_graph::NodeId;
use lhg_net::detector::{DetectorEvent, HeartbeatConfig, HeartbeatProcess};
use lhg_net::sim::{LinkModel, Process, Simulation, Time};

/// E21 — forwarding-load balance: max/mean betweenness across topologies.
/// Relevant to flooding because relays on many shortest paths see the most
/// duplicate traffic and are the worst nodes to lose.
///
/// # Panics
///
/// Panics if a build fails (bug).
#[must_use]
pub fn e21_load_balance() -> String {
    let k = 3;
    let mut out = format!(
        "E21 — shortest-path load imbalance (max/mean betweenness, k={k})\n\
         {:>6} {:>9} {:>11} {:>9} {:>9}\n",
        "n", "K-TREE", "K-DIAMOND", "Harary", "tree"
    );
    for n in [30usize, 62, 126] {
        let imb = |g: &lhg_graph::Graph| load_profile(g).imbalance;
        let _ = writeln!(
            out,
            "{n:>6} {:>9.2} {:>11.2} {:>9.2} {:>9.2}",
            imb(build_ktree(n, k).expect("builds").graph()),
            imb(build_kdiamond(n, k).expect("builds").graph()),
            imb(&harary_graph(n, k)),
            imb(&balanced_tree(n, k - 1)),
        );
    }
    out.push_str(
        "shape: Harary circulants are perfectly balanced (vertex-transitive,\n\
         ratio 1); trees concentrate load near the root; the LHGs sit between —\n\
         their root/internal copies relay more than leaves, by a bounded factor.\n",
    );
    out
}

/// E22 — failure-detection latency: heartbeat detectors on a K-DIAMOND
/// overlay; time from crash to suspicion by every neighbor.
///
/// # Panics
///
/// Panics if a build fails or a neighbor never suspects the crashed node
/// (completeness violation — a bug).
#[must_use]
pub fn e22_detection_latency() -> String {
    let k = 3;
    let config = HeartbeatConfig {
        period: 1_000,
        timeout: 3_500,
    };
    let link = LinkModel {
        base_latency_us: 500,
        jitter_us: 200,
    };
    let crash_time: Time = 10_000;
    let mut out = format!(
        "E22 — heartbeat detection latency (K-DIAMOND k={k}, period 1ms, timeout 3.5ms,\n\
         crash at t=10ms; latency = last neighbor's suspicion − crash)\n\
         {:>6} {:>10} {:>15} {:>17} {:>14}\n",
        "n", "neighbors", "latency (µs)", "false suspicions", "messages"
    );
    for n in [16usize, 32, 64, 128] {
        let overlay = build_kdiamond(n, k).expect("builds");
        let victim = NodeId(n / 2);
        let neighbor_count = overlay.graph().degree(victim);
        let mut sim = Simulation::new(overlay.graph(), link, 7);
        sim.crash_at(victim, crash_time);
        let processes: Vec<Box<dyn Process>> = (0..n)
            .map(|_| -> Box<dyn Process> { Box::new(HeartbeatProcess::new(config)) })
            .collect();
        let report = sim.run(processes, 40_000);

        let mut last_suspect: Time = 0;
        let mut suspecting = std::collections::BTreeSet::new();
        let mut false_suspicions = 0usize;
        for d in &report.deliveries {
            if let Some(DetectorEvent::Suspect {
                monitor,
                suspect,
                time,
            }) = DetectorEvent::from_delivery(d)
            {
                if suspect == victim {
                    suspecting.insert(monitor);
                    last_suspect = last_suspect.max(time);
                } else {
                    false_suspicions += 1;
                }
            }
        }
        assert_eq!(
            suspecting.len(),
            neighbor_count,
            "completeness: every neighbor suspects the crashed node (n={n})"
        );
        let _ = writeln!(
            out,
            "{n:>6} {:>10} {:>15} {:>17} {:>14}",
            neighbor_count,
            last_suspect - crash_time,
            false_suspicions,
            report.messages_sent,
        );
        let _ = Bytes::new(); // keep the payload type in scope for doc parity
    }
    out.push_str(
        "shape: detection latency is independent of n (local monitoring: each node\n\
         watches only its k neighbors) and bounded by timeout + period + delay;\n\
         zero false suspicions at this timeout/latency margin.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e21_orders_topologies() {
        let out = e21_load_balance();
        let line = out
            .lines()
            .find(|l| l.trim_start().starts_with("126"))
            .unwrap();
        let cols: Vec<f64> = line
            .split_whitespace()
            .filter_map(|c| c.parse().ok())
            .collect();
        // cols = [n, ktree, kdiamond, harary, tree]
        assert!((cols[3] - 1.0).abs() < 0.05, "Harary balanced: {line}");
        assert!(cols[4] > cols[1], "tree worse than K-TREE: {line}");
        assert!(cols[1] > 1.0, "LHG not perfectly balanced: {line}");
    }

    #[test]
    fn e22_detects_with_zero_false_positives() {
        let out = e22_detection_latency();
        for line in out.lines().filter(|l| {
            l.split_whitespace()
                .next()
                .is_some_and(|c| c.parse::<usize>().is_ok())
        }) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(cols[3], "0", "false suspicions: {line}");
            let latency: u64 = cols[2].parse().unwrap();
            assert!(latency < 6_000, "latency bounded: {line}");
        }
    }
}
