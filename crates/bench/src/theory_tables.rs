//! Experiments E3–E6, E13, E14: the existence/regularity landscape —
//! closed forms cross-checked empirically, the theorem suite, JD's gaps,
//! and the family applicability census.

use std::fmt::Write as _;

use lhg_baselines::catalog::{existence_density, ALL_FAMILIES};
use lhg_core::existence::{ex_empirical, ex_jd, ex_ktree};
use lhg_core::regularity::{reg_empirical, reg_kdiamond, reg_ktree, theorem7_witnesses};
use lhg_core::theory::run_all;
use lhg_core::Constraint;

/// Sweeps `f_closed` vs `f_emp` over a grid and renders mismatches.
fn grid_check(
    out: &mut String,
    label: &str,
    ks: &[usize],
    max_n: usize,
    f_closed: impl Fn(usize, usize) -> bool,
    f_emp: impl Fn(usize, usize) -> bool,
) {
    let mut cases = 0;
    let mut mismatches = Vec::new();
    for &k in ks {
        for n in 2..=max_n {
            cases += 1;
            if f_closed(n, k) != f_emp(n, k) {
                mismatches.push((n, k));
            }
        }
    }
    let _ = writeln!(
        out,
        "{label:<34} {cases:>5} cases, {} mismatches {}",
        mismatches.len(),
        if mismatches.is_empty() {
            "— closed form CONFIRMED"
        } else {
            "— MISMATCH"
        },
    );
    if !mismatches.is_empty() {
        let _ = writeln!(
            out,
            "  first mismatches: {:?}",
            &mismatches[..mismatches.len().min(8)]
        );
    }
}

/// E3 — Theorem 2 grid: `EX_KTREE(n,k) ⇔ n ≥ 2k`, empirically.
#[must_use]
pub fn e3_ex_ktree_grid() -> String {
    let mut out = String::from("E3 — EX_KTREE: closed form vs construction+validation\n");
    let ks = [2, 3, 4, 5, 6];
    grid_check(
        &mut out,
        "EX_KTREE (constructibility)",
        &ks,
        60,
        ex_ktree,
        |n, k| ex_empirical(Constraint::KTree, n, k, false),
    );
    grid_check(
        &mut out,
        "EX_KTREE (full LHG validation)",
        &[3, 4],
        40,
        ex_ktree,
        |n, k| ex_empirical(Constraint::KTree, n, k, true),
    );
    out
}

/// E4 — Theorem 3 grid: `REG_KTREE(n,k) ⇔ n = 2k + 2α(k−1)`, empirically.
#[must_use]
pub fn e4_reg_ktree_grid() -> String {
    let mut out = String::from("E4 — REG_KTREE: closed form vs built-graph regularity\n");
    grid_check(
        &mut out,
        "REG_KTREE",
        &[2, 3, 4, 5, 6],
        60,
        reg_ktree,
        |n, k| reg_empirical(Constraint::KTree, n, k),
    );
    out
}

/// E5 — Theorems 5–6 grids for K-DIAMOND.
#[must_use]
pub fn e5_kdiamond_grids() -> String {
    let mut out = String::from("E5 — EX/REG_KDIAMOND: closed forms vs construction\n");
    let ks = [2, 3, 4, 5, 6];
    grid_check(
        &mut out,
        "EX_KDIAMOND (constructibility)",
        &ks,
        60,
        ex_ktree,
        |n, k| ex_empirical(Constraint::KDiamond, n, k, false),
    );
    grid_check(&mut out, "REG_KDIAMOND", &ks, 60, reg_kdiamond, |n, k| {
        reg_empirical(Constraint::KDiamond, n, k)
    });
    out
}

/// E6 — the executable theorem suite plus Theorem 7 witness listing.
#[must_use]
pub fn e6_theorem_suite() -> String {
    let mut out = String::from("E6 — executable theorem suite (k ∈ {3,4,5}, span 14)\n");
    for check in run_all(&[3, 4, 5], 14) {
        let _ = writeln!(
            out,
            "{:<50} {} ({} cases)",
            check.name,
            if check.holds() { "HOLDS" } else { "FAILS" },
            check.cases
        );
        if !check.holds() {
            let _ = writeln!(out, "  failures: {:?}", check.failures);
        }
    }
    out.push_str("\nTheorem 7 witnesses (regular under K-DIAMOND, not K-TREE):\n");
    for k in 3..=6 {
        let ns: Vec<usize> = theorem7_witnesses(k, 6)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        let _ = writeln!(out, "  k={k}: n = {ns:?} …");
    }
    out
}

/// E13 — the JD rule's constructibility gaps (follow-up §4.4).
#[must_use]
pub fn e13_jd_gaps() -> String {
    use lhg_core::jd::is_jd_constructible_strict;
    let mut out = String::from(
        "E13 — JD operational rule vs K-TREE constructibility\n\
         two readings of the quoted rule: lenient (hosts take 1 or 2 extras) and\n\
         strict (extras only in pairs — reproduces §4.4's infinite gap families)\n",
    );
    for k in [3usize, 4, 5] {
        let max_n = 30 * k;
        let ktree: Vec<usize> = (2..=max_n).filter(|&n| ex_ktree(n, k)).collect();
        let lenient_gaps: Vec<usize> = ktree.iter().copied().filter(|&n| !ex_jd(n, k)).collect();
        let strict_gaps: Vec<usize> = ktree
            .iter()
            .copied()
            .filter(|&n| !is_jd_constructible_strict(n, k))
            .collect();
        let cover = |gaps: &[usize]| 100.0 * (1.0 - gaps.len() as f64 / ktree.len() as f64);
        let _ = writeln!(
            out,
            "k={k}: K-TREE covers {} pairs up to n={max_n}; lenient JD misses {} \
             ({:.1}%), strict JD misses {} ({:.1}%)",
            ktree.len(),
            lenient_gaps.len(),
            cover(&lenient_gaps),
            strict_gaps.len(),
            cover(&strict_gaps),
        );
        let _ = writeln!(
            out,
            "  first lenient gaps: {:?}",
            &lenient_gaps[..lenient_gaps.len().min(10)]
        );
        let _ = writeln!(
            out,
            "  first strict gaps:  {:?}",
            &strict_gaps[..strict_gaps.len().min(10)]
        );
    }
    out.push_str(
        "every JD gap (under either reading) is constructible with K-TREE. The strict\n\
         reading leaves every odd-j point unreachable forever — e.g. n = 2k+2α(k−1)+3\n\
         for all α at k=3 — exactly the follow-up's §4.4 claim.\n",
    );
    out
}

/// E14 — applicability census: fraction of n ≤ N each family covers.
#[must_use]
pub fn e14_existence_density() -> String {
    let mut out = String::from(
        "E14 — existence density at connectivity k (fraction of n in (k, N] with a member)\n\
         family             k=3,N=500  k=4,N=500  k=5,N=500\n",
    );
    let mut rows: Vec<(String, [f64; 3])> = Vec::new();
    for family in ALL_FAMILIES {
        let d: Vec<f64> = [3usize, 4, 5]
            .iter()
            .map(|&k| existence_density(family, k, 500))
            .collect();
        rows.push((family.name.to_string(), [d[0], d[1], d[2]]));
    }
    // K-TREE / K-DIAMOND (identical existence sets).
    for name in ["K-TREE", "K-DIAMOND"] {
        let d: Vec<f64> = [3usize, 4, 5]
            .iter()
            .map(|&k| {
                let hits = ((k + 1)..=500).filter(|&n| ex_ktree(n, k)).count();
                hits as f64 / (500 - k) as f64
            })
            .collect();
        rows.push((name.to_string(), [d[0], d[1], d[2]]));
    }
    for (name, d) in rows {
        let _ = writeln!(out, "{name:<18} {:>9.3} {:>9.3} {:>9.3}", d[0], d[1], d[2]);
    }
    out.push_str("reading: LHG constraints cover ~99% of sizes; hypercube/de Bruijn <2%.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_to_e5_confirm_closed_forms() {
        for out in [e3_ex_ktree_grid(), e4_reg_ktree_grid(), e5_kdiamond_grids()] {
            assert!(!out.contains("MISMATCH"), "{out}");
            assert!(out.contains("CONFIRMED"), "{out}");
        }
    }

    #[test]
    fn e6_all_theorems_hold() {
        let out = e6_theorem_suite();
        assert!(!out.contains("FAILS"), "{out}");
        assert_eq!(out.matches("HOLDS").count(), 7, "{out}");
    }

    #[test]
    fn e13_reports_gaps_that_ktree_fills() {
        let out = e13_jd_gaps();
        assert!(out.contains("first lenient gaps: [7, 8, 9, 13]"), "{out}");
        // Strict gaps include every odd-j point: 7, 9, 11, 13, 15, ...
        assert!(
            out.contains("first strict gaps:  [7, 8, 9, 11, 13"),
            "{out}"
        );
    }

    #[test]
    fn e14_orders_families_sanely() {
        let out = e14_existence_density();
        assert!(out.contains("Harary"), "{out}");
        assert!(out.contains("K-DIAMOND"), "{out}");
    }
}
