//! Experiments E16–E18: the design-choice ablation, membership churn cost,
//! and flooding on lossy links.

use std::fmt::Write as _;

use lhg_core::ablation::{build_kdiamond_daft, build_ktree_unbalanced};
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_core::overlay::DynamicOverlay;
use lhg_core::properties::p4_diameter_bound;
use lhg_core::Constraint;
use lhg_flood::engine::{run_broadcast_lossy, Protocol};
use lhg_flood::failure::FailurePlan;
use lhg_graph::connectivity::vertex_connectivity;
use lhg_graph::paths::diameter;
use lhg_graph::{CsrGraph, NodeId};

/// E16 — ablation: drop the height-balance rule (level-filling growth) and
/// measure what it costs. The unbalanced variants stay k-connected but
/// their diameter turns linear — the empirical justification for K-TREE
/// rule 3a / K-DIAMOND rule 5a.
///
/// # Panics
///
/// Panics if a build fails (bug).
#[must_use]
pub fn e16_balance_ablation() -> String {
    let k = 3;
    let mut out = format!(
        "E16 — height-balance ablation (k={k}; 'unbal' = depth-first growth order)\n\
         {:>6} {:>8} {:>10} {:>8} {:>12} {:>10} {:>10}\n",
        "n", "K-TREE", "unbal", "K-DIAM", "daft", "P4 bound", "κ intact?"
    );
    for n in [30usize, 62, 126, 254] {
        let bal = diameter(build_ktree(n, k).expect("builds").graph()).expect("connected");
        let unb_graph = build_ktree_unbalanced(n, k).expect("builds").into_graph();
        let unb = diameter(&unb_graph).expect("connected");
        let kd = diameter(build_kdiamond(n, k).expect("builds").graph()).expect("connected");
        let daft_graph = build_kdiamond_daft(n, k).expect("builds").into_graph();
        let daft = diameter(&daft_graph).expect("connected");
        let kappa_ok =
            vertex_connectivity(&unb_graph) == k && vertex_connectivity(&daft_graph) == k;
        let _ = writeln!(
            out,
            "{n:>6} {bal:>8} {unb:>10} {kd:>8} {daft:>12} {:>10.1} {:>10}",
            p4_diameter_bound(n, k),
            if kappa_ok { "yes" } else { "NO" },
        );
    }
    out.push_str(
        "shape: without level-filling the template degenerates to a caterpillar —\n\
         connectivity and minimality survive, but the diameter grows linearly and\n\
         P4 fails. The balance rule is exactly what buys 'logarithmic'.\n",
    );
    out
}

/// E17 — membership churn: how many links a join/leave rewires as the
/// overlay grows (the P2P-applicability cost of deterministic topologies).
///
/// # Panics
///
/// Panics if overlay maintenance fails unexpectedly.
#[must_use]
pub fn e17_churn_cost() -> String {
    let k = 3;
    let mut out = format!(
        "E17 — link churn per membership change (K-DIAMOND, k={k})\n\
         {:>6} {:>14} {:>14} {:>12}\n",
        "n", "join churn", "leave churn", "edges total"
    );
    for n in [12usize, 24, 48, 96, 192] {
        let mut overlay = DynamicOverlay::bootstrap(Constraint::KDiamond, n, k).expect("bootstrap");
        let (id, join_churn) = overlay.join().expect("join");
        let edges = overlay.graph().edge_count();
        let leave_churn = overlay.leave(id).expect("leave");
        let _ = writeln!(
            out,
            "{n:>6} {:>14} {:>14} {:>12}",
            join_churn.total(),
            leave_churn.total(),
            edges,
        );
    }
    out.push_str(
        "shape: rebuilding at n±1 rewires a bounded neighborhood when the template\n\
         shape is stable, and O(n) links when the regular/irregular phase flips —\n\
         the cost of deterministic minimality under churn (contrast with randomized\n\
         overlays, which pay O(k) always but lose the deterministic guarantee).\n",
    );
    out
}

/// E18 — flooding on lossy links: single-shot flooding vs flooding with
/// retransmissions vs push and push–pull gossip (the Lin–Marzullo
/// comparison on an LHG overlay).
///
/// # Panics
///
/// Panics if a build fails (bug).
#[must_use]
pub fn e18_lossy_links() -> String {
    let (n, k) = (64usize, 3usize);
    let trials = 120u64;
    let topology = CsrGraph::from_graph(build_ktree(n, k).expect("builds").graph());
    let protocols: Vec<(&str, Protocol)> = vec![
        ("flood", Protocol::Flood),
        ("flood r=3", Protocol::FloodRetry { retries: 3 }),
        (
            "push f2",
            Protocol::GossipPush {
                fanout: 2,
                rounds_per_node: 6,
            },
        ),
        (
            "pushpull f2",
            Protocol::GossipPushPull {
                fanout: 2,
                rounds: 12,
            },
        ),
    ];
    let mut out = format!(
        "E18 — delivery on lossy links (K-TREE n={n} k={k}, {trials} trials; mean coverage)\n\
         {:>10} |",
        "loss"
    );
    for (name, _) in &protocols {
        let _ = write!(out, " {name:>12}");
    }
    out.push('\n');
    for loss in [0.0, 0.05, 0.10, 0.20, 0.40] {
        let _ = write!(out, "{loss:>10.2} |");
        for &(_, protocol) in &protocols {
            let mut coverage = 0.0;
            for seed in 0..trials {
                let o = run_broadcast_lossy(
                    &topology,
                    NodeId(0),
                    &FailurePlan::none(),
                    protocol,
                    seed,
                    loss,
                );
                coverage += o.coverage();
            }
            let _ = write!(out, " {:>12.3}", coverage / trials as f64);
        }
        out.push('\n');
    }
    out.push_str(
        "shape: single-shot flooding degrades with loss (each node hears each message\n\
         along k disjoint routes, so small loss is masked, heavy loss is not);\n\
         3 retransmissions restore near-total coverage; push-pull anti-entropy is\n\
         the most loss-tolerant but pays rounds × n messages.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_shows_the_blowup_with_intact_connectivity() {
        let out = e16_balance_ablation();
        assert!(!out.contains(" NO"), "{out}");
        let line = out
            .lines()
            .find(|l| l.trim_start().starts_with("254"))
            .unwrap();
        let cols: Vec<&str> = line.split_whitespace().collect();
        let balanced: u32 = cols[1].parse().unwrap();
        let unbalanced: u32 = cols[2].parse().unwrap();
        assert!(unbalanced >= 4 * balanced, "{line}");
    }

    #[test]
    fn e17_reports_positive_churn() {
        let out = e17_churn_cost();
        for n in [12, 96] {
            let line = out
                .lines()
                .find(|l| l.split_whitespace().next() == Some(&n.to_string()))
                .unwrap();
            let join: usize = line.split_whitespace().nth(1).unwrap().parse().unwrap();
            assert!(join > 0, "{line}");
        }
    }

    #[test]
    fn e18_orders_protocols_sensibly() {
        let out = e18_lossy_links();
        // At loss 0.20 the retry column must beat the plain flood column.
        let line = out
            .lines()
            .find(|l| l.trim_start().starts_with("0.20"))
            .unwrap();
        let cols: Vec<f64> = line
            .split_whitespace()
            .filter_map(|c| c.parse().ok())
            .collect();
        // cols = [loss, flood, retry, push, pushpull]
        assert!(
            cols[2] > cols[1],
            "retry {} > flood {}: {line}",
            cols[2],
            cols[1]
        );
        // At loss 0 flood is perfect.
        let line0 = out
            .lines()
            .find(|l| l.trim_start().starts_with("0.00"))
            .unwrap();
        let cols0: Vec<f64> = line0
            .split_whitespace()
            .filter_map(|c| c.parse().ok())
            .collect();
        assert_eq!(cols0[1], 1.0, "{line0}");
    }
}
