//! The perf-regression gate: re-measure the baseline and compare against
//! a recorded `BENCH_<pr>.json`, failing on real throughput loss.
//!
//! The recorded baseline (see [`crate::baseline`]) mixes two kinds of
//! numbers. Messages, deliveries, and the virtual-time latency
//! percentiles are **seed-deterministic** — any drift means the protocol
//! itself changed, and the comparison reports it. Wall-clock throughput
//! is **machine-dependent** — the one number a perf regression moves —
//! so the gate fires only when current throughput falls more than a
//! threshold (default 20%) below the recorded value, per `(mode, n)`
//! row. Faster-than-baseline is never an error.

use std::fmt::Write as _;

use crate::baseline::{run_mode_baseline, BaselineRow};

/// Default regression threshold: fail when current throughput is more
/// than 20% below the recorded baseline.
pub const DEFAULT_THRESHOLD: f64 = 0.20;

/// One row parsed out of a recorded `BENCH_<pr>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRef {
    /// `"flood"` or `"bracha"`.
    pub mode: String,
    /// Overlay size.
    pub n: usize,
    /// Messages the engine put on links (seed-deterministic).
    pub messages: u64,
    /// Bytes on the wire; `None` for baselines recorded before the field
    /// existed (BENCH_6 and earlier).
    pub bytes: Option<u64>,
    /// Recorded engine throughput, messages per wall-clock second.
    pub throughput_msgs_per_sec: f64,
    /// Recorded median virtual-time latency, µs.
    pub p50_latency_us: u64,
    /// Recorded p99 virtual-time latency, µs.
    pub p99_latency_us: u64,
}

fn num(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::U64(x) => Some(*x as f64),
        serde::Value::I64(x) => Some(*x as f64),
        serde::Value::F64(x) => Some(*x),
        _ => None,
    }
}

fn uint(v: &serde::Value) -> Option<u64> {
    match v {
        serde::Value::U64(x) => Some(*x),
        serde::Value::F64(x) if *x >= 0.0 => Some(*x as u64),
        _ => None,
    }
}

/// Parses the rows out of a recorded baseline document.
///
/// # Errors
///
/// Returns a message when the document is not valid JSON or lacks the
/// `results` rows / required fields.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineRef>, String> {
    let doc: serde::Value =
        serde_json::from_str(text).map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
    let results = doc
        .field("results")
        .and_then(serde::Value::as_array)
        .ok_or_else(|| "baseline document has no \"results\" array".to_owned())?;
    let mut rows = Vec::with_capacity(results.len());
    for (i, row) in results.iter().enumerate() {
        let get = |name: &str| {
            row.field(name)
                .ok_or_else(|| format!("results[{i}] missing \"{name}\""))
        };
        rows.push(BaselineRef {
            mode: get("mode")?
                .as_str()
                .ok_or_else(|| format!("results[{i}].mode is not a string"))?
                .to_owned(),
            n: uint(get("n")?).ok_or_else(|| format!("results[{i}].n is not a number"))? as usize,
            messages: uint(get("messages")?)
                .ok_or_else(|| format!("results[{i}].messages is not a number"))?,
            bytes: row.field("bytes").and_then(uint),
            throughput_msgs_per_sec: num(get("throughput_msgs_per_sec")?)
                .ok_or_else(|| format!("results[{i}].throughput_msgs_per_sec is not a number"))?,
            p50_latency_us: uint(get("p50_latency_us")?)
                .ok_or_else(|| format!("results[{i}].p50_latency_us is not a number"))?,
            p99_latency_us: uint(get("p99_latency_us")?)
                .ok_or_else(|| format!("results[{i}].p99_latency_us is not a number"))?,
        });
    }
    if rows.is_empty() {
        return Err("baseline document has zero result rows".to_owned());
    }
    Ok(rows)
}

/// One `(mode, n)` comparison between the recorded baseline and a fresh
/// measurement.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// The recorded row.
    pub baseline: BaselineRef,
    /// The fresh measurement on the current tree.
    pub current: BaselineRow,
    /// `current.throughput / baseline.throughput`.
    pub throughput_ratio: f64,
    /// True when the throughput ratio fell below `1 − threshold`.
    pub regressed: bool,
    /// True when a seed-deterministic metric (messages, p50, p99)
    /// drifted from the recording — the protocol changed, not the
    /// machine. Reported, never fatal by itself.
    pub determinism_drift: bool,
}

/// The full gate verdict.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-row comparisons, in baseline-document order.
    pub rows: Vec<CompareRow>,
    /// The threshold the verdict used (fraction, e.g. 0.20).
    pub threshold: f64,
}

impl CompareReport {
    /// True when any row regressed beyond the threshold.
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.regressed)
    }

    /// Human-readable table plus verdict line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:>6} {:>14} {:>14} {:>7}  verdict",
            "mode", "n", "base msg/s", "now msg/s", "ratio"
        );
        for r in &self.rows {
            let verdict = if r.regressed {
                "REGRESSED"
            } else if r.determinism_drift {
                "ok (drift)"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<8} {:>6} {:>14.0} {:>14.0} {:>7.2}  {}",
                r.baseline.mode,
                r.baseline.n,
                r.baseline.throughput_msgs_per_sec,
                r.current.throughput_msgs_per_sec,
                r.throughput_ratio,
                verdict
            );
            if r.determinism_drift {
                let _ = writeln!(
                    out,
                    "  drift: messages {} -> {}, p50 {} -> {}, p99 {} -> {} (seed-deterministic; \
                     the protocol changed)",
                    r.baseline.messages,
                    r.current.messages,
                    r.baseline.p50_latency_us,
                    r.current.p50_latency_us,
                    r.baseline.p99_latency_us,
                    r.current.p99_latency_us
                );
            }
        }
        let _ = writeln!(
            out,
            "gate: {} (threshold {:.0}%)",
            if self.regressed() { "FAIL" } else { "PASS" },
            self.threshold * 100.0
        );
        out
    }

    /// JSON-ready tree of the verdict (for `--json` surfaces).
    #[must_use]
    pub fn to_value(&self) -> serde::Value {
        let rows: Vec<serde::Value> = self
            .rows
            .iter()
            .map(|r| {
                serde::Value::Obj(vec![
                    (
                        "mode".to_owned(),
                        serde::Value::Str(r.baseline.mode.clone()),
                    ),
                    ("n".to_owned(), serde::Value::U64(r.baseline.n as u64)),
                    (
                        "baseline_throughput".to_owned(),
                        serde::Value::F64(r.baseline.throughput_msgs_per_sec),
                    ),
                    (
                        "current_throughput".to_owned(),
                        serde::Value::F64(r.current.throughput_msgs_per_sec),
                    ),
                    ("ratio".to_owned(), serde::Value::F64(r.throughput_ratio)),
                    ("regressed".to_owned(), serde::Value::Bool(r.regressed)),
                    (
                        "determinism_drift".to_owned(),
                        serde::Value::Bool(r.determinism_drift),
                    ),
                    (
                        "current_messages".to_owned(),
                        serde::Value::U64(r.current.messages),
                    ),
                    (
                        "current_bytes".to_owned(),
                        serde::Value::U64(r.current.bytes),
                    ),
                ])
            })
            .collect();
        serde::Value::Obj(vec![
            ("threshold".to_owned(), serde::Value::F64(self.threshold)),
            ("regressed".to_owned(), serde::Value::Bool(self.regressed())),
            ("rows".to_owned(), serde::Value::Arr(rows)),
        ])
    }
}

/// Compares recorded rows against fresh measurements (already taken).
/// Rows are matched by `(mode, n)`; baseline rows with no matching
/// measurement are skipped.
#[must_use]
pub fn compare_rows(
    baseline: &[BaselineRef],
    current: &[BaselineRow],
    threshold: f64,
) -> CompareReport {
    let rows = baseline
        .iter()
        .filter_map(|b| {
            let c = current
                .iter()
                .find(|c| c.mode == b.mode && c.n == b.n)?
                .clone();
            let ratio = if b.throughput_msgs_per_sec > 0.0 {
                c.throughput_msgs_per_sec / b.throughput_msgs_per_sec
            } else {
                1.0
            };
            let drift = c.messages != b.messages
                || c.p50_latency_us != b.p50_latency_us
                || c.p99_latency_us != b.p99_latency_us;
            Some(CompareRow {
                baseline: b.clone(),
                current: c,
                throughput_ratio: ratio,
                regressed: ratio < 1.0 - threshold,
                determinism_drift: drift,
            })
        })
        .collect();
    CompareReport { rows, threshold }
}

/// The full gate: parse `baseline_text`, re-measure every `(mode, n)` row
/// it records (optionally restricted to sizes in `sizes`), and compare at
/// `threshold`.
///
/// # Errors
///
/// Returns a message when the baseline document cannot be parsed, or the
/// size filter leaves nothing to compare.
pub fn compare_against(
    baseline_text: &str,
    sizes: Option<&[usize]>,
    threshold: f64,
) -> Result<CompareReport, String> {
    let baseline = parse_baseline(baseline_text)?;
    let wanted: Vec<&BaselineRef> = baseline
        .iter()
        .filter(|b| sizes.is_none_or(|s| s.contains(&b.n)))
        .collect();
    if wanted.is_empty() {
        return Err(format!(
            "size filter {sizes:?} matches none of the baseline rows"
        ));
    }
    let current: Vec<BaselineRow> = wanted
        .iter()
        .map(|b| run_mode_baseline(&b.mode, b.n))
        .collect();
    let refs: Vec<BaselineRef> = wanted.into_iter().cloned().collect();
    Ok(compare_rows(&refs, &current, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::render_baseline_json;

    fn measured(n: usize) -> Vec<BaselineRow> {
        vec![
            run_mode_baseline("flood", n),
            run_mode_baseline("bracha", n),
        ]
    }

    fn refs_from(rows: &[BaselineRow], throughput_scale: f64) -> Vec<BaselineRef> {
        rows.iter()
            .map(|r| BaselineRef {
                mode: r.mode.to_owned(),
                n: r.n,
                messages: r.messages,
                bytes: Some(r.bytes),
                throughput_msgs_per_sec: r.throughput_msgs_per_sec * throughput_scale,
                p50_latency_us: r.p50_latency_us,
                p99_latency_us: r.p99_latency_us,
            })
            .collect()
    }

    #[test]
    fn identical_rows_pass_the_gate() {
        let rows = measured(16);
        let report = compare_rows(&refs_from(&rows, 1.0), &rows, DEFAULT_THRESHOLD);
        assert!(!report.regressed(), "{}", report.render_text());
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| !r.determinism_drift));
    }

    #[test]
    fn synthetic_25_percent_regression_fails_the_gate() {
        let rows = measured(16);
        // Baseline recorded 1/0.75 ≈ 1.33× our throughput — i.e. the
        // current tree is 25% slower than the recording.
        let report = compare_rows(&refs_from(&rows, 1.0 / 0.75), &rows, DEFAULT_THRESHOLD);
        assert!(report.regressed(), "{}", report.render_text());
        let text = report.render_text();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    #[test]
    fn small_slowdowns_stay_green() {
        let rows = measured(16);
        // 10% slower than baseline: inside the 20% threshold.
        let report = compare_rows(&refs_from(&rows, 1.0 / 0.9), &rows, DEFAULT_THRESHOLD);
        assert!(!report.regressed(), "{}", report.render_text());
    }

    #[test]
    fn message_count_drift_is_reported_not_fatal() {
        let rows = measured(16);
        let mut refs = refs_from(&rows, 1.0);
        refs[0].messages += 1;
        let report = compare_rows(&refs, &rows, DEFAULT_THRESHOLD);
        assert!(!report.regressed());
        assert!(report.rows[0].determinism_drift);
        assert!(report.render_text().contains("drift"), "round-trip text");
    }

    #[test]
    fn rendered_baselines_parse_back_including_legacy_without_bytes() {
        let rows = measured(16);
        let doc = render_baseline_json(&rows);
        let parsed = parse_baseline(&doc).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].messages, rows[0].messages);
        assert_eq!(parsed[0].bytes, Some(rows[0].bytes));
        // A legacy document (BENCH_6-era, no "bytes" field) still parses.
        let legacy = doc
            .lines()
            .map(|l| {
                if let Some(pos) = l.find("\"bytes\": ") {
                    let rest = &l[pos..];
                    let end = rest.find(", ").unwrap() + 2;
                    format!("{}{}", &l[..pos], &rest[end..])
                } else {
                    l.to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = parse_baseline(&legacy).unwrap();
        assert_eq!(parsed[0].bytes, None);
        assert_eq!(parsed[0].messages, rows[0].messages);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"results\": []}").is_err());
    }

    #[test]
    fn compare_against_runs_the_full_gate_on_a_rendered_doc() {
        let doc = render_baseline_json(&measured(16));
        let report = compare_against(&doc, Some(&[16]), DEFAULT_THRESHOLD).unwrap();
        // Same machine, same seeds, moments apart: deterministic metrics
        // match and throughput stays inside any sane threshold.
        assert!(report.rows.iter().all(|r| !r.determinism_drift));
        assert!(
            compare_against(&doc, Some(&[999]), DEFAULT_THRESHOLD).is_err(),
            "filter matching nothing is an error"
        );
    }
}
