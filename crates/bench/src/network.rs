//! Experiment E15: reliable broadcast over the asynchronous discrete-event
//! substrate — end-to-end latency and delivery with mid-run crashes.

use std::fmt::Write as _;

use bytes::Bytes;
use lhg_core::kdiamond::build_kdiamond;
use lhg_graph::paths::diameter;
use lhg_graph::NodeId;
use lhg_net::broadcast::run_overlay_broadcast;
use lhg_net::sim::LinkModel;

/// E15 — asynchronous broadcast over K-DIAMOND overlays: every correct
/// process delivers despite k−1 mid-run crashes, with latency tracking
/// diameter × link delay.
///
/// # Panics
///
/// Panics if an overlay fails to build.
#[must_use]
pub fn e15_overlay_broadcast() -> String {
    let k = 3;
    let link = LinkModel {
        base_latency_us: 1_000,
        jitter_us: 250,
    };
    let mut out = format!(
        "E15 — async reliable broadcast over K-DIAMOND (k={k}, 1ms links ±0.25ms jitter)\n\
         {:>6} {:>9} {:>12} {:>14} {:>14} {:>10}\n",
        "n", "diameter", "delivered", "latency (µs)", "bound (µs)", "messages"
    );
    for n in [16usize, 32, 64, 128, 256] {
        let overlay = build_kdiamond(n, k).expect("builds");
        let d = u64::from(diameter(overlay.graph()).expect("connected"));
        // Crash k-1 processes shortly after the broadcast starts.
        let crashes: Vec<(NodeId, u64)> = (1..k).map(|i| (NodeId(3 * i), 1_500u64)).collect();
        let report = run_overlay_broadcast(
            overlay.graph(),
            NodeId(0),
            Bytes::from_static(b"E15"),
            link,
            &crashes,
            99,
        );
        let bound = d * (link.base_latency_us + link.jitter_us);
        let _ = writeln!(
            out,
            "{n:>6} {d:>9} {:>6}/{:<5} {:>14} {:>14} {:>10}",
            report.correct_delivered,
            report.correct_nodes,
            report.latency(),
            bound,
            report.sim.messages_sent,
        );
        assert!(
            report.all_correct_delivered(),
            "n={n}: correct process missed delivery"
        );
    }
    out.push_str(
        "shape: delivery is total despite k−1 mid-run crashes; latency stays within\n\
         diameter × worst-case link delay, i.e. grows logarithmically in n.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_delivers_everywhere() {
        let out = e15_overlay_broadcast();
        assert!(out.contains("256"), "{out}");
        // The assert! inside would have panicked otherwise; sanity-check a row.
        let line = out
            .lines()
            .find(|l| l.trim_start().starts_with("64"))
            .unwrap();
        assert!(line.contains("62/62"), "{line}");
    }
}
