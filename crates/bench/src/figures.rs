//! Experiments E1, E2, E12: the papers' example figures, rebuilt and
//! verified node-for-node, plus exhaustive fault-injection validation.

use std::fmt::Write as _;

use lhg_core::checker::check_constraint;
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_core::properties::{
    exhaustive_link_fault_tolerance, exhaustive_node_fault_tolerance, validate,
};
use lhg_core::LhgGraph;

fn describe(out: &mut String, label: &str, lhg: &LhgGraph) {
    let report = validate(lhg.graph(), lhg.k());
    let violations = check_constraint(lhg);
    let _ = writeln!(
        out,
        "{label:<14} n={:<3} edges={:<3} height={} | P1={} P2={} P3={} P4={} regular={} | constraint: {}",
        lhg.n(),
        lhg.graph().edge_count(),
        lhg.template().height(),
        report.node_connectivity_ok,
        report.link_connectivity_ok,
        report.link_minimal,
        report.logarithmic_diameter,
        report.regular,
        if violations.is_empty() { "satisfied" } else { "VIOLATED" },
    );
}

/// E1 — Fig. 2: the K-TREE example graphs (6,3), (9,3), (10,3).
///
/// # Panics
///
/// Panics if any figure graph fails to build (a bug, not an input error).
#[must_use]
pub fn e1_fig2_ktree() -> String {
    let mut out = String::from("E1 — follow-up Fig. 2: graphs satisfying K-TREE (k=3)\n");
    describe(&mut out, "fig2a (6,3)", &build_ktree(6, 3).expect("fig2a"));
    describe(&mut out, "fig2b (9,3)", &build_ktree(9, 3).expect("fig2b"));
    describe(
        &mut out,
        "fig2c (10,3)",
        &build_ktree(10, 3).expect("fig2c"),
    );
    out.push_str(
        "expected: (6,3) K_{3,3} 9 edges regular; (9,3) 18 edges irregular (3 added leaves);\n\
         (10,3) 15 edges regular, height 2.\n",
    );
    out
}

/// E2 — Fig. 3: the K-DIAMOND example graphs (7,3), (8,3), (13,3), (14,3).
///
/// # Panics
///
/// Panics if any figure graph fails to build.
#[must_use]
pub fn e2_fig3_kdiamond() -> String {
    let mut out = String::from("E2 — follow-up Fig. 3: graphs satisfying K-DIAMOND (k=3)\n");
    describe(
        &mut out,
        "fig3a (7,3)",
        &build_kdiamond(7, 3).expect("fig3a"),
    );
    describe(
        &mut out,
        "fig3b (8,3)",
        &build_kdiamond(8, 3).expect("fig3b"),
    );
    describe(
        &mut out,
        "fig3c (13,3)",
        &build_kdiamond(13, 3).expect("fig3c"),
    );
    describe(
        &mut out,
        "fig3d (14,3)",
        &build_kdiamond(14, 3).expect("fig3d"),
    );
    out.push_str(
        "expected: (8,3) and (14,3) 3-regular (unshared-leaf cliques); (7,3) and (13,3)\n\
         irregular (added leaves); all are LHGs.\n",
    );
    out
}

/// E12 — exhaustive fault injection: every node/link subset of size ≤ k−1
/// removed from every figure graph plus a small sweep; cross-validates the
/// flow-based P1/P2 verdicts.
///
/// # Panics
///
/// Panics if a graph fails to build.
#[must_use]
pub fn e12_exhaustive_faults() -> String {
    let mut out = String::from(
        "E12 — exhaustive fault injection (all subsets of size <= k-1)\n\
         graph            node-faults  link-faults\n",
    );
    let mut cases: Vec<(String, LhgGraph)> = Vec::new();
    for (n, k) in [(6, 3), (9, 3), (10, 3), (12, 4), (16, 4)] {
        cases.push((
            format!("K-TREE ({n},{k})"),
            build_ktree(n, k).expect("builds"),
        ));
    }
    for (n, k) in [(7, 3), (8, 3), (13, 3), (14, 3)] {
        cases.push((
            format!("K-DIAMOND ({n},{k})"),
            build_kdiamond(n, k).expect("builds"),
        ));
    }
    for (label, lhg) in &cases {
        let nodes = exhaustive_node_fault_tolerance(lhg.graph(), lhg.k());
        let links = exhaustive_link_fault_tolerance(lhg.graph(), lhg.k());
        let _ = writeln!(
            out,
            "{label:<16} {:<12} {:<12}",
            if nodes { "tolerated" } else { "FAILED" },
            if links { "tolerated" } else { "FAILED" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reports_all_figures_as_lhgs() {
        let out = e1_fig2_ktree();
        assert_eq!(out.matches("constraint: satisfied").count(), 3, "{out}");
        assert!(!out.contains("VIOLATED"));
        assert!(out.contains("n=6"));
        assert!(out.contains("n=9"));
        assert!(out.contains("n=10"));
    }

    #[test]
    fn e2_reports_all_figures_as_lhgs() {
        let out = e2_fig3_kdiamond();
        assert_eq!(out.matches("constraint: satisfied").count(), 4, "{out}");
        assert!(!out.contains("VIOLATED"));
    }

    #[test]
    fn e12_tolerates_everything() {
        let out = e12_exhaustive_faults();
        assert!(!out.contains("FAILED"), "{out}");
        assert_eq!(out.matches("tolerated").count(), 18, "{out}");
    }
}
