//! Experiment E23: origin-sweep latency distribution and coverage curves.

use std::fmt::Write as _;

use lhg_baselines::harary::harary_graph;
use lhg_core::kdiamond::build_kdiamond;
use lhg_core::ktree::build_ktree;
use lhg_flood::engine::{run_broadcast, Protocol};
use lhg_flood::failure::FailurePlan;
use lhg_flood::workload::origin_sweep;
use lhg_graph::{CsrGraph, NodeId};

/// E23 — all-origins latency distribution plus a per-round coverage curve
/// (flooding vs push gossip): where the latency actually comes from.
///
/// # Panics
///
/// Panics if a build fails (bug).
#[must_use]
pub fn e23_origin_sweep() -> String {
    let k = 3;
    let mut out = format!(
        "E23a — all-origins flooding latency (rounds; failure-free, k={k})\n\
         {:>6} | {:<11} {:>5} {:>6} {:>6} {:>5}\n",
        "n", "topology", "min", "p50", "p90", "max"
    );
    for n in [62usize, 126] {
        let rows = [
            ("K-TREE", build_ktree(n, k).expect("builds").into_graph()),
            (
                "K-DIAMOND",
                build_kdiamond(n, k).expect("builds").into_graph(),
            ),
            ("Harary", harary_graph(n, k)),
        ];
        for (name, g) in rows {
            let sweep = origin_sweep(&g, Protocol::Flood, &FailurePlan::none(), 1, 0);
            let _ = writeln!(
                out,
                "{n:>6} | {name:<11} {:>5} {:>6} {:>6} {:>5}",
                sweep.min_rounds(),
                sweep.rounds_quantile(0.5),
                sweep.rounds_quantile(0.9),
                sweep.max_rounds(),
            );
        }
    }
    out.push_str("(min = radius, max = diameter; LHG spread is 2–3 rounds, Harary's ~n/6.)\n\n");

    // Coverage curves from node 0 on a 62-node K-DIAAMOND overlay.
    let overlay = build_kdiamond(62, k).expect("builds");
    let topology = CsrGraph::from_graph(overlay.graph());
    out.push_str("E23b — coverage per round, K-DIAMOND (62,3): flood vs push gossip (f=2×6)\n");
    let flood = run_broadcast(
        &topology,
        NodeId(0),
        &FailurePlan::none(),
        Protocol::Flood,
        1,
    )
    .coverage_curve();
    let gossip = run_broadcast(
        &topology,
        NodeId(0),
        &FailurePlan::none(),
        Protocol::GossipPush {
            fanout: 2,
            rounds_per_node: 6,
        },
        1,
    )
    .coverage_curve();
    let rounds = flood.len().max(gossip.len());
    let _ = writeln!(out, "{:>6} {:>8} {:>8}", "round", "flood", "gossip");
    for r in 0..rounds {
        let f = flood.get(r).copied().unwrap_or(1.0);
        let g = gossip
            .get(r)
            .copied()
            .unwrap_or_else(|| *gossip.last().unwrap_or(&0.0));
        let _ = writeln!(out, "{r:>6} {f:>8.3} {g:>8.3}");
    }
    out.push_str(
        "shape: flooding's curve is a sharp S completing at the origin's eccentricity;\n\
         gossip's tail flattens below 1.0 — the deterministic/probabilistic contrast\n\
         round by round.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e23_flood_completes_and_spread_is_tight() {
        let out = e23_origin_sweep();
        // The last flood row must reach 1.000.
        let flood_final: Vec<&str> = out
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric) && l.contains('.'))
            .collect();
        assert!(!flood_final.is_empty());
        assert!(out.contains("1.000"), "{out}");
        // K-TREE max-min spread at n=126 is small.
        let line = out
            .lines()
            .find(|l| l.contains("126") && l.contains("K-TREE"))
            .unwrap();
        let cols: Vec<u32> = line
            .split_whitespace()
            .filter_map(|c| c.parse().ok())
            .collect();
        // cols = [126, min, p50, p90, max]
        assert!(cols[4] - cols[1] <= 4, "spread too wide: {line}");
    }
}
