//! # lhg-bench
//!
//! Experiment implementations (E1–E15) and Criterion benchmarks for the LHG
//! reproduction. Each `eN_*` function regenerates one table or figure from
//! EXPERIMENTS.md and returns it as formatted text; the `experiments`
//! binary prints them (`cargo run -p lhg-bench --release --bin experiments
//! -- all`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod compare;
pub mod extensions;
pub mod figures;
pub mod flooding_tables;
pub mod load_tables;
pub mod network;
pub mod performance;
pub mod scale_tables;
pub mod structure_tables;
pub mod theory_tables;
pub mod workload_tables;

/// One experiment: `(id, description, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> String);

/// Every experiment, in EXPERIMENTS.md order.
#[must_use]
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("e1", "Fig. 2 K-TREE example graphs", figures::e1_fig2_ktree),
        (
            "e2",
            "Fig. 3 K-DIAMOND example graphs",
            figures::e2_fig3_kdiamond,
        ),
        (
            "e3",
            "EX_KTREE grid (Theorem 2)",
            theory_tables::e3_ex_ktree_grid,
        ),
        (
            "e4",
            "REG_KTREE grid (Theorem 3)",
            theory_tables::e4_reg_ktree_grid,
        ),
        (
            "e5",
            "EX/REG_KDIAMOND grids (Theorems 5-6)",
            theory_tables::e5_kdiamond_grids,
        ),
        (
            "e6",
            "executable theorem suite + Theorem 7",
            theory_tables::e6_theorem_suite,
        ),
        (
            "e7",
            "diameter vs n (headline figure)",
            performance::e7_diameter_vs_n,
        ),
        ("e8", "edge cost vs lower bound", performance::e8_edge_cost),
        (
            "e9",
            "flooding latency vs n",
            flooding_tables::e9_latency_vs_n,
        ),
        (
            "e10",
            "reliability vs failures",
            flooding_tables::e10_reliability_vs_failures,
        ),
        ("e11", "message cost", flooding_tables::e11_message_cost),
        (
            "e12",
            "exhaustive fault injection",
            figures::e12_exhaustive_faults,
        ),
        (
            "e13",
            "JD constructibility gaps",
            theory_tables::e13_jd_gaps,
        ),
        (
            "e14",
            "family existence density",
            theory_tables::e14_existence_density,
        ),
        (
            "e15",
            "async overlay broadcast",
            network::e15_overlay_broadcast,
        ),
        (
            "e16",
            "height-balance ablation",
            extensions::e16_balance_ablation,
        ),
        ("e17", "membership churn cost", extensions::e17_churn_cost),
        (
            "e18",
            "flooding on lossy links",
            extensions::e18_lossy_links,
        ),
        (
            "e19",
            "structural profile",
            structure_tables::e19_structural_profile,
        ),
        (
            "e20",
            "spectral expansion",
            structure_tables::e20_spectral_gap,
        ),
        (
            "e21",
            "forwarding-load balance",
            load_tables::e21_load_balance,
        ),
        (
            "e22",
            "failure-detection latency",
            load_tables::e22_detection_latency,
        ),
        (
            "e23",
            "origin sweep + coverage curves",
            workload_tables::e23_origin_sweep,
        ),
        ("e24", "large-n scalability", scale_tables::e24_scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        let exps = all_experiments();
        assert_eq!(exps.len(), 24);
        for (i, (id, desc, _)) in exps.iter().enumerate() {
            assert_eq!(*id, format!("e{}", i + 1));
            assert!(!desc.is_empty());
        }
    }
}
