//! Breadth-first and depth-first traversal over any adjacency source.
//!
//! All higher-level algorithms (distances, components, flooding) are written
//! against the [`Adjacency`] trait so they run unchanged on a mutable
//! [`Graph`], an immutable [`CsrGraph`], or a failure-injected
//! [`SubgraphView`](crate::subgraph::SubgraphView).

use std::collections::VecDeque;

use crate::{CsrGraph, Graph, NodeId};

/// Read-only adjacency access used by every traversal algorithm.
///
/// Implementors must present nodes as dense ids `0..node_count()` and should
/// visit neighbors in a deterministic order (both provided implementations
/// visit ascending by id).
pub trait Adjacency {
    /// Number of nodes (ids are `0..node_count()`).
    fn node_count(&self) -> usize;

    /// Calls `visit` for every neighbor of `node`.
    fn for_each_neighbor(&self, node: NodeId, visit: &mut dyn FnMut(NodeId));

    /// Degree of `node`; default implementation counts neighbors.
    fn degree_of(&self, node: NodeId) -> usize {
        let mut d = 0;
        self.for_each_neighbor(node, &mut |_| d += 1);
        d
    }
}

impl Adjacency for Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn for_each_neighbor(&self, node: NodeId, visit: &mut dyn FnMut(NodeId)) {
        for w in self.neighbors(node) {
            visit(w);
        }
    }

    fn degree_of(&self, node: NodeId) -> usize {
        self.degree(node)
    }
}

impl Adjacency for CsrGraph {
    fn node_count(&self) -> usize {
        CsrGraph::node_count(self)
    }

    fn for_each_neighbor(&self, node: NodeId, visit: &mut dyn FnMut(NodeId)) {
        for &w in self.neighbors(node) {
            visit(w);
        }
    }

    fn degree_of(&self, node: NodeId) -> usize {
        self.degree(node)
    }
}

impl<T: Adjacency + ?Sized> Adjacency for &T {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn for_each_neighbor(&self, node: NodeId, visit: &mut dyn FnMut(NodeId)) {
        (**self).for_each_neighbor(node, visit);
    }

    fn degree_of(&self, node: NodeId) -> usize {
        (**self).degree_of(node)
    }
}

/// BFS hop distances from `source`; unreachable nodes map to `None`.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
#[must_use]
pub fn bfs_distances<A: Adjacency + ?Sized>(adj: &A, source: NodeId) -> Vec<Option<u32>> {
    assert!(
        source.index() < adj.node_count(),
        "source {source} out of bounds"
    );
    let mut dist = vec![None; adj.node_count()];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()].expect("queued nodes have distances");
        adj.for_each_neighbor(v, &mut |w| {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(dv + 1);
                queue.push_back(w);
            }
        });
    }
    dist
}

/// Nodes in BFS visit order from `source` (only reachable nodes).
#[must_use]
pub fn bfs_order<A: Adjacency + ?Sized>(adj: &A, source: NodeId) -> Vec<NodeId> {
    assert!(
        source.index() < adj.node_count(),
        "source {source} out of bounds"
    );
    let mut seen = vec![false; adj.node_count()];
    seen[source.index()] = true;
    let mut order = Vec::new();
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        adj.for_each_neighbor(v, &mut |w| {
            if !seen[w.index()] {
                seen[w.index()] = true;
                queue.push_back(w);
            }
        });
    }
    order
}

/// BFS parents from `source`: `parent[v]` is the predecessor of `v` on a
/// shortest path from `source` (`None` for the source itself and for
/// unreachable nodes).
#[must_use]
pub fn bfs_parents<A: Adjacency + ?Sized>(adj: &A, source: NodeId) -> Vec<Option<NodeId>> {
    assert!(
        source.index() < adj.node_count(),
        "source {source} out of bounds"
    );
    let mut parent = vec![None; adj.node_count()];
    let mut seen = vec![false; adj.node_count()];
    seen[source.index()] = true;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        adj.for_each_neighbor(v, &mut |w| {
            if !seen[w.index()] {
                seen[w.index()] = true;
                parent[w.index()] = Some(v);
                queue.push_back(w);
            }
        });
    }
    parent
}

/// One shortest path from `source` to `target` (inclusive), or `None` if
/// `target` is unreachable.
#[must_use]
pub fn shortest_path<A: Adjacency + ?Sized>(
    adj: &A,
    source: NodeId,
    target: NodeId,
) -> Option<Vec<NodeId>> {
    assert!(
        target.index() < adj.node_count(),
        "target {target} out of bounds"
    );
    let parent = bfs_parents(adj, source);
    if source != target && parent[target.index()].is_none() {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        cur = parent[cur.index()].expect("reached nodes have parents");
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Depth-first preorder from `source` (iterative; only reachable nodes).
/// Children are visited in ascending id order.
#[must_use]
pub fn dfs_preorder<A: Adjacency + ?Sized>(adj: &A, source: NodeId) -> Vec<NodeId> {
    assert!(
        source.index() < adj.node_count(),
        "source {source} out of bounds"
    );
    let mut seen = vec![false; adj.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(v) = stack.pop() {
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        order.push(v);
        // Push in reverse so the smallest-id neighbor is expanded first.
        let mut ns = Vec::new();
        adj.for_each_neighbor(v, &mut |w| ns.push(w));
        for &w in ns.iter().rev() {
            if !seen[w.index()] {
                stack.push(w);
            }
        }
    }
    order
}

/// The farthest node from `source` and its hop distance, among reachable
/// nodes (ties broken toward the smallest id).
#[must_use]
pub fn bfs_farthest<A: Adjacency + ?Sized>(adj: &A, source: NodeId) -> (NodeId, u32) {
    let dist = bfs_distances(adj, source);
    let mut best = (source, 0);
    for (i, d) in dist.iter().enumerate() {
        if let Some(d) = d {
            if *d > best.1 {
                best = (NodeId(i), *d);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// 0 - 1 - 2 - 3 plus isolated 4.
    fn path_plus_isolated() -> Graph {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        g
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_plus_isolated();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), None]);
    }

    #[test]
    fn bfs_order_visits_levels() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(3));
        assert_eq!(
            bfs_order(&g, NodeId(0)),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn bfs_works_on_csr() {
        let g = path_plus_isolated();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(bfs_distances(&csr, NodeId(0)), bfs_distances(&g, NodeId(0)));
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = path_plus_isolated();
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(shortest_path(&g, NodeId(0), NodeId(4)), None);
        assert_eq!(
            shortest_path(&g, NodeId(2), NodeId(2)),
            Some(vec![NodeId(2)])
        );
    }

    #[test]
    fn shortest_path_prefers_bfs_minimality() {
        // Triangle with a pendant: 0-1, 1-2, 0-2, 2-3. Path 0->3 must have 3 nodes.
        let g = Graph::from_edges(
            0,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(3)),
            ],
        );
        let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], NodeId(0));
        assert_eq!(*p.last().unwrap(), NodeId(3));
    }

    #[test]
    fn dfs_preorder_is_deterministic() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(3));
        assert_eq!(
            dfs_preorder(&g, NodeId(0)),
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(2)]
        );
    }

    #[test]
    fn farthest_node_on_path() {
        let g = path_plus_isolated();
        assert_eq!(bfs_farthest(&g, NodeId(0)), (NodeId(3), 3));
        assert_eq!(bfs_farthest(&g, NodeId(4)), (NodeId(4), 0));
    }

    #[test]
    fn adjacency_by_reference_works() {
        let g = path_plus_isolated();
        let r: &Graph = &g;
        assert_eq!(Adjacency::node_count(&r), 5);
        assert_eq!(Adjacency::degree_of(&r, NodeId(1)), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bfs_rejects_bad_source() {
        let g = Graph::with_nodes(1);
        let _ = bfs_distances(&g, NodeId(2));
    }
}
