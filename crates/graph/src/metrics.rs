//! Structural metrics: triangles, clustering, bipartiteness, girth.
//!
//! These distinguish the constructions qualitatively: K-TREE graphs are
//! triangle-free (copies only meet at leaves), while every K-DIAMOND
//! unshared leaf contributes a k-clique; Harary circulants are dense in
//! short cycles. The metrics feed the structural-comparison experiment.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Number of triangles (3-cycles) in the graph.
#[must_use]
pub fn triangle_count(g: &Graph) -> usize {
    // For each edge (u, v) with u < v, count common neighbors w > v.
    let mut count = 0;
    for e in g.edges() {
        for w in g.neighbors(e.b) {
            if w > e.b && g.has_edge(e.a, w) {
                count += 1;
            }
        }
    }
    count
}

/// Local clustering coefficient of `node`: fraction of neighbor pairs that
/// are themselves adjacent. 0.0 for degree < 2.
///
/// # Panics
///
/// Panics if `node` is out of bounds.
#[must_use]
pub fn local_clustering(g: &Graph, node: NodeId) -> f64 {
    let ns: Vec<NodeId> = g.neighbors(node).collect();
    let d = ns.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0;
    for (i, &u) in ns.iter().enumerate() {
        for &w in &ns[i + 1..] {
            if g.has_edge(u, w) {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (d as f64 * (d as f64 - 1.0))
}

/// Average of the local clustering coefficients over all nodes (0.0 for
/// the empty graph).
#[must_use]
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    g.nodes().map(|v| local_clustering(g, v)).sum::<f64>() / n as f64
}

/// Returns a 2-coloring if the graph is bipartite, `None` otherwise.
#[must_use]
pub fn bipartition(g: &Graph) -> Option<Vec<bool>> {
    let n = g.node_count();
    let mut color: Vec<Option<bool>> = vec![None; n];
    for start in 0..n {
        if color[start].is_some() {
            continue;
        }
        color[start] = Some(false);
        let mut q = VecDeque::from([NodeId(start)]);
        while let Some(v) = q.pop_front() {
            let cv = color[v.index()].expect("queued nodes are colored");
            for w in g.neighbors(v) {
                match color[w.index()] {
                    None => {
                        color[w.index()] = Some(!cv);
                        q.push_back(w);
                    }
                    Some(cw) if cw == cv => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(color.into_iter().map(|c| c.unwrap_or(false)).collect())
}

/// Returns `true` if the graph has no odd cycle.
#[must_use]
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_some()
}

/// Girth: length of the shortest cycle, or `None` for forests.
///
/// BFS from every node; when a visited vertex is seen again at the BFS
/// frontier the cycle length is `dist(u) + dist(w) + 1`.
#[must_use]
pub fn girth(g: &Graph) -> Option<u32> {
    let n = g.node_count();
    let mut best: Option<u32> = None;
    for s in 0..n {
        let mut dist = vec![u32::MAX; n];
        let mut parent = vec![usize::MAX; n];
        dist[s] = 0;
        let mut q = VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            for w in g.neighbors(NodeId(v)) {
                let w = w.index();
                if dist[w] == u32::MAX {
                    dist[w] = dist[v] + 1;
                    parent[w] = v;
                    q.push_back(w);
                } else if parent[v] != w && w != v {
                    // Non-tree edge: cycle through s of length d(v)+d(w)+1.
                    let len = dist[v] + dist[w] + 1;
                    if best.is_none_or(|b| len < b) {
                        best = Some(len);
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        g
    }

    #[test]
    fn triangle_counts() {
        assert_eq!(triangle_count(&complete(3)), 1);
        assert_eq!(triangle_count(&complete(4)), 4);
        assert_eq!(triangle_count(&complete(5)), 10);
        assert_eq!(triangle_count(&cycle(5)), 0);
        assert_eq!(triangle_count(&Graph::with_nodes(3)), 0);
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let g = complete(5);
        for v in g.nodes() {
            assert!((local_clustering(&g, v) - 1.0).abs() < 1e-12);
        }
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
        assert_eq!(average_clustering(&cycle(6)), 0.0);
    }

    #[test]
    fn clustering_of_low_degree_nodes_is_zero() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1));
        assert_eq!(local_clustering(&g, NodeId(0)), 0.0);
    }

    #[test]
    fn bipartite_detection() {
        assert!(is_bipartite(&cycle(6)));
        assert!(!is_bipartite(&cycle(5)));
        assert!(!is_bipartite(&complete(3)));
        assert!(is_bipartite(&Graph::with_nodes(4)));

        let coloring = bipartition(&cycle(6)).unwrap();
        let g = cycle(6);
        for e in g.edges() {
            assert_ne!(coloring[e.a.index()], coloring[e.b.index()]);
        }
    }

    #[test]
    fn girth_values() {
        assert_eq!(girth(&cycle(5)), Some(5));
        assert_eq!(girth(&cycle(8)), Some(8));
        assert_eq!(girth(&complete(4)), Some(3));
        let mut tree = Graph::with_nodes(4);
        tree.add_edge(NodeId(0), NodeId(1));
        tree.add_edge(NodeId(0), NodeId(2));
        tree.add_edge(NodeId(0), NodeId(3));
        assert_eq!(girth(&tree), None);
    }

    #[test]
    fn girth_of_petersen_is_5() {
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let mut g = Graph::with_nodes(10);
        for (a, b) in outer.iter().chain(&spokes).chain(&inner) {
            g.add_edge(NodeId(*a), NodeId(*b));
        }
        assert_eq!(girth(&g), Some(5));
    }

    #[test]
    fn girth_even_cycle_with_chord() {
        let mut g = cycle(8);
        g.add_edge(NodeId(0), NodeId(3));
        assert_eq!(girth(&g), Some(4));
    }
}
