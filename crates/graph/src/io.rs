//! Text serialization: Graphviz DOT export and a plain edge-list format.
//!
//! The edge-list format is line-oriented:
//!
//! ```text
//! # comments and blank lines are ignored
//! nodes 6
//! 0 1
//! 0 2
//! 1 2
//! ```
//!
//! The `nodes <n>` header is optional; without it the node count is inferred
//! as `max endpoint + 1`.

use std::fmt::Write as _;

use crate::{Graph, GraphError, NodeId};

/// Renders `g` in Graphviz DOT format (undirected, `graph { .. }`).
///
/// `name` becomes the graph identifier; non-alphanumeric characters are
/// replaced by underscores so the output always parses.
#[must_use]
pub fn to_dot(g: &Graph, name: &str) -> String {
    let safe: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "graph {safe} {{");
    for v in g.nodes() {
        let _ = writeln!(out, "  {};", v.index());
    }
    for e in g.edges() {
        let _ = writeln!(out, "  {} -- {};", e.a.index(), e.b.index());
    }
    out.push_str("}\n");
    out
}

/// Serializes `g` as an edge list with a `nodes` header (round-trips through
/// [`from_edge_list`], preserving isolated nodes).
#[must_use]
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", g.node_count());
    for e in g.edges() {
        let _ = writeln!(out, "{} {}", e.a.index(), e.b.index());
    }
    out
}

/// Parses the edge-list format described in the module docs.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines, and propagates
/// [`GraphError::SelfLoop`] / [`GraphError::NodeOutOfBounds`] for invalid
/// edges (the latter only when a `nodes` header under-declares the count).
pub fn from_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut g = Graph::new();
    let mut declared: Option<usize> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes") {
            let n: usize = rest.trim().parse().map_err(|_| GraphError::Parse {
                line: lineno,
                message: format!("invalid node count {:?}", rest.trim()),
            })?;
            declared = Some(n);
            while g.node_count() < n {
                g.add_node();
            }
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(GraphError::Parse {
                line: lineno,
                message: format!("expected two endpoints, got {line:?}"),
            });
        };
        let a: usize = a.parse().map_err(|_| GraphError::Parse {
            line: lineno,
            message: format!("invalid endpoint {a:?}"),
        })?;
        let b: usize = b.parse().map_err(|_| GraphError::Parse {
            line: lineno,
            message: format!("invalid endpoint {b:?}"),
        })?;
        if declared.is_none() {
            let needed = a.max(b) + 1;
            while g.node_count() < needed {
                g.add_node();
            }
        }
        g.try_add_edge(NodeId(a), NodeId(b))?;
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_isolated() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(2));
        g
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = triangle_plus_isolated();
        let dot = to_dot(&g, "tri");
        assert!(dot.starts_with("graph tri {"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("0 -- 2;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.contains("  3;"), "isolated node listed");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_sanitizes_name() {
        let g = Graph::with_nodes(1);
        let dot = to_dot(&g, "k-tree (6,3)");
        assert!(dot.starts_with("graph k_tree__6_3_ {"));
    }

    #[test]
    fn edge_list_round_trip_preserves_isolated_nodes() {
        let g = triangle_plus_isolated();
        let text = to_edge_list(&g);
        let back = from_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn parse_without_header_infers_node_count() {
        let g = from_edge_list("0 1\n1 4\n").unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let g = from_edge_list("# a comment\n\nnodes 3\n0 1\n# trailing\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn parse_rejects_bad_lines() {
        assert!(matches!(
            from_edge_list("0\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_edge_list("0 1 2\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_edge_list("a b\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            from_edge_list("nodes x\n"),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn parse_rejects_self_loops_and_out_of_bounds() {
        assert!(matches!(
            from_edge_list("1 1\n"),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            from_edge_list("nodes 2\n0 5\n"),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn header_line_number_in_errors_is_accurate() {
        let err = from_edge_list("# c\n0 1\nbroken line here\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 3, .. }));
    }
}
