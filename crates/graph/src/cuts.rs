//! Articulation points and bridges (Tarjan low-link, iterative).
//!
//! These give fast answers to "is the graph 2-node-connected / 2-edge-
//! connected", which the LHG validators use as a cheap screen before the
//! flow-based exact connectivity computations.

use crate::graph::Edge;
use crate::traversal::Adjacency;
use crate::NodeId;

/// Result of a single low-link sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutReport {
    /// Articulation points (cut vertices), ascending.
    pub articulation_points: Vec<NodeId>,
    /// Bridges (cut edges), normalized and sorted.
    pub bridges: Vec<Edge>,
}

/// Computes articulation points and bridges of `adj` in one iterative DFS.
#[must_use]
pub fn cut_report<A: Adjacency + ?Sized>(adj: &A) -> CutReport {
    let n = adj.node_count();
    let mut disc = vec![0u32; n]; // 0 = unvisited; otherwise discovery time + 1
    let mut low = vec![0u32; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut is_cut = vec![false; n];
    let mut bridges = Vec::new();
    let mut timer: u32 = 0;

    // Iterative DFS frame: (node, neighbor list, next index, root child count).
    for root in 0..n {
        if disc[root] != 0 {
            continue;
        }
        let mut root_children = 0usize;
        timer += 1;
        disc[root] = timer;
        low[root] = timer;
        let mut stack: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();
        let mut ns = Vec::new();
        adj.for_each_neighbor(NodeId(root), &mut |w| ns.push(w));
        stack.push((NodeId(root), ns, 0));

        while let Some((v, ns, i)) = stack.last_mut() {
            let v = *v;
            if *i < ns.len() {
                let w = ns[*i];
                *i += 1;
                if disc[w.index()] == 0 {
                    // Tree edge.
                    if v.index() == root {
                        root_children += 1;
                    }
                    parent[w.index()] = Some(v);
                    timer += 1;
                    disc[w.index()] = timer;
                    low[w.index()] = timer;
                    let mut wns = Vec::new();
                    adj.for_each_neighbor(w, &mut |x| wns.push(x));
                    stack.push((w, wns, 0));
                } else if Some(w) != parent[v.index()] {
                    // Back edge (simple graph: at most one edge to parent).
                    low[v.index()] = low[v.index()].min(disc[w.index()]);
                }
            } else {
                stack.pop();
                if let Some((p, _, _)) = stack.last() {
                    let p = *p;
                    low[p.index()] = low[p.index()].min(low[v.index()]);
                    if low[v.index()] > disc[p.index()] {
                        bridges.push(Edge::new(p, v));
                    }
                    if p.index() != root && low[v.index()] >= disc[p.index()] {
                        is_cut[p.index()] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_cut[root] = true;
        }
    }

    let articulation_points = is_cut
        .iter()
        .enumerate()
        .filter(|(_, &c)| c)
        .map(|(i, _)| NodeId(i))
        .collect();
    bridges.sort();
    CutReport {
        articulation_points,
        bridges,
    }
}

/// Returns `true` if the connected graph has no articulation point
/// (2-node-connected for n ≥ 3).
#[must_use]
pub fn is_biconnected<A: Adjacency + ?Sized>(adj: &A) -> bool {
    crate::components::is_connected(adj) && cut_report(adj).articulation_points.is_empty()
}

/// Returns `true` if the connected graph has no bridge (2-edge-connected).
#[must_use]
pub fn is_bridgeless<A: Adjacency + ?Sized>(adj: &A) -> bool {
    crate::components::is_connected(adj) && cut_report(adj).bridges.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i - 1), NodeId(i));
        }
        g
    }

    fn cycle(n: usize) -> Graph {
        let mut g = path(n);
        g.add_edge(NodeId(n - 1), NodeId(0));
        g
    }

    #[test]
    fn path_interior_nodes_are_cut_vertices_and_all_edges_bridges() {
        let g = path(4);
        let r = cut_report(&g);
        assert_eq!(r.articulation_points, vec![NodeId(1), NodeId(2)]);
        assert_eq!(r.bridges.len(), 3);
        assert!(!is_biconnected(&g));
        assert!(!is_bridgeless(&g));
    }

    #[test]
    fn cycle_has_no_cuts() {
        let g = cycle(5);
        let r = cut_report(&g);
        assert!(r.articulation_points.is_empty());
        assert!(r.bridges.is_empty());
        assert!(is_biconnected(&g));
        assert!(is_bridgeless(&g));
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        // Triangles {0,1,2} and {2,3,4}: node 2 is the articulation point.
        let g = Graph::from_edges(
            0,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(4)),
                (NodeId(2), NodeId(4)),
            ],
        );
        let r = cut_report(&g);
        assert_eq!(r.articulation_points, vec![NodeId(2)]);
        assert!(r.bridges.is_empty());
    }

    #[test]
    fn barbell_bridge() {
        // Triangle - bridge - triangle.
        let g = Graph::from_edges(
            0,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(4)),
                (NodeId(4), NodeId(5)),
                (NodeId(3), NodeId(5)),
            ],
        );
        let r = cut_report(&g);
        assert_eq!(r.bridges, vec![Edge::new(NodeId(2), NodeId(3))]);
        assert_eq!(r.articulation_points, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn star_center_is_cut_vertex() {
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i));
        }
        let r = cut_report(&g);
        assert_eq!(r.articulation_points, vec![NodeId(0)]);
        assert_eq!(r.bridges.len(), 4);
    }

    #[test]
    fn disconnected_graph_reports_per_component() {
        // Path 0-1-2 plus isolated triangle 3-4-5.
        let g = Graph::from_edges(
            0,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(3), NodeId(4)),
                (NodeId(4), NodeId(5)),
                (NodeId(3), NodeId(5)),
            ],
        );
        let r = cut_report(&g);
        assert_eq!(r.articulation_points, vec![NodeId(1)]);
        assert_eq!(r.bridges.len(), 2);
        assert!(
            !is_biconnected(&g),
            "disconnected graphs are not biconnected"
        );
    }

    #[test]
    fn complete_graph_has_no_cuts() {
        let mut g = Graph::with_nodes(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        let r = cut_report(&g);
        assert!(r.articulation_points.is_empty());
        assert!(r.bridges.is_empty());
    }

    #[test]
    fn empty_and_singleton() {
        assert!(is_biconnected(&Graph::new()));
        assert!(is_biconnected(&Graph::with_nodes(1)));
        let r = cut_report(&Graph::with_nodes(1));
        assert!(r.articulation_points.is_empty());
        assert!(r.bridges.is_empty());
    }
}
