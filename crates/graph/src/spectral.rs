//! Spectral expansion estimates by power iteration.
//!
//! The related-work overlays (Law–Siu random expanders) justify their
//! logarithmic diameter spectrally; for the comparison experiments we
//! estimate the **second-largest eigenvalue modulus** (SLEM) of the lazy
//! random-walk matrix `W = (I + D⁻¹A)/2`. A small SLEM (large spectral gap
//! `1 − SLEM`) certifies fast mixing/expansion; values near 1 indicate
//! bottlenecks — e.g. ring-like graphs.
//!
//! Everything here is plain `f64` power iteration with deflation against
//! the known stationary distribution; no external linear algebra.

use crate::traversal::Adjacency;
use crate::NodeId;

/// Result of the SLEM estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralEstimate {
    /// Estimated second-largest eigenvalue modulus of the lazy walk matrix.
    pub slem: f64,
    /// Spectral gap `1 − slem`.
    pub gap: f64,
    /// Power-iteration steps actually used.
    pub iterations: usize,
}

/// Estimates the SLEM of the lazy random walk on `adj` by deflated power
/// iteration (`iters` steps, deterministic start vector).
///
/// Intended for connected graphs; when two or more components *carry
/// edges*, the estimate approaches 1 (a component indicator is an
/// eigenfunction). Isolated (degree-0) vertices have zero stationary
/// weight and are invisible to the walk — the usual convention, since a
/// random walk is undefined on them. Accuracy is the usual power-iteration
/// behavior: good when the second and third eigenvalues are separated.
///
/// # Panics
///
/// Panics if the graph has no nodes or `iters == 0`.
#[must_use]
pub fn slem_estimate<A: Adjacency + ?Sized>(adj: &A, iters: usize) -> SpectralEstimate {
    let n = adj.node_count();
    assert!(n > 0, "need at least one node");
    assert!(iters > 0, "need at least one iteration");

    let degrees: Vec<f64> = (0..n).map(|v| adj.degree_of(NodeId(v)) as f64).collect();
    let total_degree: f64 = degrees.iter().sum();
    if total_degree == 0.0 {
        // Edgeless graph: the walk is the identity; SLEM is 1 for n > 1.
        let slem = if n > 1 { 1.0 } else { 0.0 };
        return SpectralEstimate {
            slem,
            gap: 1.0 - slem,
            iterations: 0,
        };
    }
    // Stationary distribution of the (lazy) walk: π_v ∝ deg(v).
    let pi: Vec<f64> = degrees.iter().map(|d| d / total_degree).collect();

    // Deterministic, non-constant start vector.
    let mut x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7391).sin()).collect();

    let mut lambda = 0.0;
    let mut used = 0;
    for it in 0..iters {
        // Deflate the top eigenvector: remove the component along the
        // all-ones function under the π inner product (⟨x, 1⟩_π = Σ π_v x_v).
        let mean: f64 = x.iter().zip(&pi).map(|(xi, pi)| xi * pi).sum();
        for xi in &mut x {
            *xi -= mean;
        }
        // y = W x with W = (I + D^{-1} A)/2.
        let mut y = vec![0.0f64; n];
        for v in 0..n {
            let mut acc = 0.0;
            adj.for_each_neighbor(NodeId(v), &mut |w| acc += x[w.index()]);
            let d = degrees[v];
            y[v] = if d > 0.0 {
                0.5 * x[v] + 0.5 * acc / d
            } else {
                x[v]
            };
        }
        // Rayleigh-style growth estimate under the π norm.
        let norm_x: f64 = x
            .iter()
            .zip(&pi)
            .map(|(xi, pi)| xi * xi * pi)
            .sum::<f64>()
            .sqrt();
        let norm_y: f64 = y
            .iter()
            .zip(&pi)
            .map(|(yi, pi)| yi * yi * pi)
            .sum::<f64>()
            .sqrt();
        used = it + 1;
        if norm_x <= f64::EPSILON {
            lambda = 0.0;
            break;
        }
        lambda = norm_y / norm_x;
        // Normalize for the next step.
        let scale = if norm_y > f64::EPSILON {
            1.0 / norm_y
        } else {
            1.0
        };
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi * scale;
        }
    }
    let slem = lambda.clamp(0.0, 1.0);
    SpectralEstimate {
        slem,
        gap: 1.0 - slem,
        iterations: used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        g
    }

    #[test]
    fn complete_graph_has_large_gap() {
        // Lazy walk on K_n: eigenvalues {1, (1 - 1/(n-1))/2 ...}; SLEM of
        // K_6 lazy walk = (1 + (-1/5))/2 = 0.4.
        let est = slem_estimate(&complete(6), 300);
        assert!((est.slem - 0.4).abs() < 0.02, "K_6 slem {}", est.slem);
        assert!(est.gap > 0.5);
    }

    #[test]
    fn long_cycle_has_tiny_gap() {
        // Lazy walk on C_n: SLEM = (1 + cos(2π/n))/2 -> 1 as n grows.
        let est = slem_estimate(&cycle(40), 600);
        let expected = (1.0 + (2.0 * std::f64::consts::PI / 40.0).cos()) / 2.0;
        assert!(
            (est.slem - expected).abs() < 0.01,
            "C_40: {} vs {}",
            est.slem,
            expected
        );
        assert!(est.gap < 0.02);
    }

    #[test]
    fn expander_beats_cycle_at_equal_size() {
        let cycle_gap = slem_estimate(&cycle(60), 500).gap;
        // 4-regular circulant with long chords is a much better expander
        // than the bare cycle.
        let mut chord = cycle(60);
        for i in 0..60 {
            chord.add_edge(NodeId(i), NodeId((i + 23) % 60));
        }
        let chord_gap = slem_estimate(&chord, 500).gap;
        assert!(
            chord_gap > 5.0 * cycle_gap,
            "chorded gap {chord_gap} vs cycle gap {cycle_gap}"
        );
    }

    #[test]
    fn disconnected_graph_has_no_gap() {
        let mut g = cycle(4);
        g.add_nodes(4);
        for (a, b) in [(4, 5), (5, 6), (6, 7), (7, 4)] {
            g.add_edge(NodeId(a), NodeId(b));
        }
        let est = slem_estimate(&g, 400);
        assert!(est.slem > 0.99, "two components: slem {}", est.slem);
    }

    #[test]
    fn trivial_graphs() {
        let est = slem_estimate(&Graph::with_nodes(1), 10);
        assert_eq!(est.slem, 0.0);
        let est = slem_estimate(&Graph::with_nodes(3), 10);
        assert_eq!(est.slem, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_graph_rejected() {
        let _ = slem_estimate(&Graph::new(), 10);
    }
}
