//! Immutable compressed-sparse-row (CSR) snapshot of a graph.

use crate::{Graph, NodeId};

/// Immutable CSR adjacency snapshot.
///
/// The flooding simulator and the all-pairs BFS sweeps run millions of
/// neighbor scans; a CSR layout keeps those scans cache-friendly and free of
/// per-node allocation. Build one with [`CsrGraph::from_graph`] (or
/// `From<&Graph>`) once the topology is final.
///
/// Neighbor lists are sorted ascending, mirroring [`Graph`]'s deterministic
/// iteration order.
///
/// # Example
///
/// ```
/// use lhg_graph::{CsrGraph, Graph, NodeId};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1));
/// g.add_edge(NodeId(1), NodeId(2));
/// let csr = CsrGraph::from_graph(&g);
/// assert_eq!(csr.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
/// assert_eq!(csr.degree(NodeId(1)), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    edge_count: usize,
}

#[cfg(feature = "serde")]
serde::impl_serde_struct!(CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    edge_count: usize
});

impl CsrGraph {
    /// Builds a CSR snapshot of `graph`.
    #[must_use]
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0);
        for v in graph.nodes() {
            targets.extend(graph.neighbors(v));
            offsets.push(targets.len());
        }
        CsrGraph {
            offsets,
            targets,
            edge_count: graph.edge_count(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sorted neighbor slice of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        assert!(i < self.node_count(), "node {node} out of bounds");
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Returns `true` if the edge `(a, b)` exists (binary search).
    #[must_use]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        a.index() < self.node_count()
            && b.index() < self.node_count()
            && self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.node_count()).map(NodeId)
    }

    /// Reconstructs a mutable [`Graph`] with identical topology.
    #[must_use]
    pub fn to_graph(&self) -> Graph {
        let mut g = Graph::with_nodes(self.node_count());
        for v in self.nodes() {
            for &w in self.neighbors(v) {
                if v < w {
                    g.add_edge(v, w);
                }
            }
        }
        g
    }
}

impl From<&Graph> for CsrGraph {
    fn from(graph: &Graph) -> Self {
        CsrGraph::from_graph(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(
            0,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
            ],
        )
    }

    #[test]
    fn counts_match_source() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.edge_count(), g.edge_count());
    }

    #[test]
    fn neighbors_match_source_and_are_sorted() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        for v in g.nodes() {
            let want: Vec<_> = g.neighbors(v).collect();
            assert_eq!(csr.neighbors(v), want.as_slice());
            assert!(csr.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn has_edge_agrees_with_source() {
        let g = sample();
        let csr = CsrGraph::from_graph(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                assert_eq!(csr.has_edge(a, b), g.has_edge(a, b), "({a}, {b})");
            }
        }
        assert!(!csr.has_edge(NodeId(0), NodeId(99)));
    }

    #[test]
    fn round_trip_to_graph() {
        let g = sample();
        let back = CsrGraph::from_graph(&g).to_graph();
        assert_eq!(g, back);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::new();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.to_graph(), g);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn neighbors_panics_out_of_bounds() {
        let csr = CsrGraph::from_graph(&Graph::with_nodes(1));
        let _ = csr.neighbors(NodeId(1));
    }
}
