//! Betweenness centrality (Brandes' algorithm, unweighted).
//!
//! In a flooding overlay, a node's betweenness approximates the share of
//! shortest-path traffic it relays; the *distribution* of betweenness shows
//! how evenly a topology spreads forwarding load. Trees concentrate all
//! load on the root; Harary rings spread it perfectly but pay linear
//! latency; LHGs sit in between (experiment E21).

use std::collections::VecDeque;

use crate::traversal::Adjacency;
use crate::NodeId;

/// Exact betweenness centrality of every node (unnormalized, undirected:
/// each pair counted once).
///
/// Runs Brandes' algorithm: one BFS + dependency accumulation per source,
/// `O(n·m)` total.
#[must_use]
pub fn betweenness<A: Adjacency + ?Sized>(adj: &A) -> Vec<f64> {
    let n = adj.node_count();
    let mut centrality = vec![0.0f64; n];

    for s in 0..n {
        // BFS computing distance, shortest-path counts and predecessors.
        let mut dist = vec![u32::MAX; n];
        let mut sigma = vec![0.0f64; n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut order: Vec<usize> = Vec::with_capacity(n);
        dist[s] = 0;
        sigma[s] = 1.0;
        let mut q = VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            order.push(v);
            adj.for_each_neighbor(NodeId(v), &mut |w| {
                let w = w.index();
                if dist[w] == u32::MAX {
                    dist[w] = dist[v] + 1;
                    q.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            });
        }
        // Dependency accumulation in reverse BFS order.
        let mut delta = vec![0.0f64; n];
        for &w in order.iter().rev() {
            for &v in &preds[w] {
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
            }
            if w != s {
                centrality[w] += delta[w];
            }
        }
    }
    // Each undirected pair was counted twice (once per endpoint as source).
    for c in &mut centrality {
        *c /= 2.0;
    }
    centrality
}

/// Summary of a betweenness distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadProfile {
    /// Largest betweenness.
    pub max: f64,
    /// Mean betweenness.
    pub mean: f64,
    /// Max/mean ratio — 1.0 is perfectly balanced forwarding load.
    pub imbalance: f64,
}

/// Computes the [`LoadProfile`] of `adj`.
///
/// # Panics
///
/// Panics if the graph has no nodes.
#[must_use]
pub fn load_profile<A: Adjacency + ?Sized>(adj: &A) -> LoadProfile {
    let c = betweenness(adj);
    assert!(!c.is_empty(), "need at least one node");
    let max = c.iter().copied().fold(0.0f64, f64::max);
    let mean = c.iter().sum::<f64>() / c.len() as f64;
    let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
    LoadProfile {
        max,
        mean,
        imbalance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i - 1), NodeId(i));
        }
        g
    }

    fn cycle(n: usize) -> Graph {
        let mut g = path(n);
        g.add_edge(NodeId(n - 1), NodeId(0));
        g
    }

    #[test]
    fn path_betweenness_is_quadratic_in_the_middle() {
        // P_5: node i lies on (i)(n-1-i) shortest paths.
        let c = betweenness(&path(5));
        assert_eq!(c, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_center_carries_all_load() {
        let mut g = Graph::with_nodes(6);
        for i in 1..6 {
            g.add_edge(NodeId(0), NodeId(i));
        }
        let c = betweenness(&g);
        // C(5,2) = 10 leaf pairs all route through the hub.
        assert_eq!(c[0], 10.0);
        assert!(c[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cycle_load_is_uniform() {
        let c = betweenness(&cycle(8));
        for &x in &c {
            assert!((x - c[0]).abs() < 1e-9, "{c:?}");
        }
        let p = load_profile(&cycle(8));
        assert!((p.imbalance - 1.0).abs() < 1e-9);
    }

    #[test]
    fn even_cycle_split_paths_counted_fractionally() {
        // C_4: opposite pairs have 2 shortest paths, each middle node gets
        // 0.5 per pair; total per node = 0.5.
        let c = betweenness(&cycle(4));
        for &x in &c {
            assert!((x - 0.5).abs() < 1e-9, "{c:?}");
        }
    }

    #[test]
    fn complete_graph_has_zero_betweenness() {
        let mut g = Graph::with_nodes(5);
        for i in 0..5 {
            for j in (i + 1)..5 {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        assert!(betweenness(&g).iter().all(|&x| x == 0.0));
        assert_eq!(load_profile(&g).imbalance, 1.0);
    }

    #[test]
    fn disconnected_components_do_not_interact() {
        // Two disjoint paths of 3: middles get 1.0 each.
        let mut g = Graph::with_nodes(6);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(3), NodeId(4));
        g.add_edge(NodeId(4), NodeId(5));
        let c = betweenness(&g);
        assert_eq!(c, vec![0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn barbell_bridge_endpoints_dominate() {
        // Triangle - bridge - triangle: bridge endpoints carry cross
        // traffic.
        let g = Graph::from_edges(
            0,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(4)),
                (NodeId(4), NodeId(5)),
                (NodeId(3), NodeId(5)),
            ],
        );
        let c = betweenness(&g);
        assert!(c[2] > c[0] && c[2] > c[1]);
        assert!(c[3] > c[4] && c[3] > c[5]);
        let p = load_profile(&g);
        assert!(p.imbalance > 1.5);
    }
}
