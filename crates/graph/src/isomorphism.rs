//! Exact graph isomorphism for small graphs (backtracking with degree and
//! neighborhood pruning).
//!
//! Used by the reproduction's golden tests to assert that constructed
//! graphs match their paper descriptions up to relabeling — e.g. the
//! smallest K-TREE graph (6,3) *is* K_{3,3} and every k=2 construction at a
//! regular point *is* a cycle. Intended for graphs up to a few dozen nodes;
//! the search is exponential in the worst case.

use crate::Graph;

/// Returns `true` if `a` and `b` are isomorphic (equal up to node
/// relabeling).
///
/// Runs a degree-pruned backtracking search; fine for the small graphs the
/// tests compare, unsuitable for large instances.
#[must_use]
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    isomorphism(a, b).is_some()
}

/// Finds an isomorphism `a → b` as a mapping vector (`map[i]` is the b-node
/// matched to a-node `i`), or `None` if the graphs are not isomorphic.
#[must_use]
pub fn isomorphism(a: &Graph, b: &Graph) -> Option<Vec<usize>> {
    let n = a.node_count();
    if n != b.node_count() || a.edge_count() != b.edge_count() {
        return None;
    }
    if n == 0 {
        return Some(Vec::new());
    }

    // Quick reject: sorted degree sequences must match.
    let deg_a: Vec<usize> = (0..n).map(|v| a.degree(crate::NodeId(v))).collect();
    let deg_b: Vec<usize> = (0..n).map(|v| b.degree(crate::NodeId(v))).collect();
    let mut sa = deg_a.clone();
    let mut sb = deg_b.clone();
    sa.sort_unstable();
    sb.sort_unstable();
    if sa != sb {
        return None;
    }

    // Adjacency bitsets for O(1) edge checks.
    let adj = |g: &Graph| -> Vec<Vec<bool>> {
        let mut m = vec![vec![false; n]; n];
        for e in g.edges() {
            m[e.a.index()][e.b.index()] = true;
            m[e.b.index()][e.a.index()] = true;
        }
        m
    };
    let adj_a = adj(a);
    let adj_b = adj(b);

    // Order a-nodes by descending degree (most constrained first).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(deg_a[v]));

    let mut map = vec![usize::MAX; n]; // a -> b
    let mut used = vec![false; n]; // b side
    if backtrack(
        0, &order, &deg_a, &deg_b, &adj_a, &adj_b, &mut map, &mut used,
    ) {
        Some(map)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    depth: usize,
    order: &[usize],
    deg_a: &[usize],
    deg_b: &[usize],
    adj_a: &[Vec<bool>],
    adj_b: &[Vec<bool>],
    map: &mut Vec<usize>,
    used: &mut Vec<bool>,
) -> bool {
    if depth == order.len() {
        return true;
    }
    let v = order[depth];
    for w in 0..deg_b.len() {
        if used[w] || deg_a[v] != deg_b[w] {
            continue;
        }
        // Consistency with already-mapped nodes.
        let consistent = order[..depth]
            .iter()
            .all(|&u| adj_a[v][u] == adj_b[w][map[u]]);
        if !consistent {
            continue;
        }
        map[v] = w;
        used[w] = true;
        if backtrack(depth + 1, order, deg_a, deg_b, adj_a, adj_b, map, used) {
            return true;
        }
        map[v] = usize::MAX;
        used[w] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    fn relabel(g: &Graph, perm: &[usize]) -> Graph {
        let mut h = Graph::with_nodes(g.node_count());
        for e in g.edges() {
            h.add_edge(NodeId(perm[e.a.index()]), NodeId(perm[e.b.index()]));
        }
        h
    }

    #[test]
    fn graph_is_isomorphic_to_its_relabeling() {
        let g = cycle(7);
        let h = relabel(&g, &[3, 5, 0, 6, 1, 4, 2]);
        assert!(are_isomorphic(&g, &h));
        let map = isomorphism(&g, &h).unwrap();
        // The map must preserve adjacency.
        for e in g.edges() {
            assert!(h.has_edge(NodeId(map[e.a.index()]), NodeId(map[e.b.index()])));
        }
    }

    #[test]
    fn different_sizes_are_not_isomorphic() {
        assert!(!are_isomorphic(&cycle(5), &cycle(6)));
        assert!(!are_isomorphic(
            &Graph::with_nodes(3),
            &Graph::with_nodes(4)
        ));
    }

    #[test]
    fn same_degree_sequence_different_structure() {
        // C_6 vs two triangles: both 2-regular on 6 nodes.
        let c6 = cycle(6);
        let mut tri2 = Graph::with_nodes(6);
        for (a, b) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            tri2.add_edge(NodeId(a), NodeId(b));
        }
        assert!(!are_isomorphic(&c6, &tri2));
    }

    #[test]
    fn k33_detection() {
        // K_{3,3} with two different labelings.
        let mut a = Graph::with_nodes(6);
        for i in 0..3 {
            for j in 3..6 {
                a.add_edge(NodeId(i), NodeId(j));
            }
        }
        let b = relabel(&a, &[0, 2, 4, 1, 3, 5]);
        assert!(are_isomorphic(&a, &b));
        // K_{3,3} vs the 3-prism (both 3-regular on 6 nodes): not isomorphic
        // (the prism has triangles).
        let mut prism = Graph::with_nodes(6);
        for (x, y) in [
            (0, 1),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (0, 3),
            (1, 4),
            (2, 5),
        ] {
            prism.add_edge(NodeId(x), NodeId(y));
        }
        assert!(!are_isomorphic(&a, &prism));
    }

    #[test]
    fn empty_graphs_are_isomorphic() {
        assert!(are_isomorphic(&Graph::new(), &Graph::new()));
        assert!(are_isomorphic(&Graph::with_nodes(3), &Graph::with_nodes(3)));
    }

    #[test]
    fn petersen_is_isomorphic_to_kneser_5_2() {
        // Petersen standard drawing vs Kneser graph K(5,2) construction:
        // vertices = 2-subsets of {0..4}, edges between disjoint subsets.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let mut pet = Graph::with_nodes(10);
        for (a, b) in outer.iter().chain(&spokes).chain(&inner) {
            pet.add_edge(NodeId(*a), NodeId(*b));
        }

        let subsets: Vec<(usize, usize)> = (0..5)
            .flat_map(|i| ((i + 1)..5).map(move |j| (i, j)))
            .collect();
        let mut kneser = Graph::with_nodes(10);
        for (i, &(a1, a2)) in subsets.iter().enumerate() {
            for (j, &(b1, b2)) in subsets.iter().enumerate().skip(i + 1) {
                if a1 != b1 && a1 != b2 && a2 != b1 && a2 != b2 {
                    kneser.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        assert!(are_isomorphic(&pet, &kneser));
    }
}
