//! # lhg-graph
//!
//! Undirected graph substrate for the Logarithmic Harary Graph (LHG)
//! reproduction.
//!
//! The LHG paper (Jenkins & Demers, ICDCS 2001) and its follow-up study
//! constructions whose correctness is stated in terms of exact graph
//! invariants: *k-node connectivity*, *k-link connectivity*, *link
//! minimality*, *logarithmic diameter* and *k-regularity*. This crate
//! provides everything needed to construct graphs and to check those
//! invariants exactly:
//!
//! * [`Graph`] — a mutable undirected simple graph over dense node ids, with
//!   deterministic (sorted) neighbor iteration;
//! * [`CsrGraph`] — an immutable compressed-sparse-row snapshot used by the
//!   hot paths (BFS sweeps, flooding simulation);
//! * [`traversal`] — BFS/DFS primitives;
//! * [`paths`] — eccentricity, diameter, radius, average path length;
//! * [`components`] — connected components;
//! * [`cuts`] — articulation points and bridges (Tarjan low-link);
//! * [`flow`] — Dinic max-flow on unit-capacity networks;
//! * [`connectivity`] — exact edge and vertex connectivity via Menger's
//!   theorem (max-flow formulations), with early-exit `≥ k` variants;
//! * [`degree`] — degree statistics, regularity and density checks;
//! * [`subgraph`] — node/edge deletion views used for failure injection;
//! * [`io`] — DOT export and a plain edge-list text format.
//!
//! # Example
//!
//! ```
//! use lhg_graph::{Graph, NodeId};
//!
//! // Build a 4-cycle and check its basic invariants.
//! let mut g = Graph::with_nodes(4);
//! g.add_edge(NodeId(0), NodeId(1));
//! g.add_edge(NodeId(1), NodeId(2));
//! g.add_edge(NodeId(2), NodeId(3));
//! g.add_edge(NodeId(3), NodeId(0));
//!
//! assert_eq!(g.edge_count(), 4);
//! assert!(lhg_graph::components::is_connected(&g));
//! assert_eq!(lhg_graph::paths::diameter(&g), Some(2));
//! assert_eq!(lhg_graph::connectivity::vertex_connectivity(&g), 2);
//! assert_eq!(lhg_graph::connectivity::edge_connectivity(&g), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod error;
mod graph;
mod node;

pub mod betweenness;
pub mod components;
pub mod connectivity;
pub mod cuts;
pub mod degree;
pub mod disjoint_paths;
pub mod flow;
pub mod io;
pub mod isomorphism;
pub mod metrics;
pub mod paths;
pub mod spectral;
pub mod subgraph;
pub mod traversal;

pub use csr::CsrGraph;
pub use error::GraphError;
pub use graph::{Edge, Graph};
pub use node::NodeId;
