//! Exact vertex and edge connectivity via Menger's theorem.
//!
//! LHG property P1 requires *k-node connectivity* and P2 *k-link
//! connectivity*. Both are computed exactly here by max-flow reductions:
//!
//! * **edge connectivity** — each undirected edge becomes a pair of opposed
//!   unit-capacity arcs; λ(s,t) is the s→t max flow, and the global value is
//!   `min over t≠0 of λ(0, t)` (any global minimum edge cut separates node 0
//!   from something).
//! * **vertex connectivity** — the standard node-splitting network (each
//!   vertex `v` becomes `v_in → v_out` with capacity 1) plus Even's pair
//!   selection: with `v` a minimum-degree vertex, the global value is the
//!   minimum of κ(v, w) over non-neighbors `w` of `v` and κ(x, y) over
//!   non-adjacent pairs of neighbors of `v` (or `n − 1` for complete graphs).
//!
//! `is_k_*_connected` variants cap every flow at `k` for an early exit —
//! the validators only need the yes/no answer.

use crate::flow::FlowNetwork;
use crate::graph::Edge;
use crate::{Graph, NodeId};

/// Large finite stand-in for infinite capacity; flows here never exceed the
/// node count, so `node_count + 1` is safely "infinite".
fn inf_cap(g: &Graph) -> u64 {
    g.node_count() as u64 + 1
}

/// Returns `true` if every pair of distinct nodes is adjacent.
#[must_use]
pub fn is_complete(g: &Graph) -> bool {
    let n = g.node_count();
    g.edge_count() == n * n.saturating_sub(1) / 2
}

// ---------------------------------------------------------------------------
// Edge connectivity
// ---------------------------------------------------------------------------

fn edge_flow_network(g: &Graph) -> FlowNetwork {
    let mut net = FlowNetwork::new(g.node_count());
    for e in g.edges() {
        net.add_edge(e.a.index(), e.b.index(), 1);
        net.add_edge(e.b.index(), e.a.index(), 1);
    }
    net
}

/// Maximum number of edge-disjoint paths between `s` and `t` (Menger), the
/// local edge connectivity λ(s, t). Capped at `cap` if provided.
///
/// # Panics
///
/// Panics if `s == t` or either is out of bounds.
#[must_use]
pub fn local_edge_connectivity(g: &Graph, s: NodeId, t: NodeId, cap: Option<usize>) -> usize {
    let mut net = edge_flow_network(g);
    let cap = cap.map_or(u64::MAX, |c| c as u64);
    net.max_flow_capped(s.index(), t.index(), cap) as usize
}

/// Global edge connectivity λ(G): the minimum number of edges whose removal
/// disconnects the graph. Returns 0 for disconnected graphs and for graphs
/// with fewer than two nodes.
#[must_use]
pub fn edge_connectivity(g: &Graph) -> usize {
    let n = g.node_count();
    if n < 2 || !crate::components::is_connected(g) {
        return 0;
    }
    let mut best = g.degree(NodeId(0)); // λ ≤ min degree ≤ deg(0)
    for t in 1..n {
        if best == 0 {
            break;
        }
        best = best.min(local_edge_connectivity(g, NodeId(0), NodeId(t), Some(best)));
    }
    best
}

/// Returns `true` if λ(G) ≥ k, i.e. removing any k−1 edges leaves the graph
/// connected. `k == 0` is vacuously true.
#[must_use]
pub fn is_k_edge_connected(g: &Graph, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    let n = g.node_count();
    if n < 2 {
        return false;
    }
    if g.nodes().any(|v| g.degree(v) < k) {
        return false; // min degree bounds λ
    }
    if !crate::components::is_connected(g) {
        return false;
    }
    (1..n).all(|t| local_edge_connectivity(g, NodeId(0), NodeId(t), Some(k)) >= k)
}

/// A minimum edge cut: a smallest set of edges whose removal disconnects the
/// graph. `None` when no cut exists (fewer than two nodes); the empty vector
/// when the graph is already disconnected.
#[must_use]
pub fn min_edge_cut(g: &Graph) -> Option<Vec<Edge>> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    if !crate::components::is_connected(g) {
        return Some(Vec::new());
    }
    // Find the argmin target, then extract the cut from the residual graph.
    let mut best = usize::MAX;
    let mut best_t = NodeId(1);
    for t in 1..n {
        let lam = local_edge_connectivity(g, NodeId(0), NodeId(t), Some(best));
        if lam < best {
            best = lam;
            best_t = NodeId(t);
        }
    }
    let mut net = edge_flow_network(g);
    net.max_flow(0, best_t.index());
    // Residual-reachable set from the source = source side of a min cut.
    let reach = net.residual_reachable(0);
    let cut: Vec<Edge> = g
        .edges()
        .filter(|e| reach[e.a.index()] != reach[e.b.index()])
        .collect();
    debug_assert_eq!(cut.len(), best);
    Some(cut)
}

// ---------------------------------------------------------------------------
// Vertex connectivity
// ---------------------------------------------------------------------------

/// Builds the node-split network. Returns (network, in-index fn offset).
/// For vertex v: in = 2v, out = 2v + 1.
fn vertex_flow_network(g: &Graph, s: NodeId, t: NodeId) -> FlowNetwork {
    let n = g.node_count();
    let inf = inf_cap(g);
    let mut net = FlowNetwork::new(2 * n);
    for v in g.nodes() {
        let cap = if v == s || v == t { inf } else { 1 };
        net.add_edge(2 * v.index(), 2 * v.index() + 1, cap);
    }
    for e in g.edges() {
        net.add_edge(2 * e.a.index() + 1, 2 * e.b.index(), inf);
        net.add_edge(2 * e.b.index() + 1, 2 * e.a.index(), inf);
    }
    net
}

/// Maximum number of internally vertex-disjoint paths between non-adjacent
/// `s` and `t` (Menger), the local vertex connectivity κ(s, t). Capped at
/// `cap` if provided.
///
/// # Panics
///
/// Panics if `s == t`, if either is out of bounds, or if `s` and `t` are
/// adjacent (κ is unbounded by Menger for adjacent pairs).
#[must_use]
pub fn local_vertex_connectivity(g: &Graph, s: NodeId, t: NodeId, cap: Option<usize>) -> usize {
    assert!(
        !g.has_edge(s, t),
        "local vertex connectivity requires non-adjacent endpoints"
    );
    assert_ne!(s, t, "endpoints must be distinct");
    let mut net = vertex_flow_network(g, s, t);
    let cap = cap.map_or(u64::MAX, |c| c as u64);
    net.max_flow_capped(2 * s.index() + 1, 2 * t.index(), cap) as usize
}

/// The pairs Even's algorithm must inspect, given min-degree vertex `v`.
fn even_pairs(g: &Graph, v: NodeId) -> Vec<(NodeId, NodeId)> {
    let mut pairs = Vec::new();
    for w in g.nodes() {
        if w != v && !g.has_edge(v, w) {
            pairs.push((v, w));
        }
    }
    let neighbors: Vec<NodeId> = g.neighbors(v).collect();
    for (i, &x) in neighbors.iter().enumerate() {
        for &y in &neighbors[i + 1..] {
            if !g.has_edge(x, y) {
                pairs.push((x, y));
            }
        }
    }
    pairs
}

/// Global vertex connectivity κ(G): the minimum number of vertices whose
/// removal disconnects the graph (or `n − 1` for complete graphs). Returns
/// 0 for disconnected graphs and graphs with fewer than two nodes.
#[must_use]
pub fn vertex_connectivity(g: &Graph) -> usize {
    let n = g.node_count();
    if n < 2 || !crate::components::is_connected(g) {
        return 0;
    }
    if is_complete(g) {
        return n - 1;
    }
    let v = g.nodes().min_by_key(|&v| g.degree(v)).expect("nonempty");
    let mut best = g.degree(v); // κ ≤ δ
    for (s, t) in even_pairs(g, v) {
        if best == 0 {
            break;
        }
        best = best.min(local_vertex_connectivity(g, s, t, Some(best)));
    }
    best
}

/// Returns `true` if κ(G) ≥ k, i.e. removing any k−1 vertices leaves the
/// graph connected. `k == 0` is vacuously true.
#[must_use]
pub fn is_k_vertex_connected(g: &Graph, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    let n = g.node_count();
    if n < 2 || n <= k {
        // κ(G) ≤ n − 1 always, so κ ≥ k needs n ≥ k + 1.
        return false;
    }
    if g.nodes().any(|v| g.degree(v) < k) {
        return false;
    }
    if !crate::components::is_connected(g) {
        return false;
    }
    if is_complete(g) {
        return n > k;
    }
    let v = g.nodes().min_by_key(|&v| g.degree(v)).expect("nonempty");
    even_pairs(g, v)
        .into_iter()
        .all(|(s, t)| local_vertex_connectivity(g, s, t, Some(k)) >= k)
}

/// A minimum vertex cut: a smallest vertex set whose removal disconnects the
/// graph. `None` for complete graphs and graphs with fewer than two nodes
/// (no cut exists); the empty vector when already disconnected.
#[must_use]
pub fn min_vertex_cut(g: &Graph) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    if n < 2 || is_complete(g) {
        return None;
    }
    if !crate::components::is_connected(g) {
        return Some(Vec::new());
    }
    let v = g.nodes().min_by_key(|&v| g.degree(v)).expect("nonempty");
    let mut best = usize::MAX;
    let mut best_pair = None;
    for (s, t) in even_pairs(g, v) {
        let kappa = local_vertex_connectivity(g, s, t, Some(best));
        if kappa < best {
            best = kappa;
            best_pair = Some((s, t));
        }
    }
    let (s, t) = best_pair.expect("non-complete connected graph has a non-adjacent pair");
    let mut net = vertex_flow_network(g, s, t);
    net.max_flow(2 * s.index() + 1, 2 * t.index());
    let reach = net.residual_reachable(2 * s.index() + 1);
    // A vertex v is in the cut iff its in-node is reachable but its out-node
    // is not (the unit in→out arc is saturated and crosses the cut).
    let cut: Vec<NodeId> = g
        .nodes()
        .filter(|&w| w != s && w != t && reach[2 * w.index()] && !reach[2 * w.index() + 1])
        .collect();
    debug_assert_eq!(cut.len(), best);
    Some(cut)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        g
    }

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i - 1), NodeId(i));
        }
        g
    }

    #[test]
    fn cycle_is_exactly_2_connected() {
        let g = cycle(8);
        assert_eq!(vertex_connectivity(&g), 2);
        assert_eq!(edge_connectivity(&g), 2);
        assert!(is_k_vertex_connected(&g, 2));
        assert!(!is_k_vertex_connected(&g, 3));
        assert!(is_k_edge_connected(&g, 2));
        assert!(!is_k_edge_connected(&g, 3));
    }

    #[test]
    fn path_is_exactly_1_connected() {
        let g = path(5);
        assert_eq!(vertex_connectivity(&g), 1);
        assert_eq!(edge_connectivity(&g), 1);
    }

    #[test]
    fn complete_graph_connectivity_is_n_minus_1() {
        for n in 2..=6 {
            let g = complete(n);
            assert_eq!(vertex_connectivity(&g), n - 1, "K_{n}");
            assert_eq!(edge_connectivity(&g), n - 1, "K_{n}");
            assert!(is_k_vertex_connected(&g, n - 1));
            assert!(!is_k_vertex_connected(&g, n));
        }
    }

    #[test]
    fn disconnected_graph_has_zero_connectivity() {
        let g = Graph::with_nodes(4);
        assert_eq!(vertex_connectivity(&g), 0);
        assert_eq!(edge_connectivity(&g), 0);
        assert!(!is_k_vertex_connected(&g, 1));
        assert!(!is_k_edge_connected(&g, 1));
    }

    #[test]
    fn trivial_graphs() {
        assert_eq!(vertex_connectivity(&Graph::new()), 0);
        assert_eq!(vertex_connectivity(&Graph::with_nodes(1)), 0);
        assert!(is_k_vertex_connected(&Graph::with_nodes(1), 0));
        assert!(!is_k_vertex_connected(&Graph::with_nodes(1), 1));
    }

    #[test]
    fn two_triangles_sharing_a_vertex_has_kappa_1_lambda_2() {
        let g = Graph::from_edges(
            0,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(4)),
                (NodeId(2), NodeId(4)),
            ],
        );
        assert_eq!(vertex_connectivity(&g), 1);
        assert_eq!(edge_connectivity(&g), 2);
        assert_eq!(min_vertex_cut(&g), Some(vec![NodeId(2)]));
    }

    #[test]
    fn complete_bipartite_k33() {
        // K_{3,3}: κ = λ = 3.
        let mut g = Graph::with_nodes(6);
        for i in 0..3 {
            for j in 3..6 {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        assert_eq!(vertex_connectivity(&g), 3);
        assert_eq!(edge_connectivity(&g), 3);
        let cut = min_vertex_cut(&g).unwrap();
        assert_eq!(cut.len(), 3);
    }

    #[test]
    fn petersen_graph_is_3_connected() {
        // Petersen graph: κ = λ = 3, 3-regular.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let mut g = Graph::with_nodes(10);
        for (a, b) in outer.iter().chain(&spokes).chain(&inner) {
            g.add_edge(NodeId(*a), NodeId(*b));
        }
        assert_eq!(vertex_connectivity(&g), 3);
        assert_eq!(edge_connectivity(&g), 3);
        assert!(is_k_vertex_connected(&g, 3));
        assert!(!is_k_vertex_connected(&g, 4));
    }

    #[test]
    fn local_edge_connectivity_on_cycle_is_2() {
        let g = cycle(6);
        assert_eq!(local_edge_connectivity(&g, NodeId(0), NodeId(3), None), 2);
        assert_eq!(
            local_edge_connectivity(&g, NodeId(0), NodeId(3), Some(1)),
            1
        );
    }

    #[test]
    fn local_vertex_connectivity_on_cycle_is_2() {
        let g = cycle(6);
        assert_eq!(local_vertex_connectivity(&g, NodeId(0), NodeId(3), None), 2);
    }

    #[test]
    #[should_panic(expected = "non-adjacent")]
    fn local_vertex_connectivity_rejects_adjacent() {
        let g = cycle(4);
        let _ = local_vertex_connectivity(&g, NodeId(0), NodeId(1), None);
    }

    #[test]
    fn min_edge_cut_on_barbell_is_the_bridge() {
        let g = Graph::from_edges(
            0,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(4)),
                (NodeId(4), NodeId(5)),
                (NodeId(3), NodeId(5)),
            ],
        );
        assert_eq!(
            min_edge_cut(&g),
            Some(vec![Edge::new(NodeId(2), NodeId(3))])
        );
    }

    #[test]
    fn min_cut_removal_disconnects() {
        use crate::subgraph::SubgraphView;
        let g = cycle(7);
        let vcut = min_vertex_cut(&g).unwrap();
        assert_eq!(vcut.len(), 2);
        let view = SubgraphView::without_nodes(&g, vcut.iter().copied());
        assert!(!view.is_live_connected());

        let ecut = min_edge_cut(&g).unwrap();
        assert_eq!(ecut.len(), 2);
        let view = SubgraphView::without_edges(&g, ecut.iter().copied());
        assert!(!view.is_live_connected());
    }

    #[test]
    fn min_cut_of_complete_graph_is_none() {
        assert_eq!(min_vertex_cut(&complete(4)), None);
        assert!(
            min_edge_cut(&complete(4)).is_some(),
            "edge cuts exist for K_n"
        );
        assert_eq!(min_edge_cut(&complete(4)).unwrap().len(), 3);
    }

    #[test]
    fn min_cut_of_disconnected_graph_is_empty() {
        let g = Graph::with_nodes(3);
        assert_eq!(min_vertex_cut(&g), Some(Vec::new()));
        assert_eq!(min_edge_cut(&g), Some(Vec::new()));
    }

    #[test]
    fn star_graph_connectivity() {
        let mut g = Graph::with_nodes(6);
        for i in 1..6 {
            g.add_edge(NodeId(0), NodeId(i));
        }
        assert_eq!(vertex_connectivity(&g), 1);
        assert_eq!(edge_connectivity(&g), 1);
        assert_eq!(min_vertex_cut(&g), Some(vec![NodeId(0)]));
    }

    #[test]
    fn hypercube_q3_is_3_connected() {
        let mut g = Graph::with_nodes(8);
        for v in 0..8usize {
            for bit in 0..3 {
                let w = v ^ (1 << bit);
                if v < w {
                    g.add_edge(NodeId(v), NodeId(w));
                }
            }
        }
        assert_eq!(vertex_connectivity(&g), 3);
        assert_eq!(edge_connectivity(&g), 3);
    }

    #[test]
    fn is_complete_detects() {
        assert!(is_complete(&complete(4)));
        assert!(!is_complete(&cycle(4)));
        assert!(is_complete(&Graph::new()));
        assert!(is_complete(&Graph::with_nodes(1)));
    }
}
