//! Error type for graph construction and queries.

use core::fmt;

use crate::NodeId;

/// Errors produced by fallible graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a node that does not exist in the graph.
    NodeOutOfBounds {
        /// The offending id.
        node: NodeId,
        /// Number of nodes currently in the graph.
        node_count: usize,
    },
    /// A self-loop was requested; the substrate models simple graphs only.
    SelfLoop {
        /// The node on which the loop was requested.
        node: NodeId,
    },
    /// The referenced edge does not exist.
    MissingEdge {
        /// First endpoint.
        a: NodeId,
        /// Second endpoint.
        b: NodeId,
    },
    /// A textual graph representation could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, node_count } => {
                write!(
                    f,
                    "node {node} out of bounds for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on {node} not allowed in a simple graph")
            }
            GraphError::MissingEdge { a, b } => write!(f, "edge ({a}, {b}) does not exist"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = GraphError::NodeOutOfBounds {
            node: NodeId(9),
            node_count: 4,
        };
        assert_eq!(
            err.to_string(),
            "node n9 out of bounds for graph with 4 nodes"
        );

        let err = GraphError::SelfLoop { node: NodeId(2) };
        assert!(err.to_string().contains("self-loop"));

        let err = GraphError::MissingEdge {
            a: NodeId(0),
            b: NodeId(1),
        };
        assert!(err.to_string().contains("does not exist"));

        let err = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
