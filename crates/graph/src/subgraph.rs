//! Deletion views: run any algorithm on "the graph minus these nodes/edges"
//! without copying the graph.
//!
//! The LHG properties P1–P3 quantify over node and link removals ("the
//! removal of any subset of at most k−1 nodes will not disconnect G"), and
//! the flooding simulator injects crash and link failures. Both use
//! [`SubgraphView`], which masks nodes and edges of an underlying adjacency
//! source while keeping the original (dense) node ids, so results are
//! directly comparable with the intact graph.

use std::collections::BTreeSet;

use crate::graph::Edge;
use crate::traversal::Adjacency;
use crate::NodeId;

/// A view of an adjacency source with some nodes and/or edges removed.
///
/// Removed nodes stay present as ids but expose no incident edges, and they
/// are excluded from connectivity semantics via [`SubgraphView::live_nodes`].
///
/// # Example
///
/// ```
/// use lhg_graph::{Graph, NodeId};
/// use lhg_graph::subgraph::SubgraphView;
/// use lhg_graph::components::is_connected;
///
/// // A path 0-1-2; removing the middle node disconnects it.
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId(0), NodeId(1));
/// g.add_edge(NodeId(1), NodeId(2));
///
/// let view = SubgraphView::without_nodes(&g, [NodeId(1)]);
/// assert!(!view.is_live_connected());
/// assert!(is_connected(&g));
/// ```
#[derive(Debug, Clone)]
pub struct SubgraphView<'a, A: Adjacency + ?Sized> {
    base: &'a A,
    removed_nodes: BTreeSet<NodeId>,
    removed_edges: BTreeSet<Edge>,
}

impl<'a, A: Adjacency + ?Sized> SubgraphView<'a, A> {
    /// A view with nothing removed.
    #[must_use]
    pub fn new(base: &'a A) -> Self {
        SubgraphView {
            base,
            removed_nodes: BTreeSet::new(),
            removed_edges: BTreeSet::new(),
        }
    }

    /// A view with the given nodes removed.
    #[must_use]
    pub fn without_nodes<I: IntoIterator<Item = NodeId>>(base: &'a A, nodes: I) -> Self {
        let mut v = SubgraphView::new(base);
        v.remove_nodes(nodes);
        v
    }

    /// A view with the given edges removed.
    #[must_use]
    pub fn without_edges<I: IntoIterator<Item = Edge>>(base: &'a A, edges: I) -> Self {
        let mut v = SubgraphView::new(base);
        v.remove_edges(edges);
        v
    }

    /// Marks additional nodes as removed.
    pub fn remove_nodes<I: IntoIterator<Item = NodeId>>(&mut self, nodes: I) {
        for node in nodes {
            assert!(
                node.index() < self.base.node_count(),
                "removed node {node} out of bounds"
            );
            self.removed_nodes.insert(node);
        }
    }

    /// Marks additional edges as removed.
    pub fn remove_edges<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        self.removed_edges.extend(edges);
    }

    /// Returns `true` if `node` has been removed.
    #[must_use]
    pub fn is_removed_node(&self, node: NodeId) -> bool {
        self.removed_nodes.contains(&node)
    }

    /// Returns `true` if `edge` has been removed (including edges incident
    /// to removed nodes).
    #[must_use]
    pub fn is_removed_edge(&self, edge: Edge) -> bool {
        self.removed_edges.contains(&edge)
            || self.removed_nodes.contains(&edge.a)
            || self.removed_nodes.contains(&edge.b)
    }

    /// Ids of nodes that are still present, ascending.
    #[must_use]
    pub fn live_nodes(&self) -> Vec<NodeId> {
        (0..self.base.node_count())
            .map(NodeId)
            .filter(|v| !self.removed_nodes.contains(v))
            .collect()
    }

    /// Number of live nodes.
    #[must_use]
    pub fn live_node_count(&self) -> usize {
        self.base.node_count() - self.removed_nodes.len()
    }

    /// Connectivity over *live* nodes only: `true` if every live node can
    /// reach every other live node. Vacuously `true` with fewer than two
    /// live nodes.
    ///
    /// This is the notion of "does not disconnect G" used by LHG properties
    /// P1 and P2: removed nodes do not count as disconnection witnesses.
    #[must_use]
    pub fn is_live_connected(&self) -> bool {
        let live = self.live_nodes();
        if live.len() <= 1 {
            return true;
        }
        let order = crate::traversal::bfs_order(self, live[0]);
        order.len() == live.len()
    }
}

impl<A: Adjacency + ?Sized> Adjacency for SubgraphView<'_, A> {
    fn node_count(&self) -> usize {
        self.base.node_count()
    }

    fn for_each_neighbor(&self, node: NodeId, visit: &mut dyn FnMut(NodeId)) {
        if self.removed_nodes.contains(&node) {
            return;
        }
        self.base.for_each_neighbor(node, &mut |w| {
            if !self.removed_nodes.contains(&w) && !self.removed_edges.contains(&Edge::new(node, w))
            {
                visit(w);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;
    use crate::traversal::bfs_distances;
    use crate::Graph;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    #[test]
    fn empty_view_matches_base() {
        let g = cycle(5);
        let v = SubgraphView::new(&g);
        assert_eq!(bfs_distances(&v, NodeId(0)), bfs_distances(&g, NodeId(0)));
        assert!(v.is_live_connected());
        assert_eq!(v.live_node_count(), 5);
    }

    #[test]
    fn removing_one_cycle_node_keeps_live_connectivity() {
        let g = cycle(5);
        let v = SubgraphView::without_nodes(&g, [NodeId(2)]);
        assert!(v.is_live_connected());
        assert_eq!(v.live_node_count(), 4);
        assert_eq!(
            v.live_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn removing_two_cycle_nodes_can_disconnect() {
        // Cycle 0..5; removing 1 and 4 separates {0,5?}.. use n=6: remove 1 and 4
        // leaves 0,2,3,5 with edges 2-3 and 5-0 -> two components.
        let g = cycle(6);
        let v = SubgraphView::without_nodes(&g, [NodeId(1), NodeId(4)]);
        assert!(!v.is_live_connected());
    }

    #[test]
    fn removing_edges_masks_them_both_directions() {
        let g = cycle(4);
        let v = SubgraphView::without_edges(&g, [Edge::new(NodeId(1), NodeId(0))]);
        let mut ns = Vec::new();
        v.for_each_neighbor(NodeId(0), &mut |w| ns.push(w));
        assert_eq!(ns, vec![NodeId(3)]);
        let mut ns = Vec::new();
        v.for_each_neighbor(NodeId(1), &mut |w| ns.push(w));
        assert_eq!(ns, vec![NodeId(2)]);
        assert!(v.is_live_connected(), "cycle minus one edge is a path");
    }

    #[test]
    fn removing_two_edges_disconnects_cycle() {
        let g = cycle(4);
        let v = SubgraphView::without_edges(
            &g,
            [
                Edge::new(NodeId(0), NodeId(1)),
                Edge::new(NodeId(2), NodeId(3)),
            ],
        );
        assert!(!v.is_live_connected());
    }

    #[test]
    fn removed_node_has_no_neighbors_and_is_invisible() {
        let g = cycle(4);
        let v = SubgraphView::without_nodes(&g, [NodeId(0)]);
        let mut ns = Vec::new();
        v.for_each_neighbor(NodeId(0), &mut |w| ns.push(w));
        assert!(ns.is_empty());
        // Neighbors of 1 no longer include 0.
        let mut ns = Vec::new();
        v.for_each_neighbor(NodeId(1), &mut |w| ns.push(w));
        assert_eq!(ns, vec![NodeId(2)]);
        assert!(v.is_removed_node(NodeId(0)));
        assert!(v.is_removed_edge(Edge::new(NodeId(0), NodeId(1))));
    }

    #[test]
    fn view_of_view_semantics_by_stacking_removals() {
        let g = cycle(6);
        let mut v = SubgraphView::new(&g);
        v.remove_nodes([NodeId(1)]);
        assert!(v.is_live_connected());
        v.remove_nodes([NodeId(4)]);
        assert!(!v.is_live_connected());
    }

    #[test]
    fn base_graph_is_untouched() {
        let g = cycle(4);
        let _v = SubgraphView::without_nodes(&g, [NodeId(0)]);
        assert!(is_connected(&g));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn removing_unknown_node_panics() {
        let g = cycle(3);
        let _ = SubgraphView::without_nodes(&g, [NodeId(9)]);
    }
}
