//! Distance aggregates: eccentricity, diameter, radius, average path length.
//!
//! The defining property P4 of a Logarithmic Harary Graph is that the
//! *diameter* — the maximum over all pairs of the shortest-path length — is
//! `O(log n)`. These helpers compute the exact diameter by an all-sources BFS
//! sweep (`O(n · m)`), which is affordable at the scales the experiments use
//! (n up to a few tens of thousands).

use crate::traversal::{bfs_distances, Adjacency};
use crate::NodeId;

/// Eccentricity of `node`: the greatest hop distance to any reachable node.
/// Returns `None` if some node is unreachable from `node` (infinite
/// eccentricity in a disconnected graph).
#[must_use]
pub fn eccentricity<A: Adjacency + ?Sized>(adj: &A, node: NodeId) -> Option<u32> {
    let dist = bfs_distances(adj, node);
    let mut max = 0;
    for d in &dist {
        match d {
            Some(d) => max = max.max(*d),
            None => return None,
        }
    }
    Some(max)
}

/// Exact diameter (max eccentricity). `None` if the graph is disconnected;
/// `Some(0)` for graphs with fewer than two nodes.
#[must_use]
pub fn diameter<A: Adjacency + ?Sized>(adj: &A) -> Option<u32> {
    let n = adj.node_count();
    if n == 0 {
        return Some(0);
    }
    let mut best = 0;
    for v in 0..n {
        best = best.max(eccentricity(adj, NodeId(v))?);
    }
    Some(best)
}

/// Exact radius (min eccentricity). `None` if the graph is disconnected;
/// `Some(0)` for graphs with fewer than two nodes.
#[must_use]
pub fn radius<A: Adjacency + ?Sized>(adj: &A) -> Option<u32> {
    let n = adj.node_count();
    if n == 0 {
        return Some(0);
    }
    let mut best = u32::MAX;
    for v in 0..n {
        best = best.min(eccentricity(adj, NodeId(v))?);
    }
    Some(best)
}

/// Average shortest-path length over all ordered pairs of distinct nodes.
/// `None` if disconnected or if the graph has fewer than two nodes.
#[must_use]
pub fn average_path_length<A: Adjacency + ?Sized>(adj: &A) -> Option<f64> {
    let n = adj.node_count();
    if n < 2 {
        return None;
    }
    let mut total: u64 = 0;
    for v in 0..n {
        for d in bfs_distances(adj, NodeId(v)) {
            total += u64::from(d?);
        }
    }
    Some(total as f64 / (n as f64 * (n as f64 - 1.0)))
}

/// Lower-cost diameter *estimate* by the double-sweep heuristic: BFS from
/// `seed`, then BFS from the farthest node found. The result is a lower
/// bound on the true diameter (exact on trees). `None` if disconnected.
#[must_use]
pub fn diameter_double_sweep<A: Adjacency + ?Sized>(adj: &A, seed: NodeId) -> Option<u32> {
    let n = adj.node_count();
    if n == 0 {
        return Some(0);
    }
    let first = bfs_distances(adj, seed);
    let mut far = (seed, 0);
    for (i, d) in first.iter().enumerate() {
        match d {
            Some(d) if *d > far.1 => far = (NodeId(i), *d),
            Some(_) => {}
            None => return None,
        }
    }
    let second = bfs_distances(adj, far.0);
    second.into_iter().map(|d| d.unwrap_or(0)).max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 1..n {
            g.add_edge(NodeId(i - 1), NodeId(i));
        }
        g
    }

    fn cycle(n: usize) -> Graph {
        let mut g = path(n);
        g.add_edge(NodeId(n - 1), NodeId(0));
        g
    }

    #[test]
    fn path_metrics() {
        let g = path(5);
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(radius(&g), Some(2));
        assert_eq!(eccentricity(&g, NodeId(0)), Some(4));
        assert_eq!(eccentricity(&g, NodeId(2)), Some(2));
    }

    #[test]
    fn cycle_metrics() {
        assert_eq!(diameter(&cycle(6)), Some(3));
        assert_eq!(radius(&cycle(6)), Some(3));
        assert_eq!(diameter(&cycle(7)), Some(3));
    }

    #[test]
    fn disconnected_returns_none() {
        let g = Graph::with_nodes(3);
        assert_eq!(diameter(&g), None);
        assert_eq!(radius(&g), None);
        assert_eq!(average_path_length(&g), None);
        assert_eq!(eccentricity(&g, NodeId(0)), None);
        assert_eq!(diameter_double_sweep(&g, NodeId(0)), None);
    }

    #[test]
    fn trivial_graphs() {
        assert_eq!(diameter(&Graph::new()), Some(0));
        assert_eq!(diameter(&Graph::with_nodes(1)), Some(0));
        assert_eq!(radius(&Graph::with_nodes(1)), Some(0));
        assert_eq!(average_path_length(&Graph::with_nodes(1)), None);
    }

    #[test]
    fn average_path_length_of_triangle_is_one() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(2));
        assert_eq!(average_path_length(&g), Some(1.0));
    }

    #[test]
    fn average_path_length_of_path3() {
        // Pairs (ordered): 0-1:1, 0-2:2, 1-0:1, 1-2:1, 2-0:2, 2-1:1 -> 8/6.
        let g = path(3);
        let apl = average_path_length(&g).unwrap();
        assert!((apl - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn double_sweep_exact_on_paths_and_lower_bound_on_cycles() {
        let g = path(9);
        assert_eq!(diameter_double_sweep(&g, NodeId(4)), Some(8));
        let c = cycle(8);
        let est = diameter_double_sweep(&c, NodeId(0)).unwrap();
        assert!(est <= diameter(&c).unwrap());
        assert!(est >= 1);
    }
}
