//! Degree statistics, regularity, and density.
//!
//! LHG property P5 is *k-regularity*: every node has degree exactly `k`. A
//! k-regular k-connected graph meets the ⌈kn/2⌉ edge lower bound, i.e. it
//! floods with the minimum possible number of messages.

use crate::Graph;

/// Summary of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeStats {
    /// Smallest degree (0 for the empty graph).
    pub min: usize,
    /// Largest degree (0 for the empty graph).
    pub max: usize,
    /// Total degree (= 2 · #edges).
    pub sum: usize,
    /// Number of nodes.
    pub nodes: usize,
}

impl DegreeStats {
    /// Mean degree; 0.0 for the empty graph.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.sum as f64 / self.nodes as f64
        }
    }

    /// Returns `true` if all nodes share one degree (vacuously true when
    /// empty).
    #[must_use]
    pub fn is_regular(&self) -> bool {
        self.min == self.max
    }
}

/// Computes degree statistics for `g`.
#[must_use]
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let mut min = usize::MAX;
    let mut max = 0;
    let mut sum = 0;
    for v in g.nodes() {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
        sum += d;
    }
    if g.node_count() == 0 {
        min = 0;
    }
    DegreeStats {
        min,
        max,
        sum,
        nodes: g.node_count(),
    }
}

/// Sorted (ascending) degree sequence.
#[must_use]
pub fn degree_sequence(g: &Graph) -> Vec<usize> {
    let mut seq: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    seq.sort_unstable();
    seq
}

/// Returns `true` if every node has degree exactly `k`.
#[must_use]
pub fn is_k_regular(g: &Graph, k: usize) -> bool {
    g.nodes().all(|v| g.degree(v) == k)
}

/// Minimum number of edges any k-connected graph on `n` nodes must have:
/// ⌈k·n / 2⌉ (each node needs degree ≥ k).
#[must_use]
pub fn harary_edge_lower_bound(n: usize, k: usize) -> usize {
    (k * n).div_ceil(2)
}

/// Edge density: `2m / (n(n-1))`; 0.0 for graphs with fewer than 2 nodes.
#[must_use]
pub fn density(g: &Graph) -> f64 {
    let n = g.node_count();
    if n < 2 {
        return 0.0;
    }
    2.0 * g.edge_count() as f64 / (n as f64 * (n as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(5);
        let s = degree_stats(&g);
        assert_eq!(
            s,
            DegreeStats {
                min: 2,
                max: 2,
                sum: 10,
                nodes: 5
            }
        );
        assert!(s.is_regular());
        assert!(is_k_regular(&g, 2));
        assert!(!is_k_regular(&g, 3));
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn star_stats() {
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId(0), NodeId(i));
        }
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!(!s.is_regular());
        assert_eq!(degree_sequence(&g), vec![1, 1, 1, 1, 4]);
    }

    #[test]
    fn empty_graph_stats() {
        let s = degree_stats(&Graph::new());
        assert_eq!(
            s,
            DegreeStats {
                min: 0,
                max: 0,
                sum: 0,
                nodes: 0
            }
        );
        assert!(s.is_regular());
        assert_eq!(s.mean(), 0.0);
        assert!(is_k_regular(&Graph::new(), 7), "vacuously regular");
    }

    #[test]
    fn lower_bound_matches_harary() {
        // H(k,n) has exactly ceil(kn/2) edges.
        assert_eq!(harary_edge_lower_bound(8, 3), 12);
        assert_eq!(harary_edge_lower_bound(7, 3), 11);
        assert_eq!(harary_edge_lower_bound(6, 4), 12);
        assert_eq!(harary_edge_lower_bound(0, 3), 0);
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        let mut g = Graph::with_nodes(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        assert!((density(&g) - 1.0).abs() < 1e-12);
        assert_eq!(density(&Graph::with_nodes(1)), 0.0);
    }

    #[test]
    fn degree_sum_is_twice_edges() {
        let g = cycle(9);
        assert_eq!(degree_stats(&g).sum, 2 * g.edge_count());
    }
}
