//! Dense node identifiers.

use core::fmt;

/// Identifier of a node in a [`Graph`](crate::Graph).
///
/// Node ids are dense indices `0..n`; they are assigned in creation order by
/// [`Graph::add_node`](crate::Graph::add_node) and never reused. The newtype
/// keeps node indices from being confused with counts, degrees or other
/// `usize` quantities flowing through the algorithms.
///
/// # Example
///
/// ```
/// use lhg_graph::NodeId;
///
/// let a = NodeId(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

#[cfg(feature = "serde")]
serde::impl_serde_transparent!(NodeId, usize);

impl NodeId {
    /// Returns the underlying dense index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        let id = NodeId(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(NodeId::from(42usize), id);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7), NodeId(7));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(NodeId(5).to_string(), "n5");
        assert_eq!(format!("{:?}", NodeId(5)), "NodeId(5)");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId(0));
    }
}
