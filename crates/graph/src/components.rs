//! Connected components.

use crate::traversal::{bfs_order, Adjacency};
use crate::NodeId;

/// Partition of nodes into connected components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` is the 0-based component index of node `v`; components are
    /// numbered by ascending smallest member id.
    labels: Vec<usize>,
    count: usize,
}

impl Components {
    /// Number of connected components (0 for the empty graph).
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component index of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[must_use]
    pub fn label(&self, node: NodeId) -> usize {
        self.labels[node.index()]
    }

    /// Returns `true` if `a` and `b` are in the same component.
    #[must_use]
    pub fn same_component(&self, a: NodeId, b: NodeId) -> bool {
        self.label(a) == self.label(b)
    }

    /// The members of each component, each sorted ascending.
    #[must_use]
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (i, &label) in self.labels.iter().enumerate() {
            groups[label].push(NodeId(i));
        }
        groups
    }

    /// Size of the largest component (0 for the empty graph).
    #[must_use]
    pub fn largest_size(&self) -> usize {
        let mut sizes = vec![0usize; self.count];
        for &label in &self.labels {
            sizes[label] += 1;
        }
        sizes.into_iter().max().unwrap_or(0)
    }
}

/// Computes the connected components of `adj`.
#[must_use]
pub fn connected_components<A: Adjacency + ?Sized>(adj: &A) -> Components {
    let n = adj.node_count();
    let mut labels = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        for v in bfs_order(adj, NodeId(start)) {
            labels[v.index()] = count;
        }
        count += 1;
    }
    Components { labels, count }
}

/// Returns `true` if the graph is connected.
///
/// The empty graph is considered connected (vacuously), matching the paper's
/// definition which only constrains graphs with more than one node.
#[must_use]
pub fn is_connected<A: Adjacency + ?Sized>(adj: &A) -> bool {
    let n = adj.node_count();
    if n <= 1 {
        return true;
    }
    bfs_order(adj, NodeId(0)).len() == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn empty_graph_is_connected_with_zero_components() {
        let g = Graph::new();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).count(), 0);
    }

    #[test]
    fn single_node_is_connected() {
        let g = Graph::with_nodes(1);
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).count(), 1);
    }

    #[test]
    fn two_isolated_nodes_are_disconnected() {
        let g = Graph::with_nodes(2);
        assert!(!is_connected(&g));
        let c = connected_components(&g);
        assert_eq!(c.count(), 2);
        assert!(!c.same_component(NodeId(0), NodeId(1)));
    }

    #[test]
    fn components_are_numbered_by_smallest_member() {
        // {0,3} and {1,2} — component of node 0 must be index 0.
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(3));
        g.add_edge(NodeId(1), NodeId(2));
        let c = connected_components(&g);
        assert_eq!(c.count(), 2);
        assert_eq!(c.label(NodeId(0)), 0);
        assert_eq!(c.label(NodeId(3)), 0);
        assert_eq!(c.label(NodeId(1)), 1);
        assert_eq!(c.label(NodeId(2)), 1);
        assert_eq!(
            c.groups(),
            vec![vec![NodeId(0), NodeId(3)], vec![NodeId(1), NodeId(2)]]
        );
    }

    #[test]
    fn largest_component_size() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(3), NodeId(4));
        let c = connected_components(&g);
        assert_eq!(c.largest_size(), 3);
    }

    #[test]
    fn connected_cycle() {
        let mut g = Graph::with_nodes(4);
        for i in 0..4 {
            g.add_edge(NodeId(i), NodeId((i + 1) % 4));
        }
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).count(), 1);
        assert_eq!(connected_components(&g).largest_size(), 4);
    }
}
