//! Dinic max-flow on directed integer-capacity networks.
//!
//! Menger's theorem reduces exact vertex/edge connectivity — the quantities
//! the LHG properties P1 and P2 are stated in — to unit-capacity max-flow
//! problems, which [`FlowNetwork::max_flow_capped`] solves with an early
//! exit: connectivity checks only need to know whether the flow reaches `k`.

use std::collections::VecDeque;

/// Index of a directed edge inside a [`FlowNetwork`].
///
/// Returned by [`FlowNetwork::add_edge`] and usable with
/// [`FlowNetwork::flow_on`] to recover per-edge flow after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowEdgeId(usize);

#[derive(Debug, Clone)]
struct FlowEdge {
    to: usize,
    /// Remaining residual capacity (mutated during augmentation).
    residual: u64,
    /// Capacity the edge was created with (reverse edges: 0).
    original: u64,
}

/// A directed flow network with integer capacities (Dinic's algorithm).
///
/// # Example
///
/// ```
/// use lhg_graph::flow::FlowNetwork;
///
/// // s=0 -> 1 -> t=2 with bottleneck 3.
/// let mut net = FlowNetwork::new(3);
/// net.add_edge(0, 1, 5);
/// net.add_edge(1, 2, 3);
/// assert_eq!(net.max_flow(0, 2), 3);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    // edges[i] and edges[i^1] are a forward/backward residual pair.
    edges: Vec<FlowEdge>,
    head: Vec<Vec<usize>>, // per-node indices into `edges`
}

impl FlowNetwork {
    /// Creates a network with `n` nodes `0..n` and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            edges: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.head.len()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.head.push(Vec::new());
        self.head.len() - 1
    }

    /// Adds a directed edge `from -> to` with the given capacity and its
    /// residual reverse edge (capacity 0). Returns the forward edge id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: u64) -> FlowEdgeId {
        assert!(from < self.head.len(), "flow edge source out of bounds");
        assert!(to < self.head.len(), "flow edge target out of bounds");
        let id = self.edges.len();
        self.edges.push(FlowEdge {
            to,
            residual: capacity,
            original: capacity,
        });
        self.edges.push(FlowEdge {
            to: from,
            residual: 0,
            original: 0,
        });
        self.head[from].push(id);
        self.head[to].push(id + 1);
        FlowEdgeId(id)
    }

    /// Flow currently assigned to a forward edge (after a `max_flow*` call).
    #[must_use]
    pub fn flow_on(&self, edge: FlowEdgeId) -> u64 {
        let e = &self.edges[edge.0];
        e.original - e.residual
    }

    /// Nodes reachable from `s` along positive-residual arcs.
    ///
    /// After a completed [`FlowNetwork::max_flow`] run this is the source
    /// side of a minimum cut (max-flow/min-cut theorem), which the
    /// connectivity module uses to extract explicit minimum vertex and edge
    /// cuts.
    #[must_use]
    pub fn residual_reachable(&self, s: usize) -> Vec<bool> {
        let mut reach = vec![false; self.head.len()];
        reach[s] = true;
        let mut stack = vec![s];
        while let Some(v) = stack.pop() {
            for &idx in &self.head[v] {
                let to = self.edges[idx].to;
                if !reach[to] && self.edges[idx].residual > 0 {
                    reach[to] = true;
                    stack.push(to);
                }
            }
        }
        reach
    }

    /// Resets all flows to zero, keeping the topology.
    pub fn reset(&mut self) {
        for e in &mut self.edges {
            e.residual = e.original;
        }
    }

    /// BFS level graph; returns `None` when `t` is unreachable.
    fn levels(&self, s: usize, t: usize) -> Option<Vec<u32>> {
        let mut level = vec![u32::MAX; self.head.len()];
        level[s] = 0;
        let mut q = VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            for &idx in &self.head[v] {
                let to = self.edges[idx].to;
                if level[to] == u32::MAX && self.edges[idx].residual > 0 {
                    level[to] = level[v] + 1;
                    q.push_back(to);
                }
            }
        }
        (level[t] != u32::MAX).then_some(level)
    }

    /// One augmenting push along the level graph (iterative path walk).
    /// Returns the amount pushed (0 when no admissible path remains).
    fn dfs_push(
        &mut self,
        s: usize,
        t: usize,
        level: &[u32],
        iter: &mut [usize],
        up_to: u64,
    ) -> u64 {
        let mut path: Vec<usize> = Vec::new(); // edge indices along current path
        let mut v = s;
        loop {
            if v == t {
                let mut bottleneck = up_to;
                for &idx in &path {
                    bottleneck = bottleneck.min(self.edges[idx].residual);
                }
                debug_assert!(bottleneck > 0);
                for &idx in &path {
                    self.edges[idx].residual -= bottleneck;
                    self.edges[idx ^ 1].residual += bottleneck;
                }
                return bottleneck;
            }
            // Advance v's arc iterator to a usable edge.
            let mut advanced = false;
            while iter[v] < self.head[v].len() {
                let idx = self.head[v][iter[v]];
                let to = self.edges[idx].to;
                if self.edges[idx].residual > 0 && level[v] + 1 == level[to] {
                    path.push(idx);
                    v = to;
                    advanced = true;
                    break;
                }
                iter[v] += 1;
            }
            if advanced {
                continue;
            }
            // Dead end: backtrack one step (or give up at the source).
            if let Some(idx) = path.pop() {
                // The tail of `idx` is the reverse edge's head.
                let tail = self.edges[idx ^ 1].to;
                iter[tail] += 1;
                v = tail;
            } else {
                return 0;
            }
        }
    }

    /// Maximum flow from `s` to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of bounds.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        self.max_flow_capped(s, t, u64::MAX)
    }

    /// Maximum flow from `s` to `t`, stopping early once `cap` units have
    /// been pushed. Returns `min(max_flow, cap)`.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of bounds.
    pub fn max_flow_capped(&mut self, s: usize, t: usize, cap: u64) -> u64 {
        assert!(
            s < self.head.len() && t < self.head.len(),
            "flow endpoint out of bounds"
        );
        assert_ne!(s, t, "max flow requires distinct endpoints");
        let mut flow = 0;
        while flow < cap {
            let Some(level) = self.levels(s, t) else {
                break;
            };
            let mut iter = vec![0usize; self.head.len()];
            let mut progressed = false;
            while flow < cap {
                let pushed = self.dfs_push(s, t, &level, &mut iter, cap - flow);
                if pushed == 0 {
                    break;
                }
                progressed = true;
                flow += pushed;
            }
            if !progressed {
                break; // defensive: a reachable t always admits a push
            }
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
    }

    #[test]
    fn series_bottleneck() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        net.add_edge(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2);
        net.add_edge(1, 3, 2);
        net.add_edge(0, 2, 3);
        net.add_edge(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS figure 26.6 instance, max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 16);
        net.add_edge(0, 2, 13);
        net.add_edge(1, 2, 10);
        net.add_edge(2, 1, 4);
        net.add_edge(1, 3, 12);
        net.add_edge(3, 2, 9);
        net.add_edge(2, 4, 14);
        net.add_edge(4, 3, 7);
        net.add_edge(3, 5, 20);
        net.add_edge(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn needs_residual_pushback() {
        // Flow must be rerouted through the residual of 1->2.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(net.max_flow(0, 3), 2);
    }

    #[test]
    fn zigzag_requires_undo() {
        // The classic case where an augmenting path must cancel flow:
        // 0->1, 0->2, 1->3, 2->1, 2->4, 3->5, 4->3?, build so optimum needs
        // reverse-edge traversal.
        let mut net = FlowNetwork::new(6);
        net.add_edge(0, 1, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(2, 3, 1);
        net.add_edge(3, 5, 2);
        net.add_edge(1, 4, 1);
        net.add_edge(4, 5, 1);
        assert_eq!(net.max_flow(0, 5), 2);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 9);
        assert_eq!(net.max_flow(0, 2), 0);
    }

    #[test]
    fn capped_flow_stops_early() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 100);
        assert_eq!(net.max_flow_capped(0, 1, 4), 4);
    }

    #[test]
    fn capped_flow_matches_when_cap_exceeds_max() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        net.add_edge(1, 2, 3);
        assert_eq!(net.max_flow_capped(0, 2, 10), 3);
    }

    #[test]
    fn flow_on_reports_per_edge_values() {
        let mut net = FlowNetwork::new(3);
        let a = net.add_edge(0, 1, 5);
        let b = net.add_edge(1, 2, 3);
        net.max_flow(0, 2);
        assert_eq!(net.flow_on(a), 3);
        assert_eq!(net.flow_on(b), 3);
    }

    #[test]
    fn reset_allows_reuse() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5);
        net.add_edge(1, 2, 3);
        assert_eq!(net.max_flow(0, 2), 3);
        net.reset();
        assert_eq!(net.max_flow(0, 2), 3);
    }

    #[test]
    fn unit_capacity_disjoint_paths() {
        // Three disjoint unit paths from 0 to 7, plus a decoy reusing node 1.
        let mut net = FlowNetwork::new(8);
        for mid in [1, 2, 3] {
            net.add_edge(0, mid, 1);
            net.add_edge(mid, 7, 1);
        }
        net.add_edge(0, 1, 1);
        assert_eq!(net.max_flow(0, 7), 3);
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn same_endpoints_panic() {
        let mut net = FlowNetwork::new(2);
        net.max_flow(1, 1);
    }

    #[test]
    fn add_node_grows_network() {
        let mut net = FlowNetwork::new(1);
        let v = net.add_node();
        assert_eq!(v, 1);
        net.add_edge(0, 1, 2);
        assert_eq!(net.max_flow(0, 1), 2);
    }

    #[test]
    fn bipartite_matching_as_flow() {
        // 3x3 bipartite with a perfect matching -> flow 3.
        let mut net = FlowNetwork::new(8);
        for l in 1..=3 {
            net.add_edge(0, l, 1);
        }
        for r in 4..=6 {
            net.add_edge(r, 7, 1);
        }
        net.add_edge(1, 4, 1);
        net.add_edge(1, 5, 1);
        net.add_edge(2, 5, 1);
        net.add_edge(3, 5, 1);
        net.add_edge(3, 6, 1);
        assert_eq!(net.max_flow(0, 7), 3);
    }

    #[test]
    fn large_series_parallel_stress() {
        // 50 parallel 2-hop unit paths: flow = 50.
        let mut net = FlowNetwork::new(102);
        for i in 0..50 {
            net.add_edge(0, 2 + i, 1);
            net.add_edge(2 + i, 1, 1);
        }
        assert_eq!(net.max_flow(0, 1), 50);
    }
}
