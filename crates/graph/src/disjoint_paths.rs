//! Explicit Menger witnesses: extraction of k vertex-disjoint or
//! edge-disjoint paths between two nodes.
//!
//! The LHG correctness proofs (Lemma 1 of the follow-up study) are
//! constructive: they exhibit k disjoint paths between any two nodes. This
//! module recovers such witnesses from a max-flow solution by path
//! decomposition, letting tests and experiments *show* the paths rather
//! than just count them.

use crate::flow::{FlowEdgeId, FlowNetwork};
use crate::{Graph, NodeId};

/// Cancels opposing flow on antiparallel arc pairs so the path
/// decomposition cannot walk 2-cycles.
fn cancel_opposing(net: &FlowNetwork, pairs: &[(FlowEdgeId, FlowEdgeId)]) -> Vec<u64> {
    let mut flows: Vec<u64> = Vec::new();
    for &(f, b) in pairs {
        let ff = net.flow_on(f);
        let fb = net.flow_on(b);
        let cancel = ff.min(fb);
        flows.push(ff - cancel);
        flows.push(fb - cancel);
    }
    flows
}

/// Maximum set of pairwise **edge-disjoint** paths from `s` to `t`, each
/// returned as a node sequence `s .. t`. The number of paths equals the
/// local edge connectivity λ(s, t).
///
/// # Panics
///
/// Panics if `s == t` or either endpoint is out of bounds.
#[must_use]
pub fn edge_disjoint_paths(g: &Graph, s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    assert_ne!(s, t, "endpoints must be distinct");
    let n = g.node_count();
    assert!(s.index() < n && t.index() < n, "endpoint out of bounds");

    let mut net = FlowNetwork::new(n);
    let mut pairs: Vec<(FlowEdgeId, FlowEdgeId)> = Vec::new();
    let mut arcs: Vec<(usize, usize)> = Vec::new(); // arc index -> (from, to)
    for e in g.edges() {
        let f = net.add_edge(e.a.index(), e.b.index(), 1);
        let b = net.add_edge(e.b.index(), e.a.index(), 1);
        pairs.push((f, b));
        arcs.push((e.a.index(), e.b.index()));
        arcs.push((e.b.index(), e.a.index()));
    }
    let total = net.max_flow(s.index(), t.index());
    let mut remaining = cancel_opposing(&net, &pairs);

    // Adjacency over arcs with positive remaining flow.
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &(from, _)) in arcs.iter().enumerate() {
        if remaining[i] > 0 {
            out[from].push(i);
        }
    }

    let mut paths = Vec::new();
    for _ in 0..total {
        let mut path = vec![s];
        let mut cur = s.index();
        while cur != t.index() {
            let arc = out[cur]
                .iter()
                .copied()
                .find(|&i| remaining[i] > 0)
                .expect("flow conservation guarantees an outgoing arc");
            remaining[arc] -= 1;
            cur = arcs[arc].1;
            path.push(NodeId(cur));
        }
        paths.push(path);
    }
    paths
}

/// Maximum set of **internally vertex-disjoint** paths from `s` to `t`
/// (they share only the endpoints), each returned as a node sequence. The
/// count equals κ(s, t) for non-adjacent endpoints; for adjacent endpoints
/// the direct edge is included as one of the paths.
///
/// # Panics
///
/// Panics if `s == t` or either endpoint is out of bounds.
#[must_use]
pub fn vertex_disjoint_paths(g: &Graph, s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    assert_ne!(s, t, "endpoints must be distinct");
    let n = g.node_count();
    assert!(s.index() < n && t.index() < n, "endpoint out of bounds");

    // Node splitting: in(v) = 2v, out(v) = 2v+1; unit split arcs except at
    // the endpoints. Direct s-t edges are handled by the same network: the
    // arc out(s) -> in(t) carries that path.
    let inf = n as u64 + 1;
    let mut net = FlowNetwork::new(2 * n);
    for v in 0..n {
        let cap = if v == s.index() || v == t.index() {
            inf
        } else {
            1
        };
        net.add_edge(2 * v, 2 * v + 1, cap);
    }
    let mut pairs = Vec::new();
    let mut arcs: Vec<(usize, usize)> = Vec::new(); // (from node, to node)
    for e in g.edges() {
        let f = net.add_edge(2 * e.a.index() + 1, 2 * e.b.index(), 1);
        let b = net.add_edge(2 * e.b.index() + 1, 2 * e.a.index(), 1);
        pairs.push((f, b));
        arcs.push((e.a.index(), e.b.index()));
        arcs.push((e.b.index(), e.a.index()));
    }
    let total = net.max_flow(2 * s.index() + 1, 2 * t.index());
    let mut remaining = cancel_opposing(&net, &pairs);

    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &(from, _)) in arcs.iter().enumerate() {
        if remaining[i] > 0 {
            out[from].push(i);
        }
    }

    let mut paths = Vec::new();
    for _ in 0..total {
        let mut path = vec![s];
        let mut cur = s.index();
        while cur != t.index() {
            let arc = out[cur]
                .iter()
                .copied()
                .find(|&i| remaining[i] > 0)
                .expect("flow conservation guarantees an outgoing arc");
            remaining[arc] -= 1;
            cur = arcs[arc].1;
            path.push(NodeId(cur));
        }
        paths.push(path);
    }
    paths
}

/// Checks that `paths` are valid s→t paths in `g`, pairwise edge-disjoint,
/// and (if `vertex_disjoint`) sharing no internal vertices.
#[must_use]
pub fn verify_disjoint(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    paths: &[Vec<NodeId>],
    vertex_disjoint: bool,
) -> bool {
    let mut used_edges = std::collections::HashSet::new();
    let mut used_nodes = std::collections::HashSet::new();
    for path in paths {
        if path.first() != Some(&s) || path.last() != Some(&t) {
            return false;
        }
        for w in path.windows(2) {
            if !g.has_edge(w[0], w[1]) {
                return false;
            }
            let key = (w[0].min(w[1]), w[0].max(w[1]));
            if !used_edges.insert(key) {
                return false;
            }
        }
        for &v in &path[1..path.len() - 1] {
            if v == s || v == t {
                return false; // endpoints cannot repeat mid-path
            }
            if vertex_disjoint && !used_nodes.insert(v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{local_edge_connectivity, vertex_connectivity};

    fn cycle(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
        }
        g
    }

    fn complete(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        g
    }

    #[test]
    fn cycle_has_two_disjoint_paths() {
        let g = cycle(8);
        let paths = vertex_disjoint_paths(&g, NodeId(0), NodeId(4));
        assert_eq!(paths.len(), 2);
        assert!(verify_disjoint(&g, NodeId(0), NodeId(4), &paths, true));
        let paths = edge_disjoint_paths(&g, NodeId(0), NodeId(4));
        assert_eq!(paths.len(), 2);
        assert!(verify_disjoint(&g, NodeId(0), NodeId(4), &paths, false));
    }

    #[test]
    fn complete_graph_has_n_minus_1_vertex_disjoint_paths() {
        let g = complete(6);
        let paths = vertex_disjoint_paths(&g, NodeId(0), NodeId(5));
        assert_eq!(paths.len(), 5, "κ(K_6) = 5, direct edge included");
        assert!(verify_disjoint(&g, NodeId(0), NodeId(5), &paths, true));
        // One of them must be the direct edge.
        assert!(paths.iter().any(|p| p.len() == 2));
    }

    #[test]
    fn path_graph_has_single_path() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let paths = vertex_disjoint_paths(&g, NodeId(0), NodeId(3));
        assert_eq!(
            paths,
            vec![vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]]
        );
    }

    #[test]
    fn disconnected_pair_has_no_paths() {
        let g = Graph::with_nodes(3);
        assert!(vertex_disjoint_paths(&g, NodeId(0), NodeId(2)).is_empty());
        assert!(edge_disjoint_paths(&g, NodeId(0), NodeId(2)).is_empty());
    }

    #[test]
    fn counts_match_connectivity_on_petersen() {
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let mut g = Graph::with_nodes(10);
        for (a, b) in outer.iter().chain(&spokes).chain(&inner) {
            g.add_edge(NodeId(*a), NodeId(*b));
        }
        assert_eq!(vertex_connectivity(&g), 3);
        for t in 1..10 {
            let vps = vertex_disjoint_paths(&g, NodeId(0), NodeId(t));
            assert_eq!(vps.len(), 3, "t={t}");
            assert!(
                verify_disjoint(&g, NodeId(0), NodeId(t), &vps, true),
                "t={t}"
            );
            let eps = edge_disjoint_paths(&g, NodeId(0), NodeId(t));
            assert_eq!(
                eps.len(),
                local_edge_connectivity(&g, NodeId(0), NodeId(t), None)
            );
            assert!(
                verify_disjoint(&g, NodeId(0), NodeId(t), &eps, false),
                "t={t}"
            );
        }
    }

    #[test]
    fn edge_disjoint_can_exceed_vertex_disjoint() {
        // Two triangles sharing a vertex: λ(0,4)=2 but κ-paths(0,4)=1.
        let g = Graph::from_edges(
            0,
            [
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(0), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(4)),
                (NodeId(2), NodeId(4)),
            ],
        );
        assert_eq!(edge_disjoint_paths(&g, NodeId(0), NodeId(4)).len(), 2);
        assert_eq!(vertex_disjoint_paths(&g, NodeId(0), NodeId(4)).len(), 1);
    }

    #[test]
    fn verify_rejects_bad_witnesses() {
        let g = cycle(6);
        // Wrong endpoint.
        assert!(!verify_disjoint(
            &g,
            NodeId(0),
            NodeId(3),
            &[vec![NodeId(0), NodeId(1)]],
            true
        ));
        // Non-edge step.
        assert!(!verify_disjoint(
            &g,
            NodeId(0),
            NodeId(3),
            &[vec![NodeId(0), NodeId(3)]],
            true
        ));
        // Shared internal vertex.
        let witness = vec![
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        ];
        assert!(!verify_disjoint(&g, NodeId(0), NodeId(3), &witness, true));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_endpoints_rejected() {
        let g = cycle(4);
        let _ = vertex_disjoint_paths(&g, NodeId(1), NodeId(1));
    }
}
